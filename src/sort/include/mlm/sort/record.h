// Fixed-size key+payload records and the two merge layouts over them.
//
// The paper's kernels sort bare 64-bit integers; real sort workloads
// carry payloads.  With the natural AoS layout every merge comparison
// drags the full record through the cache hierarchy even though the
// loser tree only ever looks at the 8-byte key — for a 64-byte record
// that is an 8x waste of the scarce near-tier bandwidth the whole
// buffering model is built around.  The SoA key/payload-split layout
// (mlm/sort/split_merge.h, external_multiway_merge_split) merges dense
// key mirrors instead and moves each payload exactly once, in
// streak-sized contiguous copies on the existing streaming-copy
// kernels.
//
// Records order by key alone; run order breaks ties in every merge
// (LoserTree and multiway_merge are stable), and record sorts use
// stable local runs, so the two layouts produce byte-identical output
// even with duplicate keys.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mlm/sort/input_gen.h"
#include "mlm/support/proptest.h"

namespace mlm::sort {

/// POD record: an 8-byte key plus an opaque payload.
template <std::size_t PayloadBytes>
struct Record {
  std::uint64_t key = 0;
  std::array<std::uint8_t, PayloadBytes> payload{};

  /// Records order by key alone (ties resolved by run order in stable
  /// merges), so AoS comparators and key-mirror comparators agree.
  friend bool operator<(const Record& a, const Record& b) {
    return a.key < b.key;
  }
  friend bool operator==(const Record& a, const Record& b) = default;
};

/// The paper's element size (key-only records pad to 16) and a
/// payload-heavy one cache line wide.
using Record16 = Record<8>;
using Record64 = Record<56>;

static_assert(sizeof(Record16) == 16);
static_assert(sizeof(Record64) == 64);

/// Trait gating the key/payload-split merge paths: only Record<N>
/// instantiations have a key mirror to extract.
template <typename T>
inline constexpr bool is_record_v = false;
template <std::size_t N>
inline constexpr bool is_record_v<Record<N>> = true;

/// How the sort/merge path lays records out.
enum class RecordLayout : std::uint8_t {
  Aos,      ///< merge whole records (array-of-structs)
  SoaSplit, ///< merge 8-byte key mirrors; copy payloads per streak
};

inline const char* to_string(RecordLayout layout) {
  switch (layout) {
    case RecordLayout::Aos: return "aos";
    case RecordLayout::SoaSplit: return "soa";
  }
  return "?";
}

RecordLayout parse_record_layout(const std::string& name);

/// Both layouts, for layout-grid benches and identity sweeps.
inline constexpr RecordLayout kAllRecordLayouts[] = {RecordLayout::Aos,
                                                     RecordLayout::SoaSplit};

namespace record_detail {
/// splitmix64 finalizer: payload bytes are a pure function of (key,
/// index), so regenerating an input always yields identical records and
/// any payload corruption breaks the digest.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace record_detail

/// Fill `out` with records whose keys follow `order` (same generator as
/// the scalar benches) and whose payloads are a deterministic function
/// of (key, position) — so equal keys carry distinct payloads, which is
/// exactly what makes layout-identity tests meaningful under
/// FewDistinct.
template <std::size_t N>
void generate_records(std::span<Record<N>> out, InputOrder order,
                      std::uint64_t seed) {
  std::vector<std::int64_t> keys(out.size());
  generate_input(keys, order, seed);
  for (std::size_t i = 0; i < out.size(); ++i) {
    Record<N>& r = out[i];
    r.key = static_cast<std::uint64_t>(keys[i]);
    std::uint64_t state = record_detail::mix(r.key ^ (i * 0xa076'1d64'78bd'642fULL));
    for (std::size_t b = 0; b < N; ++b) {
      if (b % 8 == 0) state = record_detail::mix(state);
      r.payload[b] = static_cast<std::uint8_t>(state >> ((b % 8) * 8));
    }
  }
}

/// FNV-1a digest of the raw record bytes — the byte-identity yardstick
/// for AoS-vs-SoA acceptance sweeps.
template <std::size_t N>
std::uint64_t record_digest(std::span<const Record<N>> records) {
  return mlm::fnv1a64(
      reinterpret_cast<const std::uint8_t*>(records.data()),
      records.size() * sizeof(Record<N>));
}

}  // namespace mlm::sort

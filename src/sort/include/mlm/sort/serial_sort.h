// Serial comparison sorts implemented from scratch.
//
// MLM-sort's key design decision (Section 4) is to sort each thread's
// chunk with "the best available serial sorting algorithm" — a quicksort
// variant (std::sort's introsort) — rather than relying on multithreaded
// sort scaling to hundreds of cores.  We provide our own introsort so the
// library is self-contained and its behaviour (e.g. the divide-and-
// conquer locality that makes MLM-implicit fast) is inspectable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <utility>

namespace mlm::sort {

namespace detail {
constexpr std::ptrdiff_t kInsertionThreshold = 24;

template <typename It, typename Comp>
void sift_down(It first, std::ptrdiff_t start, std::ptrdiff_t n,
               Comp& comp) {
  std::ptrdiff_t root = start;
  for (;;) {
    std::ptrdiff_t child = 2 * root + 1;
    if (child >= n) return;
    if (child + 1 < n && comp(first[child], first[child + 1])) ++child;
    if (!comp(first[root], first[child])) return;
    std::swap(first[root], first[child]);
    root = child;
  }
}

/// Median-of-three pivot selection; leaves the median at `mid`.
template <typename It, typename Comp>
void median_of_three(It lo, It mid, It hi, Comp& comp) {
  if (comp(*mid, *lo)) std::swap(*mid, *lo);
  if (comp(*hi, *mid)) {
    std::swap(*hi, *mid);
    if (comp(*mid, *lo)) std::swap(*mid, *lo);
  }
}

template <typename It, typename Comp>
void introsort_loop(It first, It last, int depth_limit, Comp& comp);
}  // namespace detail

/// Stable binary insertion sort; the base case of introsort and fast on
/// nearly-sorted data.
template <typename It, typename Comp = std::less<>>
void insertion_sort(It first, It last, Comp comp = {}) {
  if (first == last) return;
  for (It i = std::next(first); i != last; ++i) {
    auto value = std::move(*i);
    It pos = std::upper_bound(first, i, value, comp);
    std::move_backward(pos, i, std::next(i));
    *pos = std::move(value);
  }
}

/// Bottom-up heapsort: O(n log n) worst case, in place, not stable.
template <typename It, typename Comp = std::less<>>
void heapsort(It first, It last, Comp comp = {}) {
  const std::ptrdiff_t n = last - first;
  for (std::ptrdiff_t start = n / 2 - 1; start >= 0; --start) {
    detail::sift_down(first, start, n, comp);
  }
  for (std::ptrdiff_t end = n - 1; end > 0; --end) {
    std::swap(first[0], first[end]);
    detail::sift_down(first, 0, end, comp);
  }
}

/// Introsort: median-of-three quicksort with a 2*log2(n) depth limit
/// falling back to heapsort, finishing small partitions with insertion
/// sort.  O(n log n) worst case; this is the same family as std::sort.
template <typename It, typename Comp = std::less<>>
void introsort(It first, It last, Comp comp = {}) {
  const std::ptrdiff_t n = last - first;
  if (n <= 1) return;
  int depth_limit = 0;
  for (std::ptrdiff_t m = n; m > 1; m >>= 1) depth_limit += 2;
  detail::introsort_loop(first, last, depth_limit, comp);
  insertion_sort(first, last, comp);
}

namespace detail {
template <typename It, typename Comp>
void introsort_loop(It first, It last, int depth_limit, Comp& comp) {
  while (last - first > kInsertionThreshold) {
    if (depth_limit == 0) {
      heapsort(first, last, comp);
      return;
    }
    --depth_limit;
    It mid = first + (last - first) / 2;
    median_of_three(first, mid, last - 1, comp);
    // Hoare partition around the median-of-three pivot value.
    auto pivot = *mid;
    It i = first;
    It j = last - 1;
    for (;;) {
      while (comp(*i, pivot)) ++i;
      while (comp(pivot, *j)) --j;
      if (i >= j) break;
      std::swap(*i, *j);
      ++i;
      --j;
    }
    // Recurse on the smaller side to bound stack depth at O(log n).
    It split = j + 1;
    if (split - first < last - split) {
      introsort_loop(first, split, depth_limit, comp);
      first = split;
    } else {
      introsort_loop(split, last, depth_limit, comp);
      last = split;
    }
  }
}
}  // namespace detail

/// The serial sort MLM-sort uses for per-thread chunks.
template <typename It, typename Comp = std::less<>>
void serial_sort(It first, It last, Comp comp = {}) {
  introsort(first, last, comp);
}

}  // namespace mlm::sort

// Key/payload-split (SoA) merging for fixed-size records.
//
// An AoS k-way merge of Record<N> runs drags sizeof(Record) bytes
// through the cache per comparison even though the loser tree reads the
// 8-byte key only.  The split merge extracts a dense key mirror per run
// (one sequential pass), runs the loser tree over the mirrors, and
// moves payloads exactly once: each streak the tree emits is a
// contiguous span of one source run, so the records behind it are
// copied with one copy_bytes call — which can use the non-temporal
// streaming kernel, since merged-out records are dead to the near-tier
// working set.
//
// Byte identity with the AoS path is by construction, not by luck:
// Record orders by key alone, every merge here and in multiway_merge.h
// is stable with run-index tie-breaks, and multiseq_partition's
// (value, run, position) tie-breaking matches.  The layouts can differ
// only in time, never in output — the property the acceptance sweeps
// pin across 100 seeds.
//
// The key mirrors cost 8 bytes per element of transient space, repaid
// by the merge loop touching sizeof(key) instead of sizeof(Record)
// bytes per comparison (8x less for Record64).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mlm/parallel/executor.h"
#include "mlm/parallel/parallel_for.h"
#include "mlm/parallel/stream_copy.h"
#include "mlm/sort/loser_tree.h"
#include "mlm/sort/multiway_merge.h"
#include "mlm/sort/record.h"
#include "mlm/support/error.h"

namespace mlm::sort {

/// Sequential key/payload-split k-way merge.  Byte-identical output to
/// multiway_merge over the same runs (records compare by key; ties by
/// run index).  `payload_mode` selects the record-copy kernel; bytes
/// are identical in every mode.
template <std::size_t N>
void multiway_merge_split(std::span<const Run<Record<N>>> runs,
                          std::span<Record<N>> out,
                          CopyMode payload_mode = CopyMode::Auto) {
  using Rec = Record<N>;
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  MLM_REQUIRE(out.size() == total, "output size must equal total run size");
  if (total == 0) return;

  std::vector<Run<Rec>> live;
  live.reserve(runs.size());
  for (const auto& r : runs) {
    if (!r.empty()) live.push_back(r);
  }
  if (live.size() == 1) {
    copy_bytes(out.data(), live[0].data(), live[0].size() * sizeof(Rec),
               payload_mode);
    return;
  }

  // Dense key mirrors: one sequential extraction pass per run.  After
  // this the merge loop never touches a payload byte.
  std::vector<std::vector<std::uint64_t>> keys(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    keys[i].resize(live[i].size());
    const Rec* src = live[i].data();
    for (std::size_t j = 0; j < live[i].size(); ++j) {
      keys[i][j] = src[j].key;
    }
  }

  LoserTree<const std::uint64_t*> lt(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    lt.set_run(i, keys[i].data(), keys[i].data() + keys[i].size());
  }
  lt.init();

  // Per-run record cursors advance in lockstep with the key mirrors.
  std::vector<const Rec*> cursor(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) cursor[i] = live[i].data();

  // The streak keys themselves are throwaway (the records carry them);
  // a small stack buffer caps each streak without touching the heap.
  constexpr std::size_t kStreakCap = 512;
  std::uint64_t streak[kStreakCap];

  Rec* dst = out.data();
  std::size_t src_run = 0;
  while (!lt.empty()) {
    const std::size_t got = lt.pop_streak(streak, kStreakCap, src_run);
    copy_bytes(dst, cursor[src_run], got * sizeof(Rec), payload_mode);
    cursor[src_run] += got;
    dst += got;
  }
  MLM_CHECK(dst == out.data() + total);
}

/// Parallel key/payload-split merge: same exact multisequence
/// partitioning as parallel_multiway_merge (records compare by key, so
/// the part boundaries match the AoS path element for element), each
/// part merged with the sequential split kernel.
template <std::size_t N>
void parallel_multiway_merge_split(Executor& pool,
                                   std::span<const Run<Record<N>>> runs,
                                   std::span<Record<N>> out,
                                   CopyMode payload_mode = CopyMode::Auto) {
  using Rec = Record<N>;
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  MLM_REQUIRE(out.size() == total, "output size must equal total run size");
  if (total == 0) return;

  const std::size_t parts = std::min<std::size_t>(
      pool.size(), std::max<std::size_t>(total / 4096, 1));
  if (parts <= 1) {
    multiway_merge_split(runs, out, payload_mode);
    return;
  }

  std::vector<std::vector<std::size_t>> boundaries(parts + 1);
  boundaries[0].assign(runs.size(), 0);
  for (std::size_t p = 1; p < parts; ++p) {
    boundaries[p] = multiseq_partition(runs, total * p / parts);
  }
  boundaries[parts].resize(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    boundaries[parts][i] = runs[i].size();
  }

  parallel_for(pool, 0, parts, [&](std::size_t p) {
    std::vector<Run<Rec>> slice(runs.size());
    std::size_t out_begin = 0;
    std::size_t out_len = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const std::size_t b = boundaries[p][i];
      const std::size_t e = boundaries[p + 1][i];
      slice[i] = runs[i].subspan(b, e - b);
      out_begin += b;
      out_len += e - b;
    }
    multiway_merge_split(std::span<const Run<Rec>>(slice),
                         out.subspan(out_begin, out_len), payload_mode);
  });
}

namespace split_detail {

/// Stable local run sort for the SoA layout: sort (key, original index)
/// pairs — a total order, so the unstable std::sort is effectively
/// stable — then gather records through the index column.  The records
/// themselves move once, after all comparisons are done on 16-byte
/// pairs.
template <std::size_t N>
void stable_sort_range_split(std::span<Record<N>> range,
                             std::span<Record<N>> scratch) {
  struct KeyIdx {
    std::uint64_t key;
    std::uint64_t idx;
  };
  std::vector<KeyIdx> pairs(range.size());
  for (std::size_t i = 0; i < range.size(); ++i) {
    pairs[i] = {range[i].key, i};
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const KeyIdx& a, const KeyIdx& b) {
              return a.key != b.key ? a.key < b.key : a.idx < b.idx;
            });
  for (std::size_t i = 0; i < range.size(); ++i) {
    scratch[i] = range[pairs[i].idx];
  }
  std::copy(scratch.begin(), scratch.begin() + range.size(),
            range.begin());
}

}  // namespace split_detail

/// Parallel record sort in either layout.  Stable (equal keys keep
/// input order), so for a given input the two layouts produce
/// byte-identical results; `scratch` must be at least data.size().
///
/// Aos: stable-sorted local runs + the AoS exact-splitting parallel
/// merge — the gnu_like_parallel_sort structure with stability.
/// SoaSplit: local runs sorted via (key, index) pairs, then the
/// key/payload-split parallel merge.
template <std::size_t N>
void sort_records(Executor& pool, std::span<Record<N>> data,
                  std::span<Record<N>> scratch, RecordLayout layout,
                  CopyMode payload_mode = CopyMode::Auto) {
  using Rec = Record<N>;
  MLM_REQUIRE(scratch.size() >= data.size(),
              "scratch must be at least input size");
  const std::size_t n = data.size();
  if (n <= 1) return;

  const std::size_t p = std::min(pool.size(), (n + 1023) / 1024);
  const std::vector<IndexRange> ranges = partition_all(n, std::max<std::size_t>(p, 1));

  // Phase 1: stable local runs (layout decides how).
  parallel_for(pool, 0, ranges.size(), [&](std::size_t i) {
    auto range = data.subspan(ranges[i].begin, ranges[i].size());
    if (layout == RecordLayout::SoaSplit) {
      split_detail::stable_sort_range_split<N>(
          range, scratch.subspan(ranges[i].begin, ranges[i].size()));
    } else {
      std::stable_sort(range.begin(), range.end());
    }
  });
  if (ranges.size() <= 1) return;

  // Phase 2: exact-splitting parallel merge into scratch.
  std::vector<Run<Rec>> runs;
  runs.reserve(ranges.size());
  for (const IndexRange& r : ranges) {
    runs.emplace_back(data.data() + r.begin, r.size());
  }
  if (layout == RecordLayout::SoaSplit) {
    parallel_multiway_merge_split(pool, std::span<const Run<Rec>>(runs),
                                  scratch.subspan(0, n), payload_mode);
  } else {
    parallel_multiway_merge(pool, std::span<const Run<Rec>>(runs),
                            scratch.subspan(0, n));
  }

  // Phase 3: copy back (parallel, line-aligned slices).
  parallel_for_ranges(pool, 0, n, [&](IndexRange r) {
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(r.begin),
              scratch.begin() + static_cast<std::ptrdiff_t>(r.end),
              data.begin() + static_cast<std::ptrdiff_t>(r.begin));
  });
}

}  // namespace mlm::sort

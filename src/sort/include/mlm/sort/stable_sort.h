// Stable sorts: serial top-down mergesort and the stable counterpart of
// gnu_like_parallel_sort.
//
// GNU parallel mode ships both __gnu_parallel::sort and
// __gnu_parallel::stable_sort; the paper's kernels only need the
// unstable one, but a library users would adopt must offer stability
// (sort-by-key with attached payloads).  The parallel variant reuses the
// exact-splitting multiway merge, which preserves run order — so stable
// local runs over consecutive slices compose into a globally stable
// sort.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "mlm/parallel/parallel_for.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/sort/merge_kernels.h"
#include "mlm/sort/multiway_merge.h"
#include "mlm/support/error.h"

namespace mlm::sort {

namespace stable_detail {
constexpr std::size_t kInsertionThreshold = 32;

/// Stable binary insertion sort on [first, last).
template <typename It, typename Comp>
void insertion(It first, It last, Comp& comp) {
  for (It i = first + 1; i < last; ++i) {
    auto v = std::move(*i);
    It pos = std::upper_bound(first, i, v, comp);
    std::move_backward(pos, i, i + 1);
    *pos = std::move(v);
  }
}

/// Top-down merge sort of data[lo, hi) using buf as merge target;
/// result lands in data.
template <typename T, typename Comp>
void msort(T* data, T* buf, std::size_t lo, std::size_t hi, Comp& comp) {
  if (hi - lo <= kInsertionThreshold) {
    insertion(data + lo, data + hi, comp);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  msort(data, buf, lo, mid, comp);
  msort(data, buf, mid, hi, comp);
  // Merge halves into buf, stably (left wins ties), then move back.
  // Trivially copyable types take the branch-light unrolled kernel;
  // move-only/heavy types keep the move-iterator std::merge.
  if constexpr (std::is_trivially_copyable_v<T>) {
    merge_two_runs<T>(data + lo, data + mid, data + mid, data + hi,
                      buf + lo, comp);
    std::copy(buf + lo, buf + hi, data + lo);
  } else {
    std::merge(std::make_move_iterator(data + lo),
               std::make_move_iterator(data + mid),
               std::make_move_iterator(data + mid),
               std::make_move_iterator(data + hi), buf + lo, comp);
    std::move(buf + lo, buf + hi, data + lo);
  }
}
}  // namespace stable_detail

/// Serial stable mergesort; `scratch` must be at least data.size().
template <typename T, typename Comp = std::less<>>
void stable_merge_sort(std::span<T> data, std::span<T> scratch,
                       Comp comp = {}) {
  MLM_REQUIRE(scratch.size() >= data.size(),
              "scratch must be at least input size");
  if (data.size() <= 1) return;
  stable_detail::msort(data.data(), scratch.data(), 0, data.size(), comp);
}

/// Stable counterpart of gnu_like_parallel_sort: p stable local sorts
/// over consecutive slices, then the exact-splitting multiway merge
/// (stable across run order).
template <typename T, typename Comp = std::less<>>
void parallel_stable_sort(ThreadPool& pool, std::span<T> data,
                          std::span<T> scratch, Comp comp = {}) {
  MLM_REQUIRE(scratch.size() >= data.size(),
              "scratch must be at least input size");
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::size_t p = std::min(pool.size(), (n + 1023) / 1024);
  if (p <= 1) {
    stable_merge_sort(data, scratch, comp);
    return;
  }

  const std::vector<IndexRange> ranges = partition_all(n, p);
  parallel_for(pool, 0, p, [&](std::size_t i) {
    stable_merge_sort(data.subspan(ranges[i].begin, ranges[i].size()),
                      scratch.subspan(ranges[i].begin, ranges[i].size()),
                      comp);
  });

  std::vector<Run<T>> runs;
  runs.reserve(p);
  for (const IndexRange& r : ranges) {
    runs.emplace_back(data.data() + r.begin, r.size());
  }
  parallel_multiway_merge(pool, std::span<const Run<T>>(runs),
                          scratch.subspan(0, n), comp);
  parallel_for_ranges(pool, 0, n, [&](IndexRange r) {
    std::copy(scratch.begin() + r.begin, scratch.begin() + r.end,
              data.begin() + r.begin);
  });
}

/// Exact k-th smallest element (0-indexed) across pre-sorted runs, using
/// the multisequence partition — O(k log k log n) with no data movement.
/// Exposed because chunked pipelines often need order statistics of
/// their sorted runs (e.g. percentile cuts) without a full merge.
template <typename T, typename Comp = std::less<>>
const T& kth_element_of_runs(std::span<const Run<T>> runs, std::size_t k,
                             Comp comp = {}) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  MLM_REQUIRE(k < total, "k out of range");
  // Elements before the splits are exactly the k smallest; the k-th is
  // the minimum of the suffix heads.
  const auto splits = multiseq_partition(runs, k, comp);
  const T* best = nullptr;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (splits[i] < runs[i].size()) {
      const T& cand = runs[i][splits[i]];
      if (best == nullptr || comp(cand, *best)) best = &cand;
    }
  }
  MLM_CHECK(best != nullptr);
  return *best;
}

}  // namespace mlm::sort

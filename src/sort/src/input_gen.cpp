#include "mlm/sort/input_gen.h"

#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm::sort {

const char* to_string(InputOrder order) {
  switch (order) {
    case InputOrder::Random: return "random";
    case InputOrder::Reverse: return "reverse";
    case InputOrder::Sorted: return "sorted";
    case InputOrder::NearlySorted: return "nearly-sorted";
    case InputOrder::FewDistinct: return "few-distinct";
  }
  return "?";
}

InputOrder parse_input_order(const std::string& name) {
  if (name == "random") return InputOrder::Random;
  if (name == "reverse") return InputOrder::Reverse;
  if (name == "sorted") return InputOrder::Sorted;
  if (name == "nearly-sorted") return InputOrder::NearlySorted;
  if (name == "few-distinct") return InputOrder::FewDistinct;
  throw InvalidArgumentError("unknown input order: " + name);
}

void generate_input(std::span<std::int64_t> out, InputOrder order,
                    std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const std::size_t n = out.size();
  switch (order) {
    case InputOrder::Random:
      for (auto& v : out) v = static_cast<std::int64_t>(rng.next());
      return;
    case InputOrder::Reverse:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::int64_t>(n - i);
      }
      return;
    case InputOrder::Sorted:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::int64_t>(i);
      }
      return;
    case InputOrder::NearlySorted: {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::int64_t>(i);
      }
      const std::size_t swaps = n / 100 + 1;
      for (std::size_t s = 0; s < swaps && n >= 2; ++s) {
        const std::size_t a = rng.bounded(n);
        const std::size_t b = rng.bounded(n);
        std::swap(out[a], out[b]);
      }
      return;
    }
    case InputOrder::FewDistinct:
      for (auto& v : out) {
        v = static_cast<std::int64_t>(rng.bounded(16));
      }
      return;
  }
  throw InvalidArgumentError("unhandled input order");
}

std::vector<std::int64_t> make_input(std::size_t n, InputOrder order,
                                     std::uint64_t seed) {
  std::vector<std::int64_t> v(n);
  generate_input(v, order, seed);
  return v;
}

InputChecksum checksum(std::span<const std::int64_t> data) {
  InputChecksum c;
  for (std::int64_t v : data) {
    c.sum += static_cast<std::uint64_t>(v);
    c.xor_ ^= static_cast<std::uint64_t>(v);
  }
  return c;
}

}  // namespace mlm::sort

#include "mlm/sort/record.h"

#include "mlm/support/error.h"

namespace mlm::sort {

RecordLayout parse_record_layout(const std::string& name) {
  if (name == "aos") return RecordLayout::Aos;
  if (name == "soa" || name == "soa_split" || name == "split") {
    return RecordLayout::SoaSplit;
  }
  throw InvalidArgumentError("unknown RecordLayout name: " + name);
}

}  // namespace mlm::sort

// The one cache-line constant.
//
// The repo used to hardcode `64` in half a dozen places: arena alignment,
// merge-block round-ups, chunk-size truncation, streaming-copy group size,
// and ad-hoc `alignas(64)` padding of per-thread counters.  Those are all
// the *same* assumption — "a cache line is 64 bytes on KNL and on every
// x86 host we run on" — so they must move together if it ever changes
// (and so false-sharing padding provably matches copy-slice granularity).
#pragma once

#include <cstddef>

namespace mlm {

/// Cache line size shared by false-sharing padding, copy-slice alignment,
/// arena alignment, and merge-block round-ups.  KNL's MCDRAM and DDR both
/// use 64-byte lines (paper §1.1), as does every x86-64 host this code
/// targets.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Round `n` down to a multiple of `align` (power of two not required).
constexpr std::size_t round_down(std::size_t n, std::size_t align) {
  return align == 0 ? n : n / align * align;
}

/// Round `n` up to a multiple of `align`.
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return align == 0 ? n : (n + align - 1) / align * align;
}

}  // namespace mlm

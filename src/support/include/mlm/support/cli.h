// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms.  Unknown flags raise an error so typos in sweep
// scripts fail loudly instead of silently benchmarking the default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mlm {

class CliParser {
 public:
  /// `description` is printed by --help along with registered flags.
  explicit CliParser(std::string description);

  // Registration: each returns a pointer whose pointee is updated by
  // parse().  Pointers must outlive the parse() call.
  void add_flag(const std::string& name, bool* value,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t* value,
               const std::string& help);
  void add_uint(const std::string& name, std::uint64_t* value,
                const std::string& help);
  void add_double(const std::string& name, double* value,
                  const std::string& help);
  void add_string(const std::string& name, std::string* value,
                  const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help text has
  /// been printed); throws InvalidArgumentError on malformed input.
  bool parse(int argc, const char* const* argv);

  /// Positional arguments left over after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help() const;

 private:
  enum class Kind { Bool, Int, Uint, Double, String };
  struct Option {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  void register_option(const std::string& name, Kind kind, void* target,
                       const std::string& help, std::string default_repr);
  void assign(const std::string& name, Option& opt,
              const std::string& value);

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace mlm

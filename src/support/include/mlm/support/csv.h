// CSV emission for bench binaries: every experiment also writes its series
// as machine-readable CSV (one file per table/figure) so results can be
// re-plotted and diffed against the paper's numbers.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mlm {

/// Append-only CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates) and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  /// Flushes and closes; subsequent writes are an error.
  void close();

  bool is_open() const { return out_.is_open(); }

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace mlm

// Error handling primitives shared by every mlm module.
//
// Library code never calls abort()/exit(); invariant violations throw
// mlm::Error so tests can assert on failure modes and applications can
// recover (e.g. fall back to DDR when an MCDRAM arena is exhausted).
#pragma once

#include <stdexcept>
#include <string>

namespace mlm {

/// Base exception for all mlm library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an allocation does not fit in a capacity-limited MemorySpace.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Thrown when a caller passes an argument that violates a documented
/// precondition (bad thread counts, zero chunk sizes, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace mlm

/// MLM_CHECK(cond): always-on invariant check; throws mlm::Error on failure.
#define MLM_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlm::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
    }                                                                       \
  } while (0)

/// MLM_CHECK_MSG(cond, msg): as MLM_CHECK with an extra context message.
#define MLM_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlm::detail::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)

/// MLM_REQUIRE(cond, msg): precondition check; throws InvalidArgumentError.
#define MLM_REQUIRE(cond, msg)                              \
  do {                                                      \
    if (!(cond)) {                                          \
      throw ::mlm::InvalidArgumentError(                    \
          std::string("precondition failed: ") + (msg));    \
    }                                                       \
  } while (0)

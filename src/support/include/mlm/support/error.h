// Error handling primitives shared by every mlm module.
//
// Library code never calls abort()/exit(); invariant violations throw
// mlm::Error so tests can assert on failure modes and applications can
// recover (e.g. fall back to DDR when an MCDRAM arena is exhausted).
//
// Errors carry a *context chain*: as an exception unwinds through the
// chunk pipeline or the external sorter, each layer annotates it with an
// ErrorFrame (which stage, which chunk, which tier, which thread) via
// Error::with_frame and rethrows.  what() then reads like
//
//   injected fault at site 'pipeline.stage.compute'
//     in compute [chunk 3] [tier mcdram] [thread pool-worker]
//     in run_chunk_pipeline [tier mcdram]
//
// so an unrecoverable fault at MCDRAM capacity is diagnosable from the
// message alone, without a debugger attached to the dead run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mlm {

/// One layer of context attached to an Error as it propagates.
struct ErrorFrame {
  /// The operation that was in flight (stage or phase name, e.g.
  /// "copy_in", "sort.external.stage_in", "run_chunk_pipeline").
  std::string op;
  /// Chunk index the operation was processing; -1 when not applicable.
  std::int64_t chunk = -1;
  /// Memory tier involved (e.g. "mcdram", "ddr"); empty when unknown.
  std::string tier;
  /// Thread that observed the failure (e.g. "orchestrator",
  /// "pool-worker"); empty when unknown.
  std::string thread;
  /// Free-form extra context (retry counts, sizes, ...).
  std::string detail;

  /// "in <op> [chunk N] [tier T] [thread X] (<detail>)" — only the
  /// fields that are set.
  std::string to_string() const;
};

/// Base exception for all mlm library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), message_(what) {}

  /// Append a context frame (innermost first) and return *this so a
  /// catch site can `throw e.with_frame({...})` or annotate-and-rethrow.
  Error& with_frame(ErrorFrame frame);

  /// Context frames, innermost (closest to the failure) first.
  const std::vector<ErrorFrame>& chain() const noexcept { return frames_; }

  /// Original message plus one indented line per frame.
  const char* what() const noexcept override;

 private:
  std::string message_;
  std::vector<ErrorFrame> frames_;
  mutable std::string formatted_;
};

/// Thrown when an allocation does not fit in a capacity-limited MemorySpace.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Thrown when a caller passes an argument that violates a documented
/// precondition (bad thread counts, zero chunk sizes, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// An Error chain recovered from its what() rendering.
struct ParsedError {
  /// The original message (everything before the first frame line).
  std::string message;
  /// Frames innermost first, exactly as Error::chain() ordered them.
  std::vector<ErrorFrame> frames;
};

/// Parse an Error::what() rendering back into message + frames — the
/// inverse of the formatting above, for log scrapers and tests that only
/// see the flattened text (a journal record, a child process's stderr).
/// Round-trips any chain whose ops contain none of the marker substrings
/// (" [chunk ", " [tier ", " [thread ", " (") and whose tier/thread
/// values contain no ']'; the renderer never emits those for the
/// library's own frames.  An empty op renders as "?" and parses back to
/// "".  Throws InvalidArgumentError on a frame line that does not match
/// the grammar (the message itself is free-form and never rejected).
ParsedError parse_rendered_error(const std::string& rendered);

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace mlm

/// MLM_CHECK(cond): always-on invariant check; throws mlm::Error on failure.
#define MLM_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlm::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
    }                                                                       \
  } while (0)

/// MLM_CHECK_MSG(cond, msg): as MLM_CHECK with an extra context message.
#define MLM_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlm::detail::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)

/// MLM_REQUIRE(cond, msg): precondition check; throws InvalidArgumentError.
#define MLM_REQUIRE(cond, msg)                              \
  do {                                                      \
    if (!(cond)) {                                          \
      throw ::mlm::InvalidArgumentError(                    \
          std::string("precondition failed: ") + (msg));    \
    }                                                       \
  } while (0)

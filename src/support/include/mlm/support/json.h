// Minimal JSON document model for benchmark artifacts.
//
// The bench harness (mlm/bench) emits machine-readable perf artifacts
// with a stable schema, and tools/bench_compare reads two of them back
// to gate regressions in CI.  Both directions live here: JsonValue is a
// small ordered document tree with a writer (stable member order, full
// string escaping, round-trippable number formatting) and a strict
// parser.  It is deliberately not a general-purpose JSON library — no
// comments, no NaN/Infinity extensions, UTF-8 passed through verbatim.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mlm/support/error.h"

namespace mlm {

/// Thrown by json_parse on malformed input (with offset context).
class JsonParseError : public Error {
 public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

/// One JSON value: null, bool, number, string, array, or object.
/// Objects preserve insertion order so emitted artifacts are stable and
/// diffable run-to-run.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  JsonValue(std::nullptr_t) : kind_(Kind::Null) {}
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::Number), num_(d) {}
  JsonValue(int i) : kind_(Kind::Number), num_(i) {}
  JsonValue(std::int64_t i)
      : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::Number), num_(static_cast<double>(u)) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  // Typed accessors; throw mlm::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // Array access.
  void push_back(JsonValue v);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;
  const std::vector<JsonValue>& items() const;

  // Object access.  set() appends or overwrites in place (keeping the
  // original position); get() throws on a missing key, find() returns
  // nullptr instead.
  void set(const std::string& key, JsonValue v);
  bool contains(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serialize.  indent > 0 pretty-prints with that many spaces per
  /// level; indent == 0 emits the compact single-line form.
  std::string dump(int indent = 2) const;

  /// Escape + quote one string as a JSON string literal.
  static std::string quote(const std::string& s);

  /// Render one double the way dump() does: integers without a decimal
  /// point, everything else with enough digits to round-trip.
  static std::string number_repr(double v);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
JsonValue json_parse(const std::string& text);

/// Read and parse a JSON file; throws mlm::Error on I/O failure.
JsonValue json_parse_file(const std::string& path);

/// Write `value.dump(indent)` to `path`; throws mlm::Error on failure.
void json_write_file(const std::string& path, const JsonValue& value,
                     int indent = 2);

}  // namespace mlm

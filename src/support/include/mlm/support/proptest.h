// Minimal property-testing support: seeded generators, bounded input
// shrinking, and stable digests.
//
// The repo's reproducibility rule (see mlm/support/rng.h) extends to
// randomized tests: every random input derives from an explicit 64-bit
// seed through the fully-specified Xoshiro256ss stream, so a failing
// property is reproducible forever from the seed printed in the failure
// message.  No framework dependency — the helpers compose with plain
// GoogleTest assertions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "mlm/support/rng.h"

namespace mlm {

/// FNV-1a 64-bit digest of a byte range.  Used for golden digests in
/// seed-stability tests: a generator is byte-identical run to run iff
/// its digest matches the recorded constant.
constexpr std::uint64_t fnv1a64(const std::uint8_t* data,
                                std::size_t bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Digest of a trivially-copyable value sequence.
template <typename T>
std::uint64_t digest_of(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(values.data()),
                 values.size() * sizeof(T));
}

/// Seeded input generator for property tests.  Thin sugar over
/// Xoshiro256ss; one Gen per property case, seeded by case index.
class Gen {
 public:
  explicit Gen(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::uint64_t seed() const { return seed_; }

  std::uint64_t u64() { return rng_.next(); }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return rng_.bounded(bound); }

  /// Uniform in [lo, hi] (inclusive).
  std::int64_t int_in(std::int64_t lo, std::int64_t hi) {
    const auto width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    return lo + static_cast<std::int64_t>(rng_.bounded(width + 1));
  }

  /// Uniform size in [lo, hi] (inclusive).
  std::size_t size_in(std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng_.bounded(hi - lo + 1));
  }

  bool boolean(double p_true = 0.5) { return rng_.uniform01() < p_true; }

  /// Vector of `size_in(min_len, max_len)` elements drawn from `elem`.
  template <typename T, typename Fn>
  std::vector<T> vector(std::size_t min_len, std::size_t max_len,
                        Fn&& elem) {
    std::vector<T> v(size_in(min_len, max_len));
    for (T& x : v) x = elem(*this);
    return v;
  }

  /// Integer vector with values in [lo, hi].
  std::vector<std::int64_t> int_vector(std::size_t min_len,
                                       std::size_t max_len,
                                       std::int64_t lo, std::int64_t hi) {
    return vector<std::int64_t>(
        min_len, max_len, [lo, hi](Gen& g) { return g.int_in(lo, hi); });
  }

 private:
  std::uint64_t seed_;
  Xoshiro256ss rng_;
};

/// Bounded greedy shrinking of a failing vector input: repeatedly try
/// removing blocks (halves, quarters, ... single elements) and — for
/// integral T — simplifying elements toward zero, keeping every
/// transformation under which `fails` still returns true.  The predicate
/// is invoked at most `max_attempts` times, so shrinking always
/// terminates quickly; the result is a locally-minimal failing input,
/// not a guaranteed global minimum.
template <typename T>
std::vector<T> shrink_vector(
    std::vector<T> failing,
    const std::function<bool(const std::vector<T>&)>& fails,
    std::size_t max_attempts = 256) {
  std::size_t attempts = 0;
  auto try_candidate = [&](const std::vector<T>& candidate) {
    if (attempts >= max_attempts) return false;
    ++attempts;
    return fails(candidate);
  };

  // Phase 1: delta-debugging-style block removal.
  for (std::size_t block = failing.size(); block >= 1; block /= 2) {
    bool removed = true;
    while (removed && failing.size() > 0 && attempts < max_attempts) {
      removed = false;
      for (std::size_t off = 0; off + block <= failing.size();
           off += block) {
        std::vector<T> candidate;
        candidate.reserve(failing.size() - block);
        candidate.insert(candidate.end(), failing.begin(),
                         failing.begin() + static_cast<std::ptrdiff_t>(off));
        candidate.insert(
            candidate.end(),
            failing.begin() + static_cast<std::ptrdiff_t>(off + block),
            failing.end());
        if (try_candidate(candidate)) {
          failing = std::move(candidate);
          removed = true;
          break;
        }
      }
    }
    if (block == 1) break;
  }

  // Phase 2: simplify surviving elements toward zero.  Binary search
  // between zero and the current value so boundary counterexamples
  // (e.g. exactly 100 for "fails iff >= 100") are found, not just
  // power-of-two fractions.
  if constexpr (std::is_integral_v<T>) {
    for (std::size_t i = 0;
         i < failing.size() && attempts < max_attempts; ++i) {
      T bound = 0;
      while (failing[i] != bound && attempts < max_attempts) {
        const T mid = static_cast<T>(bound + (failing[i] - bound) / 2);
        if (mid == failing[i]) break;
        std::vector<T> candidate = failing;
        candidate[i] = mid;
        if (try_candidate(candidate)) {
          failing = std::move(candidate);
        } else {
          bound = static_cast<T>(mid + (failing[i] > bound ? 1 : -1));
        }
      }
    }
  }
  return failing;
}

}  // namespace mlm

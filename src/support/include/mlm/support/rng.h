// Deterministic, high-quality PRNGs for workload generation.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// workload generators take an explicit seed and use these engines rather
// than std::random_device / std::mt19937 (whose streams differ across
// standard library versions for the distributions).
#pragma once

#include <cstdint>
#include <limits>

namespace mlm {

/// SplitMix64: tiny, statistically solid 64-bit generator; used to seed
/// Xoshiro and for cheap one-off hashing of indices.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, passes BigCrush, and its stream
/// is fully specified (unlike distribution-wrapped std engines).
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256ss(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mlm

// Streaming statistics used by benchmark harnesses (the paper reports
// mean and standard deviation over 10 runs in Table 1).
#pragma once

#include <cstddef>
#include <vector>

namespace mlm {

/// Welford's online mean/variance accumulator.  Numerically stable; O(1)
/// per sample, no sample storage.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample vector: mean, stddev, min, max, median, p-th
/// percentiles.  Used by bench binaries to print Table-1-style rows.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

SampleSummary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a sample vector; p in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace mlm

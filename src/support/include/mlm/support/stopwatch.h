// Wall-clock stopwatch for host-mode measurements.
#pragma once

#include <chrono>

namespace mlm {

/// Monotonic wall-clock stopwatch.  `elapsed_s()` can be read repeatedly;
/// `restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mlm

// ASCII table printing for bench binaries.
//
// Every bench target regenerates one of the paper's tables or figures and
// prints it in a format visually comparable to the paper (Table 1/2/3) or
// as a data series suitable for plotting (Figures 6/7/8).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mlm {

/// Column alignment within a TextTable.
enum class Align { Left, Right };

/// Minimal monospace table builder.
///
///   TextTable t({"Elements", "Algorithm", "Mean(s)"});
///   t.add_row({"2e9", "MLM-sort", "8.09"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt_double(double v, int prec = 2);

/// Format a count with thousands separators: 2000000000 -> "2,000,000,000".
std::string fmt_count(std::uint64_t v);

/// Render a value in a fixed-width horizontal bar (for figure-style output):
/// bar(3.0, 10.0, 20) -> "######              ".
std::string ascii_bar(double value, double max_value, int width);

}  // namespace mlm

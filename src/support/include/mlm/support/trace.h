// Chrome trace-event export for simulated timelines.
//
// Every simulated run produces named phases with durations; TraceWriter
// turns them into the Trace Event Format JSON that chrome://tracing and
// Perfetto load, so a bench run can be inspected visually
// (`mode_explorer --trace=sort.json`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mlm {

/// Collects complete ("X") trace events and serializes them.
class TraceWriter {
 public:
  /// Add an event on `track` (rendered as a thread) spanning
  /// [start_s, start_s + duration_s), with a category label.
  void add_event(const std::string& name, const std::string& category,
                 std::uint32_t track, double start_s, double duration_s);

  /// Convenience: append a run of sequential phases to a track starting
  /// at `start_s`; returns the end time.
  double add_sequential(const std::vector<std::pair<std::string, double>>&
                            phases,
                        const std::string& category, std::uint32_t track,
                        double start_s = 0.0);

  /// Give `track` a human-readable name (rendered as the thread name in
  /// the viewer via a "thread_name" metadata event).
  void set_track_name(std::uint32_t track, const std::string& name);

  /// The name set for `track`, or "" when unnamed.
  std::string track_name(std::uint32_t track) const;

  std::size_t size() const { return events_.size(); }

  /// Serialize as Trace Event Format JSON (object form with
  /// "traceEvents" and microsecond timestamps).
  std::string to_json() const;

  /// Write to a file; throws mlm::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    std::uint32_t track;
    double start_us;
    double duration_us;
  };
  std::vector<Event> events_;
  std::map<std::uint32_t, std::string> track_names_;
};

}  // namespace mlm

// Strongly-suggestive unit helpers for bytes, seconds, and bandwidth.
//
// The paper (and the KNL spec sheets it relies on) quotes capacities in
// binary units (16 GB MCDRAM == 16 GiB) and bandwidths in decimal GB/s
// (STREAM convention).  To avoid the classic 7% confusion we keep the two
// conventions explicit: capacity helpers are binary, bandwidth helpers are
// decimal, and everything is converted to bytes / bytes-per-second doubles
// at the boundary.
#pragma once

#include <cstdint>

namespace mlm {

// ---- capacities (binary, like memory devices) -----------------------------
constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

// ---- transfer sizes / bandwidths (decimal, like STREAM) -------------------
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;

/// Bandwidth literal: gb_per_s(90.0) -> bytes/second.
constexpr double gb_per_s(double gb) { return gb * GB; }

/// Convert a byte count to decimal gigabytes (for reporting).
constexpr double bytes_to_gb(double bytes) { return bytes / GB; }

/// Convert a byte count to binary gibibytes (for capacity reporting).
constexpr double bytes_to_gib(double bytes) {
  return bytes / static_cast<double>(GiB(1));
}

// ---- time -----------------------------------------------------------------
constexpr double ms(double x) { return x * 1e-3; }
constexpr double us(double x) { return x * 1e-6; }

}  // namespace mlm

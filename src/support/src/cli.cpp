#include "mlm/support/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "mlm/support/error.h"

namespace mlm {

CliParser::CliParser(std::string description)
    : description_(std::move(description)) {}

void CliParser::register_option(const std::string& name, Kind kind,
                                void* target, const std::string& help,
                                std::string default_repr) {
  MLM_REQUIRE(!name.empty() && name[0] != '-',
              "flag name must not include leading dashes: " + name);
  MLM_REQUIRE(target != nullptr, "flag target must not be null");
  const bool inserted =
      options_
          .emplace(name, Option{kind, target, help, std::move(default_repr)})
          .second;
  MLM_REQUIRE(inserted, "duplicate flag registration: " + name);
}

void CliParser::add_flag(const std::string& name, bool* value,
                         const std::string& help) {
  register_option(name, Kind::Bool, value, help, *value ? "true" : "false");
}
void CliParser::add_int(const std::string& name, std::int64_t* value,
                        const std::string& help) {
  register_option(name, Kind::Int, value, help, std::to_string(*value));
}
void CliParser::add_uint(const std::string& name, std::uint64_t* value,
                         const std::string& help) {
  register_option(name, Kind::Uint, value, help, std::to_string(*value));
}
void CliParser::add_double(const std::string& name, double* value,
                           const std::string& help) {
  register_option(name, Kind::Double, value, help, std::to_string(*value));
}
void CliParser::add_string(const std::string& name, std::string* value,
                           const std::string& help) {
  register_option(name, Kind::String, value, help, *value);
}

void CliParser::assign(const std::string& name, Option& opt,
                       const std::string& value) {
  errno = 0;
  char* end = nullptr;
  switch (opt.kind) {
    case Kind::Bool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(opt.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(opt.target) = false;
      } else {
        throw InvalidArgumentError("bad boolean for --" + name + ": " +
                                   value);
      }
      return;
    }
    case Kind::Int: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        throw InvalidArgumentError("bad integer for --" + name + ": " +
                                   value);
      }
      *static_cast<std::int64_t*>(opt.target) = v;
      return;
    }
    case Kind::Uint: {
      if (!value.empty() && value[0] == '-') {
        throw InvalidArgumentError("negative value for --" + name + ": " +
                                   value);
      }
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        throw InvalidArgumentError("bad unsigned integer for --" + name +
                                   ": " + value);
      }
      *static_cast<std::uint64_t*>(opt.target) = v;
      return;
    }
    case Kind::Double: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        throw InvalidArgumentError("bad number for --" + name + ": " +
                                   value);
      }
      *static_cast<double*>(opt.target) = v;
      return;
    }
    case Kind::String:
      *static_cast<std::string*>(opt.target) = value;
      return;
  }
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    // --no-<flag> negation for booleans.
    if (!has_value && body.rfind("no-", 0) == 0) {
      const std::string positive = body.substr(3);
      auto it = options_.find(positive);
      if (it != options_.end() && it->second.kind == Kind::Bool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }

    auto it = options_.find(body);
    if (it == options_.end()) {
      throw InvalidArgumentError("unknown flag: --" + body +
                                 " (see --help)");
    }
    Option& opt = it->second;
    if (opt.kind == Kind::Bool && !has_value) {
      *static_cast<bool*>(opt.target) = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw InvalidArgumentError("flag --" + body + " requires a value");
      }
      value = argv[++i];
    }
    assign(body, opt, value);
  }
  return true;
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (opt.kind != Kind::Bool) os << "=<value>";
    os << "  " << opt.help << " (default: " << opt.default_repr << ")\n";
  }
  return os.str();
}

}  // namespace mlm

#include "mlm/support/csv.h"

#include "mlm/support/error.h"

namespace mlm {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  MLM_CHECK_MSG(out_.is_open(), "cannot open CSV output file: " + path);
  MLM_REQUIRE(!header.empty(), "CSV header must not be empty");
  write_row(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MLM_CHECK_MSG(out_.is_open(), "CSV writer already closed");
  MLM_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  const bool ok = out_.good();
  out_.close();
  MLM_CHECK_MSG(ok, "CSV write failed (disk full or file truncated?)");
}

std::string CsvWriter::escape(const std::string& cell) {
  // Quote on separators/quotes/newlines (RFC 4180) and also on
  // leading/trailing whitespace, which spreadsheet importers strip
  // from unquoted fields — bench param strings must round-trip exactly.
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos ||
      (!cell.empty() && (cell.front() == ' ' || cell.back() == ' ' ||
                         cell.front() == '\t' || cell.back() == '\t'));
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace mlm

#include "mlm/support/csv.h"

#include "mlm/support/error.h"

namespace mlm {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  MLM_CHECK_MSG(out_.is_open(), "cannot open CSV output file: " + path);
  MLM_REQUIRE(!header.empty(), "CSV header must not be empty");
  write_row(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MLM_CHECK_MSG(out_.is_open(), "CSV writer already closed");
  MLM_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace mlm

#include "mlm/support/error.h"

#include <sstream>

namespace mlm {

std::string ErrorFrame::to_string() const {
  std::ostringstream os;
  os << "in " << (op.empty() ? "?" : op);
  if (chunk >= 0) os << " [chunk " << chunk << "]";
  if (!tier.empty()) os << " [tier " << tier << "]";
  if (!thread.empty()) os << " [thread " << thread << "]";
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

Error& Error::with_frame(ErrorFrame frame) {
  frames_.push_back(std::move(frame));
  formatted_.clear();  // rebuilt lazily by what()
  return *this;
}

const char* Error::what() const noexcept {
  if (frames_.empty()) return std::runtime_error::what();
  try {
    if (formatted_.empty()) {
      std::ostringstream os;
      os << message_;
      for (const ErrorFrame& frame : frames_) {
        os << "\n  " << frame.to_string();
      }
      formatted_ = os.str();
    }
    return formatted_.c_str();
  } catch (...) {
    // Formatting must never throw out of what(); fall back to the
    // original message.
    return std::runtime_error::what();
  }
}

namespace {

/// Parse one frame body (the text after "in ") per the ErrorFrame
/// rendering grammar; throws on leftovers that match no production.
ErrorFrame parse_frame_body(const std::string& body) {
  static const std::string kChunk = " [chunk ";
  static const std::string kTier = " [tier ";
  static const std::string kThread = " [thread ";
  static const std::string kDetail = " (";

  ErrorFrame f;
  std::size_t op_end = body.size();
  for (const std::string* marker : {&kChunk, &kTier, &kThread, &kDetail}) {
    const std::size_t at = body.find(*marker);
    if (at != std::string::npos && at < op_end) op_end = at;
  }
  f.op = body.substr(0, op_end);
  if (f.op == "?") f.op.clear();  // empty op renders as "?"

  std::size_t pos = op_end;
  const auto take_bracketed = [&](const std::string& marker,
                                  std::string* out) {
    if (body.compare(pos, marker.size(), marker) != 0) return false;
    const std::size_t close = body.find(']', pos + marker.size());
    if (close == std::string::npos) {
      throw InvalidArgumentError("unterminated '" + marker +
                                 "' in rendered frame: " + body);
    }
    *out = body.substr(pos + marker.size(), close - pos - marker.size());
    pos = close + 1;
    return true;
  };

  std::string chunk_text;
  if (take_bracketed(kChunk, &chunk_text)) {
    f.chunk = std::stoll(chunk_text);
  }
  take_bracketed(kTier, &f.tier);
  take_bracketed(kThread, &f.thread);
  if (pos < body.size()) {
    // Only the detail production may remain: " (<detail>)" to the end.
    if (body.compare(pos, kDetail.size(), kDetail) != 0 ||
        body.back() != ')') {
      throw InvalidArgumentError("unparseable rendered frame: " + body);
    }
    f.detail = body.substr(pos + kDetail.size(),
                           body.size() - pos - kDetail.size() - 1);
  }
  return f;
}

}  // namespace

ParsedError parse_rendered_error(const std::string& rendered) {
  static const std::string kFramePrefix = "\n  in ";
  ParsedError parsed;
  std::size_t first = rendered.find(kFramePrefix);
  parsed.message = rendered.substr(0, first);
  while (first != std::string::npos) {
    const std::size_t body_at = first + kFramePrefix.size();
    const std::size_t next = rendered.find(kFramePrefix, body_at);
    const std::size_t body_end =
        next == std::string::npos ? rendered.size() : next;
    parsed.frames.push_back(parse_frame_body(
        rendered.substr(body_at, body_end - body_at)));
    first = next;
  }
  return parsed;
}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "MLM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace mlm

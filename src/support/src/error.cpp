#include "mlm/support/error.h"

#include <sstream>

namespace mlm::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "MLM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace mlm::detail

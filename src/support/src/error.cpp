#include "mlm/support/error.h"

#include <sstream>

namespace mlm {

std::string ErrorFrame::to_string() const {
  std::ostringstream os;
  os << "in " << (op.empty() ? "?" : op);
  if (chunk >= 0) os << " [chunk " << chunk << "]";
  if (!tier.empty()) os << " [tier " << tier << "]";
  if (!thread.empty()) os << " [thread " << thread << "]";
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

Error& Error::with_frame(ErrorFrame frame) {
  frames_.push_back(std::move(frame));
  formatted_.clear();  // rebuilt lazily by what()
  return *this;
}

const char* Error::what() const noexcept {
  if (frames_.empty()) return std::runtime_error::what();
  try {
    if (formatted_.empty()) {
      std::ostringstream os;
      os << message_;
      for (const ErrorFrame& frame : frames_) {
        os << "\n  " << frame.to_string();
      }
      formatted_ = os.str();
    }
    return formatted_.c_str();
  } catch (...) {
    // Formatting must never throw out of what(); fall back to the
    // original message.
    return std::runtime_error::what();
  }
}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "MLM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace mlm

#include "mlm/support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mlm {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::as_bool() const {
  MLM_CHECK_MSG(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  MLM_CHECK_MSG(kind_ == Kind::Number, "JSON value is not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  MLM_CHECK_MSG(kind_ == Kind::String, "JSON value is not a string");
  return str_;
}

void JsonValue::push_back(JsonValue v) {
  MLM_CHECK_MSG(kind_ == Kind::Array, "push_back on non-array JSON value");
  arr_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  throw Error("size() on non-container JSON value");
}

const JsonValue& JsonValue::at(std::size_t i) const {
  MLM_CHECK_MSG(kind_ == Kind::Array, "at() on non-array JSON value");
  MLM_CHECK_MSG(i < arr_.size(), "JSON array index out of range");
  return arr_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  MLM_CHECK_MSG(kind_ == Kind::Array, "items() on non-array JSON value");
  return arr_;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  MLM_CHECK_MSG(kind_ == Kind::Object, "set() on non-object JSON value");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool JsonValue::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* v = find(key);
  MLM_CHECK_MSG(v != nullptr, "missing JSON object key: " + key);
  return *v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  MLM_CHECK_MSG(kind_ == Kind::Object, "find() on non-object JSON value");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  MLM_CHECK_MSG(kind_ == Kind::Object, "members() on non-object JSON value");
  return obj_;
}

std::string JsonValue::quote(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonValue::number_repr(double v) {
  MLM_CHECK_MSG(std::isfinite(v),
                "JSON cannot represent NaN or infinite numbers");
  // Integers in the exactly-representable range print without a decimal
  // point so counters and byte totals stay readable and stable.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += number_repr(num_); break;
    case Kind::String: out += quote(str_); break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        out += quote(obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (obj.contains(key)) fail("duplicate object key: " + key);
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8.  Surrogate pairs are not
          // needed for the harness's ASCII-dominated artifacts but BMP
          // code points round-trip.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number: " + token);
    }
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path);
  MLM_CHECK_MSG(in.is_open(), "cannot open JSON file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return json_parse(os.str());
}

void json_write_file(const std::string& path, const JsonValue& value,
                     int indent) {
  std::ofstream out(path);
  MLM_CHECK_MSG(out.is_open(), "cannot open JSON output file: " + path);
  out << value.dump(indent) << '\n';
  out.flush();
  MLM_CHECK_MSG(out.good(), "failed writing JSON file: " + path);
}

}  // namespace mlm

#include "mlm/support/stats.h"

#include <algorithm>
#include <cmath>

#include "mlm/support/error.h"

namespace mlm {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

SampleSummary summarize(std::vector<double> samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return s;
}

double percentile(std::vector<double> samples, double p) {
  MLM_REQUIRE(!samples.empty(), "percentile of empty sample set");
  MLM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace mlm

#include "mlm/support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "mlm/support/error.h"

namespace mlm {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  MLM_REQUIRE(!headers_.empty(), "table needs at least one column");
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::Right);
    aligns_[0] = Align::Left;
  }
  MLM_REQUIRE(aligns_.size() == headers_.size(),
              "alignment count must match column count");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MLM_REQUIRE(cells.size() == headers_.size(),
              "row width must match column count");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << ' ';
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ');
      os << cells[c];
      if (aligns_[c] == Align::Left) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const Row& r : rows_) {
    if (r.rule_before) print_rule();
    print_cells(r.cells);
  }
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_sep = static_cast<int>(digits.size() % 3);
  if (since_sep == 0) since_sep = 3;
  for (char d : digits) {
    if (since_sep == 0) {
      out.push_back(',');
      since_sep = 3;
    }
    out.push_back(d);
    --since_sep;
  }
  return out;
}

std::string ascii_bar(double value, double max_value, int width) {
  MLM_REQUIRE(width > 0, "bar width must be positive");
  int n = 0;
  if (max_value > 0.0 && value > 0.0) {
    n = static_cast<int>(value / max_value * width + 0.5);
    n = std::clamp(n, 0, width);
  }
  return std::string(static_cast<std::size_t>(n), '#') +
         std::string(static_cast<std::size_t>(width - n), ' ');
}

}  // namespace mlm

#include "mlm/support/trace.h"

#include <fstream>
#include <sstream>

#include "mlm/support/error.h"

namespace mlm {

namespace {
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}
}  // namespace

void TraceWriter::add_event(const std::string& name,
                            const std::string& category,
                            std::uint32_t track, double start_s,
                            double duration_s) {
  MLM_REQUIRE(duration_s >= 0.0, "event duration must be non-negative");
  events_.push_back(
      Event{name, category, track, start_s * 1e6, duration_s * 1e6});
}

double TraceWriter::add_sequential(
    const std::vector<std::pair<std::string, double>>& phases,
    const std::string& category, std::uint32_t track, double start_s) {
  double t = start_s;
  for (const auto& [name, dur] : phases) {
    add_event(name, category, track, t, dur);
    t += dur;
  }
  return t;
}

void TraceWriter::set_track_name(std::uint32_t track,
                                 const std::string& name) {
  track_names_[track] = name;
}

std::string TraceWriter::track_name(std::uint32_t track) const {
  auto it = track_names_.find(track);
  return it != track_names_.end() ? it->second : std::string();
}

std::string TraceWriter::to_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << track << ",\"args\":{\"name\":\"" << escape_json(name) << "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape_json(e.name) << "\",\"cat\":\""
       << escape_json(e.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << e.track << ",\"ts\":" << e.start_us
       << ",\"dur\":" << e.duration_us << "}";
  }
  os << "]}";
  return os.str();
}

void TraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  MLM_CHECK_MSG(out.is_open(), "cannot open trace output file: " + path);
  out << to_json();
  MLM_CHECK_MSG(out.good(), "failed writing trace file: " + path);
}

}  // namespace mlm

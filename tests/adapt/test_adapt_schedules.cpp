// The adaptive controller's acceptance harness: 100-seed deterministic
// schedule sweeps over both engines with the tuning hook installed.
//
// Under every seeded schedule, for both the chunk pipeline (live
// TriplePools resize + copy-out mode switches) and the external sorter
// (mid-run re-chunking + inner copy-pool resize), two runs of the same
// seed must produce byte-identical controller decision traces,
// tick-identical schedules, and digest-identical output — including
// runs with faults injected at adapt.controller.decide and the
// existing pipeline/sorter sites with the recovery ladder armed.  The
// controller runs under its determinism contract
// (ControllerConfig::use_model_times, DESIGN.md section 8), so its
// decisions are a pure function of the observed byte sequence: the
// sweep also asserts the decision trace is identical across *seeds*,
// not just across replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mlm/adapt/controller.h"
#include "mlm/adapt/pipeline_hook.h"
#include "mlm/core/chunk_pipeline.h"
#include "mlm/core/external_sort.h"
#include "mlm/fault/fault.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/proptest.h"
#include "mlm/support/units.h"

namespace mlm::adapt {
namespace {

constexpr std::uint64_t kSeeds = 100;

// A copy-starved machine: the hill-climb must move copy threads from
// the blind starting split toward the cap, exercising the engines'
// live-resize paths on a known trajectory.
core::ModelParams copy_bound_params() {
  return core::ModelParams{90e9, 400e9, 0.05e9, 6.78e9};
}

ControllerConfig deterministic_config(std::size_t total_threads) {
  ControllerConfig cfg;
  cfg.total_threads = total_threads;
  cfg.use_model_times = true;
  cfg.model_params = copy_bound_params();
  cfg.model_passes = 1.0;
  return cfg;
}

std::unique_ptr<Controller> make_hill_climber(std::size_t total_threads,
                                              std::size_t start_copy) {
  HillClimbPolicy::Options opts;
  opts.start.copy_threads = start_copy;
  opts.start.compute_threads = total_threads - 2 * start_copy;
  return std::make_unique<Controller>(
      std::make_unique<HillClimbPolicy>(opts),
      deterministic_config(total_threads));
}

std::uint64_t digest(std::span<const std::int64_t> data) {
  return digest_of(data);
}

// ---------------------------------------------------------------------------
// Chunk pipeline sweep

struct PipelineRun {
  std::string ctl_trace;
  std::string sched_trace;
  std::uint64_t data_digest = 0;
  core::PipelineStats stats;
};

enum class PipelineFaults : std::uint8_t {
  None,         ///< undisturbed run
  StageRetries, ///< stage sites + decide site, retry rung recovers
  ChunkHalving, ///< buffer-alloc fault forces the chunk-halving rung
};

PipelineRun run_pipeline(std::uint64_t seed, PipelineFaults faults) {
  fault::FaultPlan plan;
  if (faults == PipelineFaults::StageRetries) {
    plan.arm(fault::sites::kAdaptControllerDecide,
             fault::FaultTrigger::probability(0.3, seed * 2 + 1));
    plan.arm(fault::sites::kPipelineCopyIn,
             fault::FaultTrigger::probability(0.05, seed * 3 + 7));
    plan.arm(fault::sites::kPipelineCopyOut,
             fault::FaultTrigger::probability(0.05, seed * 5 + 11));
    plan.arm(fault::sites::kPipelineCompute,
             fault::FaultTrigger::probability(0.05, seed * 7 + 13));
  } else if (faults == PipelineFaults::ChunkHalving) {
    // No decide-site fault here: a skipped round would drop the very
    // degradation signal this case asserts the controller reacts to.
    plan.arm(fault::sites::kPipelineBufferAlloc,
             fault::FaultTrigger::nth_call(0));
  }
  std::optional<fault::ScopedFaultInjector> inject;
  if (faults != PipelineFaults::None) inject.emplace(plan);

  DualSpaceConfig space_cfg;
  space_cfg.mode = McdramMode::Flat;
  space_cfg.mcdram_bytes = MiB(4);
  DualSpace space(space_cfg);

  const std::size_t n = 8 * KiB(64) / sizeof(std::int64_t);
  std::vector<std::int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);

  DeterministicScheduler sched(seed);
  auto ctl = make_hill_climber(8, 1);

  core::PipelineConfig cfg;
  cfg.chunk_bytes = KiB(64);
  cfg.pools = PoolSizes{1, 1, 6};  // copy-in, copy-out, compute
  cfg.buffering = core::Buffering::Triple;
  cfg.scheduler = &sched;
  cfg.tuning_hook = make_tuning_hook(*ctl);
  if (faults == PipelineFaults::StageRetries) {
    cfg.degrade.max_retries = 8;
  } else if (faults == PipelineFaults::ChunkHalving) {
    cfg.degrade.allow_chunk_halving = true;
  }

  PipelineRun run;
  run.stats = core::run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg,
      [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        for (auto& x : chunk) x += 1;
      });
  run.ctl_trace = ctl->format_trace();
  run.sched_trace = sched.format_trace();

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(data[i], static_cast<std::int64_t>(i) + 1)
        << "seed " << seed << " i=" << i;
  }
  run.data_digest = digest(std::span<const std::int64_t>(data));
  return run;
}

TEST(AdaptSchedules, PipelineHundredSeedSweepReplaysTickForTick) {
  std::string seed0_trace;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const PipelineRun a = run_pipeline(seed, PipelineFaults::None);
    const PipelineRun b = run_pipeline(seed, PipelineFaults::None);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.sched_trace, b.sched_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, b.data_digest) << "seed " << seed;

    // The copy-starved model drives exactly one live pool resize
    // (1 -> 3 copy threads, the Eq. 1 jump) plus the round-0 copy-out
    // mode resolution, on every schedule.
    EXPECT_EQ(a.stats.adaptation.split_changes, 1u) << "seed " << seed;
    EXPECT_EQ(a.stats.adaptation.final_copy_threads, 3u)
        << "seed " << seed << "\n" << a.ctl_trace;
    EXPECT_EQ(a.stats.adaptation.final_compute_threads, 2u);
    EXPECT_GE(a.stats.adaptation.mode_changes, 1u);
    EXPECT_EQ(a.stats.adaptation.decisions, a.stats.steps);

    // Decisions are a pure function of the observation sequence, which
    // the schedule does not alter: every seed sees one trace.
    if (seed == 0) {
      seed0_trace = a.ctl_trace;
      EXPECT_FALSE(seed0_trace.empty());
    } else {
      EXPECT_EQ(a.ctl_trace, seed0_trace) << "seed " << seed;
    }
  }
}

TEST(AdaptSchedules, PipelineFaultSweepReplaysWithInjectedFaults) {
  std::size_t skipped_rounds = 0;
  std::size_t retries = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const PipelineRun a = run_pipeline(seed, PipelineFaults::StageRetries);
    const PipelineRun b = run_pipeline(seed, PipelineFaults::StageRetries);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.sched_trace, b.sched_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, b.data_digest) << "seed " << seed;
    if (a.ctl_trace.find("fault_skip") != std::string::npos) {
      ++skipped_rounds;
    }
    retries += a.stats.retries;
  }
  // The sweep must actually have exercised both fault classes.
  EXPECT_GT(skipped_rounds, kSeeds / 4);
  EXPECT_GT(retries, 0u);
}

TEST(AdaptSchedules, PipelineChunkHalvingRungCoolsTheControllerDown) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const PipelineRun a = run_pipeline(seed, PipelineFaults::ChunkHalving);
    const PipelineRun b = run_pipeline(seed, PipelineFaults::ChunkHalving);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, b.data_digest) << "seed " << seed;
    EXPECT_GE(a.stats.chunk_halvings, 1u) << "seed " << seed;
    // The ladder's move shows up as a degraded round followed by the
    // cooldown freeze — retune, don't thrash.
    EXPECT_NE(a.ctl_trace.find("degraded"), std::string::npos)
        << a.ctl_trace;
    EXPECT_NE(a.ctl_trace.find("cooldown"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// External sorter sweep

struct SortRun {
  std::string ctl_trace;
  std::string sched_trace;
  std::uint64_t data_digest = 0;
  core::ExternalSortStats stats;
};

constexpr std::size_t kSortElements = 4096;
constexpr std::uint64_t kInputSeed = 42;

HierarchyConfig sort_hierarchy() {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
               TierConfig{"ddr", MemKind::DDR, MiB(2)},
               TierConfig{"mcdram", MemKind::MCDRAM, KiB(256)}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

core::ExternalSortConfig sort_config() {
  core::ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 512;  // 8 outer chunks
  cfg.inner.variant = core::MlmVariant::Flat;
  cfg.inner.megachunk_elements = 128;
  cfg.inner.overlap_copy_in = true;
  cfg.inner.copy_threads = 2;
  return cfg;
}

std::uint64_t sorted_reference_digest() {
  std::vector<std::int64_t> data =
      sort::make_input(kSortElements, sort::InputOrder::Random, kInputSeed);
  std::sort(data.begin(), data.end());
  return digest(std::span<const std::int64_t>(data));
}

enum class SortFaults : std::uint8_t {
  None,         ///< undisturbed run
  StageRetries, ///< staging sites + decide site, retry rung recovers
  TierFallback, ///< one inner-sort fault forces the DDR-only rung
};

SortRun run_sorter(std::uint64_t seed, SortFaults faults,
                   ControllerPolicy* policy_override = nullptr) {
  fault::FaultPlan plan;
  if (faults == SortFaults::StageRetries) {
    plan.arm(fault::sites::kAdaptControllerDecide,
             fault::FaultTrigger::probability(0.3, seed * 2 + 1));
    plan.arm(fault::sites::kExternalSortStageIn,
             fault::FaultTrigger::probability(0.05, seed * 3 + 7));
    plan.arm(fault::sites::kExternalSortStageOut,
             fault::FaultTrigger::probability(0.05, seed * 5 + 11));
  } else if (faults == SortFaults::TierFallback) {
    plan.arm(fault::sites::kExternalSortInner,
             fault::FaultTrigger::nth_call(0));
  }
  std::optional<fault::ScopedFaultInjector> inject;
  if (faults != SortFaults::None) inject.emplace(plan);

  MemoryHierarchy hier(sort_hierarchy());
  DeterministicScheduler sched(seed);
  DeterministicExecutor pool(sched, 8, "pool");

  SpaceBuffer<std::int64_t> buffer(hier.tier(0), kSortElements);
  const auto init =
      sort::make_input(kSortElements, sort::InputOrder::Random, kInputSeed);
  std::copy(init.begin(), init.end(), buffer.data());

  std::unique_ptr<Controller> ctl;
  if (policy_override == nullptr) {
    ctl = make_hill_climber(8, 2);
  }

  core::ExternalSortConfig cfg = sort_config();
  if (faults == SortFaults::StageRetries) {
    cfg.degrade.max_retries = 8;
  } else if (faults == SortFaults::TierFallback) {
    cfg.degrade.allow_tier_fallback = true;
  }

  SortRun run;
  std::string override_trace;
  {
    Controller* active = ctl.get();
    std::optional<Controller> local;
    if (policy_override != nullptr) {
      ControllerConfig ccfg = deterministic_config(8);
      ccfg.min_chunk_bytes = 1024;
      // The override policy object is owned by the caller per case; we
      // wrap a fresh non-owning unique_ptr-free controller here.
      struct Forward : ControllerPolicy {
        ControllerPolicy* inner;
        explicit Forward(ControllerPolicy* p) : inner(p) {}
        const char* name() const override { return inner->name(); }
        Tuning initial() const override { return inner->initial(); }
        Tuning propose(const PolicyInput& input,
                       std::string& reason) override {
          return inner->propose(input, reason);
        }
      };
      local.emplace(std::make_unique<Forward>(policy_override), ccfg);
      active = &*local;
    }
    cfg.tuning_hook = make_tuning_hook(*active);

    core::ExternalMlmSorter<std::int64_t> sorter(hier, pool, cfg);
    run.stats =
        sorter.sort(std::span<std::int64_t>(buffer.data(), kSortElements));
    run.ctl_trace = active->format_trace();
  }
  run.sched_trace = sched.format_trace();
  run.data_digest =
      digest(std::span<const std::int64_t>(buffer.data(), kSortElements));
  EXPECT_TRUE(std::is_sorted(buffer.data(), buffer.data() + kSortElements))
      << "seed " << seed;
  return run;
}

TEST(AdaptSchedules, SorterHundredSeedSweepReplaysTickForTick) {
  const std::uint64_t expected = sorted_reference_digest();
  std::string seed0_trace;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const SortRun a = run_sorter(seed, SortFaults::None);
    const SortRun b = run_sorter(seed, SortFaults::None);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.sched_trace, b.sched_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, expected) << "seed " << seed;
    ASSERT_EQ(b.data_digest, expected) << "seed " << seed;

    // One inner copy-pool resize (2 -> 3 copy threads), applied at an
    // outer-chunk boundary, on every schedule.
    EXPECT_EQ(a.stats.adaptation.split_changes, 1u)
        << "seed " << seed << "\n" << a.ctl_trace;
    EXPECT_EQ(a.stats.adaptation.final_copy_threads, 3u);
    EXPECT_EQ(a.stats.adaptation.decisions, a.stats.outer_chunks);
    EXPECT_EQ(a.stats.outer_chunks, 8u);

    if (seed == 0) {
      seed0_trace = a.ctl_trace;
      EXPECT_FALSE(seed0_trace.empty());
    } else {
      EXPECT_EQ(a.ctl_trace, seed0_trace) << "seed " << seed;
    }
  }
}

TEST(AdaptSchedules, SorterFaultSweepReplaysWithInjectedFaults) {
  const std::uint64_t expected = sorted_reference_digest();
  std::size_t skipped_rounds = 0;
  std::size_t retries = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const SortRun a = run_sorter(seed, SortFaults::StageRetries);
    const SortRun b = run_sorter(seed, SortFaults::StageRetries);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.sched_trace, b.sched_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, expected) << "seed " << seed;
    ASSERT_EQ(b.data_digest, expected) << "seed " << seed;
    if (a.ctl_trace.find("fault_skip") != std::string::npos) {
      ++skipped_rounds;
    }
    retries += a.stats.retries;
  }
  EXPECT_GT(skipped_rounds, kSeeds / 4);
  EXPECT_GT(retries, 0u);
}

TEST(AdaptSchedules, SorterTierFallbackRungStaysDigestIdentical) {
  const std::uint64_t expected = sorted_reference_digest();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const SortRun a = run_sorter(seed, SortFaults::TierFallback);
    const SortRun b = run_sorter(seed, SortFaults::TierFallback);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, expected) << "seed " << seed;
    EXPECT_TRUE(a.stats.inner_tier_fallback) << "seed " << seed;
    // The fallback is a recovery rung: the controller sees it and
    // freezes instead of fighting it, and — with the inner sorter now
    // pinned DDR-only — never resizes the dead copy pool.
    EXPECT_NE(a.ctl_trace.find("degraded"), std::string::npos);
    EXPECT_EQ(a.stats.adaptation.split_changes, 0u) << a.ctl_trace;
  }
}

// A policy that halves the outer chunk once: proves mid-sort
// re-chunking is output-transparent (the final merge consumes sorted
// runs of any sizes).
class ShrinkOncePolicy : public ControllerPolicy {
 public:
  const char* name() const override { return "shrink-once"; }
  Tuning initial() const override { return Tuning{2, 4, 0, CopyMode::Auto}; }
  Tuning propose(const PolicyInput& input, std::string& reason) override {
    Tuning t = input.current;
    if (!done_) {
      done_ = true;
      t.chunk_bytes = input.chunk_bytes / 2;
      reason = "shrink";
    } else {
      reason = "hold";
    }
    return t;
  }

 private:
  bool done_ = false;
};

TEST(AdaptSchedules, SorterReChunksRemainingInputDigestIdentical) {
  const std::uint64_t expected = sorted_reference_digest();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ShrinkOncePolicy pa;
    const SortRun a = run_sorter(seed, SortFaults::None, &pa);
    ShrinkOncePolicy pb;
    const SortRun b = run_sorter(seed, SortFaults::None, &pb);
    ASSERT_EQ(a.ctl_trace, b.ctl_trace) << "seed " << seed;
    ASSERT_EQ(a.sched_trace, b.sched_trace) << "seed " << seed;
    ASSERT_EQ(a.data_digest, expected) << "seed " << seed;

    // Chunk 0 ran at 512 elements; the remaining 3584 re-chunked at
    // 256 elements -> 1 + 14 outer chunks, one applied chunk change.
    EXPECT_EQ(a.stats.adaptation.chunk_changes, 1u)
        << "seed " << seed << "\n" << a.ctl_trace;
    EXPECT_EQ(a.stats.outer_chunks, 15u);
    EXPECT_EQ(a.stats.adaptation.decisions, 15u);
  }
}

}  // namespace
}  // namespace mlm::adapt

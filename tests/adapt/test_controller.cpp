// Unit tests for the online adaptive buffering controller
// (mlm/adapt/controller.h): the static (Eqs. 1-5) null policy against
// the Table 3 model column, the hill-climb's headline guarantee —
// within 5% of the best static copy-thread configuration on every
// results_table3 workload with no model knowledge and no offline
// tuning run — and the controller-level guard rails: the budget clamp,
// the post-degradation cooldown, the fault-skip round, and trace
// replay.
#include "mlm/adapt/controller.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "mlm/adapt/model_driver.h"
#include "mlm/fault/fault.h"
#include "mlm/support/units.h"

namespace mlm::adapt {
namespace {

// Table 2 machine envelope (the values ModelParams::from_machine
// extracts from knl7250(), asserted in test_buffer_model.cpp).
core::ModelParams table2() {
  return core::ModelParams{90e9, 400e9, 4.8e9, 6.78e9};
}

constexpr double kTable3Bytes = 14.9e9;
constexpr std::size_t kTotalThreads = 256;
constexpr std::array<double, 7> kRepeats = {1, 2, 4, 8, 16, 32, 64};
// Table 3 "Model" column: full-sweep optimal copy threads per repeats.
constexpr std::array<std::size_t, 7> kTable3Optimal = {10, 10, 9, 5, 3, 2, 1};
// The paper's empirical evaluation grid (powers of two).
const std::vector<std::size_t> kCandidates = {1, 2, 4, 8, 16, 32};

ControllerConfig model_config(std::size_t total_threads) {
  ControllerConfig cfg;
  cfg.total_threads = total_threads;
  return cfg;
}

std::unique_ptr<Controller> hill_climber(std::size_t total_threads,
                                         std::size_t start_copy) {
  HillClimbPolicy::Options opts;
  opts.start.copy_threads = start_copy;
  opts.start.compute_threads = total_threads - 2 * start_copy;
  return std::make_unique<Controller>(
      std::make_unique<HillClimbPolicy>(opts), model_config(total_threads));
}

/// Best static run time over the paper's candidate grid.
double static_candidate_best(double repeats) {
  double best = 0.0;
  for (const std::size_t p : kCandidates) {
    const double t = static_model_seconds(
        table2(), {kTable3Bytes, repeats},
        {p, kTotalThreads - 2 * p});
    if (best == 0.0 || t < best) best = t;
  }
  return best;
}

TEST(StaticModelPolicy, MatchesTable3ModelColumn) {
  for (std::size_t i = 0; i < kRepeats.size(); ++i) {
    StaticModelPolicy policy(table2(), {kTable3Bytes, kRepeats[i]},
                             kTotalThreads, 0);
    EXPECT_EQ(policy.initial().copy_threads, kTable3Optimal[i])
        << "repeats=" << kRepeats[i];
    EXPECT_EQ(policy.initial().compute_threads,
              kTotalThreads - 2 * kTable3Optimal[i]);
  }
}

TEST(StaticModelPolicy, ControllerHoldsTheModelOptimum) {
  for (std::size_t i = 0; i < kRepeats.size(); ++i) {
    Controller ctl(std::make_unique<StaticModelPolicy>(
                       table2(), core::ModelWorkload{kTable3Bytes,
                                                     kRepeats[i]},
                       kTotalThreads, std::size_t{0}),
                   model_config(kTotalThreads));
    ModelRunConfig run;
    run.params = table2();
    run.total_bytes = kTable3Bytes;
    run.passes = kRepeats[i];
    const ModelRunResult res = drive_model_run(ctl, run);
    EXPECT_EQ(res.final_tuning.copy_threads, kTable3Optimal[i]);
    // The null controller never moves the split; the only allowed
    // change is the round-0 copy-out-mode resolution (Auto -> a
    // concrete kernel).
    EXPECT_LE(ctl.changes(), 1u) << "repeats=" << kRepeats[i];
    // Seam cost check: holding the model optimum through the hook
    // reproduces the closed-form Eq. 1 time (chunking is linear).
    const double closed_form = static_model_seconds(
        table2(), {kTable3Bytes, kRepeats[i]},
        {kTable3Optimal[i], kTotalThreads - 2 * kTable3Optimal[i]});
    EXPECT_NEAR(res.seconds, closed_form, closed_form * 1e-9);
  }
}

// The acceptance criterion: starting blind at copy = total/8 with no
// model knowledge, the hill-climb's whole-run time (probe overhead
// included) lands within 5% of the best static candidate configuration
// on every results_table3 workload.
TEST(HillClimbPolicy, WithinFivePercentOfStaticBestOnTable3) {
  for (const double repeats : kRepeats) {
    auto ctl = hill_climber(kTotalThreads, kTotalThreads / 8);
    ModelRunConfig run;
    run.params = table2();
    run.total_bytes = kTable3Bytes;
    run.passes = repeats;
    const ModelRunResult res = drive_model_run(*ctl, run);
    const double best = static_candidate_best(repeats);
    EXPECT_LE(res.seconds, 1.05 * best)
        << "repeats=" << repeats << " adaptive=" << res.seconds
        << " static best=" << best << "\n"
        << ctl->format_trace();
  }
}

TEST(HillClimbPolicy, ConvergesToAQuietTailOnTable3) {
  for (const double repeats : kRepeats) {
    auto ctl = hill_climber(kTotalThreads, kTotalThreads / 8);
    ModelRunConfig run;
    run.params = table2();
    run.total_bytes = kTable3Bytes;
    run.passes = repeats;
    const ModelRunResult res = drive_model_run(*ctl, run);
    ASSERT_GT(res.rounds, 20u);
    const auto& trace = ctl->trace();
    for (std::size_t r = res.rounds - 10; r < res.rounds; ++r) {
      EXPECT_FALSE(trace[r].changed)
          << "repeats=" << repeats << " round " << r << ": "
          << trace[r].reason;
    }
  }
}

TEST(Controller, DegradationAdoptsChunkAndFreezes) {
  ControllerConfig cfg = model_config(8);
  cfg.cooldown_rounds = 3;
  cfg.min_chunk_bytes = 1024;
  Controller controller(std::make_unique<HillClimbPolicy>(
                            HillClimbPolicy::Options{{2, 4, 0,
                                                      CopyMode::Auto}}),
                        cfg);

  StageSample degraded;
  degraded.chunk_bytes = 8192;
  degraded.copy_in_seconds = 1.0;
  degraded.compute_seconds = 1.0;
  degraded.copy_out_seconds = 1.0;
  degraded.new_degradations = 1;

  const Decision d0 = controller.observe(degraded);
  EXPECT_TRUE(d0.cooldown);
  EXPECT_EQ(d0.reason, "degraded");
  // The ladder's (smaller) chunk is adopted, not fought.
  EXPECT_EQ(d0.tuning.chunk_bytes, 8192u);

  StageSample calm = degraded;
  calm.new_degradations = 0;
  for (int i = 0; i < 3; ++i) {
    const Decision d = controller.observe(calm);
    EXPECT_TRUE(d.cooldown) << "round " << i;
    EXPECT_EQ(d.reason, "cooldown");
    EXPECT_FALSE(d.changed);
    EXPECT_EQ(d.tuning, d0.tuning);
  }
  // Freeze over: the policy is consulted again.
  const Decision resumed = controller.observe(calm);
  EXPECT_FALSE(resumed.cooldown);
  EXPECT_NE(resumed.reason, "cooldown");
}

TEST(Controller, ChunkNeverExceedsAdmittedBudget) {
  ControllerConfig cfg = model_config(8);
  cfg.near_budget_bytes = 3 * 8192;  // cap = 8192 with 3 live buffers
  cfg.buffers_per_chunk = 3;
  cfg.min_chunk_bytes = 1024;
  // A policy that asks for far more than admission granted.
  Controller controller(
      std::make_unique<StaticModelPolicy>(
          table2(), core::ModelWorkload{kTable3Bytes, 1.0}, std::size_t{8},
          MiB(64)),
      cfg);
  EXPECT_LE(controller.current().chunk_bytes * 3, cfg.near_budget_bytes);

  // Balanced samples make the hill-climb grow chunks multiplicatively;
  // the clamp must stop every proposal at the budget.
  Controller climber(std::make_unique<HillClimbPolicy>(
                         HillClimbPolicy::Options{{2, 4, 2048,
                                                   CopyMode::Auto}}),
                     cfg);
  StageSample s;
  s.copy_in_seconds = 1.0;
  s.compute_seconds = 1.0;
  s.copy_out_seconds = 1.0;
  for (int round = 0; round < 12; ++round) {
    s.chunk_bytes = climber.current().chunk_bytes;
    const Decision d = climber.observe(s);
    ASSERT_NE(d.tuning.chunk_bytes, 0u);
    EXPECT_LE(d.tuning.chunk_bytes * 3, cfg.near_budget_bytes)
        << "round " << round;
  }
  EXPECT_EQ(climber.current().chunk_bytes, 8192u);
}

TEST(Controller, FaultSkipKeepsTuningAndIsTraced) {
  fault::FaultPlan plan;
  plan.arm(fault::sites::kAdaptControllerDecide,
           fault::FaultTrigger::nth_call(1));
  fault::ScopedFaultInjector inject(plan);

  auto ctl = hill_climber(8, 2);
  StageSample s;
  s.chunk_bytes = 4096;
  s.copy_in_seconds = 1.0;
  s.compute_seconds = 1.0;
  s.copy_out_seconds = 1.0;

  const Decision d0 = ctl->observe(s);
  const Decision d1 = ctl->observe(s);
  EXPECT_FALSE(d0.skipped);
  EXPECT_TRUE(d1.skipped);
  EXPECT_EQ(d1.reason, "fault_skip");
  // A lost feedback sample keeps the previous tuning...
  EXPECT_EQ(ctl->current(), d0.tuning);
  // ...and is still traced, so faulted runs replay round-for-round.
  EXPECT_EQ(ctl->trace().size(), 2u);
  EXPECT_EQ(plan.stats(fault::sites::kAdaptControllerDecide).fires, 1u);
}

TEST(Controller, CopyOutModeFollowsChunkSize) {
  auto ctl = hill_climber(8, 2);
  StageSample small;
  small.chunk_bytes = KiB(64);
  small.copy_in_seconds = small.compute_seconds =
      small.copy_out_seconds = 1.0;
  EXPECT_EQ(ctl->observe(small).tuning.copy_out_mode, CopyMode::Cached);

  auto ctl2 = hill_climber(8, 2);
  StageSample large = small;
  large.chunk_bytes = MiB(2);
  EXPECT_EQ(ctl2->observe(large).tuning.copy_out_mode,
            CopyMode::Streaming);
}

TEST(Controller, IdenticalInputsReplayIdenticalTraces) {
  auto drive = [](Controller& ctl) {
    ModelRunConfig run;
    run.params = table2();
    run.total_bytes = kTable3Bytes;
    run.passes = 16;
    drive_model_run(ctl, run);
    return ctl.format_trace();
  };
  auto a = hill_climber(kTotalThreads, kTotalThreads / 8);
  auto b = hill_climber(kTotalThreads, kTotalThreads / 8);
  const std::string ta = drive(*a);
  const std::string tb = drive(*b);
  EXPECT_FALSE(ta.empty());
  EXPECT_EQ(ta, tb);
}

}  // namespace
}  // namespace mlm::adapt

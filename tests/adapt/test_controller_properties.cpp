// Property harness for the adaptive controller: seeded random machine
// envelopes, workloads, thread budgets, and starting splits
// (mlm/support/proptest.h), each checked against the controller's
// contract rather than hand-picked examples.
//
// Three generated families:
//  - Split convergence (fixed chunk): every decision satisfies the
//    clamp invariants, the number of retuning moves is bounded (every
//    accepted probe improves the per-byte score by >= min_gain, so the
//    accepted tunings are distinct), the run ends in a quiet tail, and
//    the converged split is never worse than the starting split.
//  - Budgeted chunk growth: the chunk never exceeds the admitted
//    near-tier budget, grows monotonically (full-chunk rounds), and the
//    copy-out mode tracks the streaming cutoff.
//  - Degradation cooldown: after a reported recovery-ladder rung the
//    controller freezes for exactly cooldown_rounds rounds and never
//    grows the chunk during the freeze.
//
// Every case also replays: the same inputs drive a fresh controller to
// a byte-identical decision trace (the determinism contract of
// DESIGN.md section 8).
#include "mlm/adapt/controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>

#include "mlm/adapt/model_driver.h"
#include "mlm/support/proptest.h"
#include "mlm/support/units.h"

namespace mlm::adapt {
namespace {

struct Case {
  core::ModelParams params;
  double passes = 1.0;
  std::size_t total_threads = 8;
  std::size_t start_copy = 1;
  std::size_t chunk_bytes = 0;
  std::size_t rounds = 0;
  std::size_t near_budget_bytes = 0;
};

Case gen_case(Gen& g) {
  Case c;
  c.params.ddr_max = 30e9 + double(g.below(120)) * 1e9;
  c.params.mcdram_max = c.params.ddr_max * (1.5 + double(g.below(40)) / 10);
  c.params.s_copy = 0.5e9 + double(g.below(75)) * 0.1e9;
  c.params.s_comp = 0.5e9 + double(g.below(75)) * 0.1e9;
  c.passes = double(g.int_in(1, 32));
  c.total_threads = 2 * g.size_in(3, 32);  // 6..64, even
  c.start_copy = g.size_in(1, (c.total_threads - 1) / 2);
  c.chunk_bytes = KiB(64) * g.size_in(1, 64);
  c.rounds = g.size_in(100, 200);
  return c;
}

std::unique_ptr<Controller> make_controller(const Case& c) {
  HillClimbPolicy::Options opts;
  opts.start.copy_threads = c.start_copy;
  opts.start.compute_threads = c.total_threads - 2 * c.start_copy;
  ControllerConfig cfg;
  cfg.total_threads = c.total_threads;
  cfg.near_budget_bytes = c.near_budget_bytes;
  return std::make_unique<Controller>(
      std::make_unique<HillClimbPolicy>(opts), cfg);
}

ModelRunResult drive(Controller& ctl, const Case& c) {
  ModelRunConfig run;
  run.params = c.params;
  run.total_bytes = double(c.chunk_bytes) * double(c.rounds);
  run.passes = c.passes;
  run.chunk_bytes = c.chunk_bytes;
  return drive_model_run(ctl, run);
}

/// Per-byte cost of a split under the case's model — the hill-climb's
/// objective, chunk-size independent (the model is linear in bytes).
double split_score(const Case& c, const Tuning& t) {
  return core::predict(c.params, {double(c.chunk_bytes), c.passes},
                       {t.copy_threads, t.compute_threads})
             .t_total /
         double(c.chunk_bytes);
}

void check_clamp_invariants(const Case& c, const Controller& ctl) {
  const std::size_t max_copy =
      std::max<std::size_t>(1, (c.total_threads - 1) / 2);
  for (const Decision& d : ctl.trace()) {
    ASSERT_GE(d.tuning.copy_threads, 1u) << "seed case round " << d.round;
    ASSERT_LE(d.tuning.copy_threads, max_copy) << "round " << d.round;
    ASSERT_EQ(d.tuning.compute_threads,
              c.total_threads - 2 * d.tuning.copy_threads)
        << "round " << d.round;
    if (c.near_budget_bytes > 0 && d.tuning.chunk_bytes != 0) {
      ASSERT_LE(d.tuning.chunk_bytes * 3, c.near_budget_bytes)
          << "round " << d.round;
    }
  }
}

TEST(ControllerProperties, SplitClimbConvergesBoundedAndNeverRegresses) {
  for (std::uint64_t seed = 0; seed < 48; ++seed) {
    Gen g(seed);
    const Case c = gen_case(g);
    auto ctl = make_controller(c);
    const Tuning start = ctl->current();
    const ModelRunResult res = drive(*ctl, c);
    ASSERT_EQ(res.rounds, c.rounds) << "seed " << seed;

    check_clamp_invariants(c, *ctl);

    // Bounded oscillation: accepted probes carry strictly-decreasing
    // scores over a finite tuning set, failures only downshift the
    // gear, and the copy-out mode resolves once.
    const std::size_t max_copy = (c.total_threads - 1) / 2;
    EXPECT_LE(ctl->changes(), max_copy + 8) << "seed " << seed;

    // Convergence: the last ten rounds are quiet.
    const auto& trace = ctl->trace();
    for (std::size_t r = c.rounds - 10; r < c.rounds; ++r) {
      EXPECT_FALSE(trace[r].changed)
          << "seed " << seed << " round " << r << ": " << trace[r].reason;
    }

    // Monotone improvement: the converged split is never worse than
    // where the climb started (reverts restore, accepts improve).
    EXPECT_LE(split_score(c, res.final_tuning),
              split_score(c, start) * (1.0 + 1e-9))
        << "seed " << seed << "\n" << ctl->format_trace();

    // Determinism: a fresh controller on the same inputs replays the
    // trace byte for byte.
    auto replay = make_controller(c);
    const ModelRunResult res2 = drive(*replay, c);
    EXPECT_EQ(ctl->format_trace(), replay->format_trace())
        << "seed " << seed;
    EXPECT_EQ(res.seconds, res2.seconds) << "seed " << seed;
  }
}

TEST(ControllerProperties, BudgetedChunkGrowthStaysAdmitted) {
  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    Gen g(seed);
    Case c = gen_case(g);
    // Cap at chunk * 2^k for small k so growth completes quickly.
    c.near_budget_bytes =
        3 * c.chunk_bytes * (std::size_t{1} << g.size_in(0, 3));
    auto ctl = make_controller(c);
    const ModelRunResult res = drive(*ctl, c);
    ASSERT_GT(res.rounds, 10u) << "seed " << seed;

    check_clamp_invariants(c, *ctl);

    const auto& trace = ctl->trace();
    std::size_t prev_chunk = 0;
    for (std::size_t r = 0; r + 1 < trace.size(); ++r) {
      // Monotone non-decreasing on full-chunk rounds (the final round
      // may observe a partial tail chunk and is exempt).
      if (trace[r].tuning.chunk_bytes != 0) {
        EXPECT_GE(trace[r].tuning.chunk_bytes, prev_chunk)
            << "seed " << seed << " round " << r;
        prev_chunk = trace[r].tuning.chunk_bytes;
      }
      // The copy-out kernel tracks the effective chunk against the
      // streaming cutoff.
      if (!trace[r].skipped && trace[r].tuning.chunk_bytes != 0) {
        const CopyMode want =
            trace[r].tuning.chunk_bytes >= kStreamCopyThresholdBytes
                ? CopyMode::Streaming
                : CopyMode::Cached;
        EXPECT_EQ(trace[r].tuning.copy_out_mode, want)
            << "seed " << seed << " round " << r;
      }
    }
    EXPECT_LE(res.final_tuning.chunk_bytes * 3, c.near_budget_bytes);

    auto replay = make_controller(c);
    drive(*replay, c);
    EXPECT_EQ(ctl->format_trace(), replay->format_trace())
        << "seed " << seed;
  }
}

TEST(ControllerProperties, CooldownFreezesExactlyCooldownRounds) {
  for (std::uint64_t seed = 200; seed < 232; ++seed) {
    Gen g(seed);
    const Case c = gen_case(g);
    const std::size_t cooldown = g.size_in(1, 6);
    const std::size_t rounds = 40;
    // Two seeded degradation rounds (may overlap a running cooldown,
    // which must re-arm the freeze).
    const std::size_t degr_a = g.size_in(1, 15);
    const std::size_t degr_b = g.size_in(16, 30);

    HillClimbPolicy::Options opts;
    opts.start.copy_threads = c.start_copy;
    opts.start.compute_threads = c.total_threads - 2 * c.start_copy;
    ControllerConfig cfg;
    cfg.total_threads = c.total_threads;
    cfg.cooldown_rounds = cooldown;
    cfg.min_chunk_bytes = 1024;
    Controller ctl(std::make_unique<HillClimbPolicy>(opts), cfg);

    std::size_t chunk = c.chunk_bytes;
    std::size_t expected_cooldown = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const Tuning& cur = ctl.current();
      const core::ModelPrediction pred =
          core::predict(c.params, {double(chunk), c.passes},
                        {cur.copy_threads, cur.compute_threads});
      StageSample s;
      s.chunk_bytes = chunk;
      s.copy_in_seconds = pred.t_copy;
      s.compute_seconds = pred.t_comp;
      s.copy_out_seconds = pred.t_copy;
      const bool degraded_round = r == degr_a || r == degr_b;
      if (degraded_round) {
        chunk = std::max<std::size_t>(chunk / 2, 1024);
        s.chunk_bytes = chunk;  // the ladder already halved the chunk
        s.new_degradations = 1;
      }
      const std::size_t chunk_before = ctl.current().chunk_bytes;
      const Decision d = ctl.observe(s);
      if (degraded_round) {
        EXPECT_TRUE(d.cooldown) << "seed " << seed << " round " << r;
        EXPECT_EQ(d.reason, "degraded");
        expected_cooldown = cooldown;
      } else if (expected_cooldown > 0) {
        EXPECT_TRUE(d.cooldown) << "seed " << seed << " round " << r;
        EXPECT_EQ(d.reason, "cooldown");
        EXPECT_FALSE(d.changed);
        --expected_cooldown;
      } else {
        EXPECT_FALSE(d.cooldown) << "seed " << seed << " round " << r;
      }
      // The freeze never grows the chunk the ladder shrank.
      if ((degraded_round || d.cooldown) && chunk_before != 0) {
        EXPECT_LE(d.tuning.chunk_bytes, chunk_before)
            << "seed " << seed << " round " << r;
      }
      if (d.tuning.chunk_bytes != 0) chunk = d.tuning.chunk_bytes;
    }
  }
}

}  // namespace
}  // namespace mlm::adapt

#include "mlm/bench/compare.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mlm::bench {
namespace {

CaseResult make_case(const std::string& suite, const std::string& name,
                     std::vector<Metric> metrics) {
  CaseResult c;
  c.suite = suite;
  c.name = suite + "/" + name;
  c.metrics = std::move(metrics);
  return c;
}

Metric det(const std::string& name, double value) {
  return Metric{name, "s", MetricKind::Deterministic, {value}};
}

Metric wall(const std::string& name, std::vector<double> samples) {
  return Metric{name, "s", MetricKind::WallClock, std::move(samples)};
}

Metric counter(const std::string& name, double value) {
  return Metric{name, "", MetricKind::Counter, {value}};
}

RunReport baseline_report() {
  RunReport r;
  r.tool = "bench_all";
  r.cases.push_back(
      make_case("s", "det_case", {det("sim_seconds", 7.25)}));
  r.cases.push_back(
      make_case("s", "wall_case", {wall("seconds", {1.0, 1.0, 1.0})}));
  return r;
}

TEST(BenchCompare, IdenticalReportsPass) {
  const RunReport base = baseline_report();
  const CompareResult result = compare_reports(base, base, {});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.cases_checked, 2u);
  EXPECT_EQ(result.metrics_checked, 2u);
  EXPECT_TRUE(result.failures().empty());
}

TEST(BenchCompare, DeterministicMetricsAreComparedExactly) {
  const RunReport base = baseline_report();
  RunReport current = base;
  // A deviation far below any wall threshold still fails: simulator
  // outputs are machine-independent and must match bit-for-bit.
  current.cases[0].metrics[0].samples[0] = 7.25 * (1.0 + 1e-12);
  const CompareResult result = compare_reports(current, base, {});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.failures().size(), 1u);
  EXPECT_EQ(result.failures()[0].kind,
            FindingKind::DeterministicMismatch);
  EXPECT_EQ(result.failures()[0].case_name, "s/det_case");
}

TEST(BenchCompare, WallClockUsesRelativeThreshold) {
  const RunReport base = baseline_report();

  RunReport slower = base;
  slower.cases[1].metrics[0].samples = {1.05, 1.05, 1.05};  // +5%
  EXPECT_TRUE(compare_reports(slower, base, {}).ok);  // default 10%

  slower.cases[1].metrics[0].samples = {1.2, 1.2, 1.2};  // +20%
  const CompareResult result = compare_reports(slower, base, {});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.failures().size(), 1u);
  EXPECT_EQ(result.failures()[0].kind, FindingKind::WallRegression);

  CompareOptions loose;
  loose.wall_threshold = 0.25;
  EXPECT_TRUE(compare_reports(slower, base, loose).ok);
}

TEST(BenchCompare, WallImprovementIsInformationalOnly) {
  const RunReport base = baseline_report();
  RunReport faster = base;
  faster.cases[1].metrics[0].samples = {0.5, 0.5, 0.5};
  const CompareResult result = compare_reports(faster, base, {});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::WallImprovement);
}

TEST(BenchCompare, CounterMetricsAreNeverCompared) {
  // A counter in the baseline with a wildly different (or absent)
  // current value must not gate: hardware counts are machine-dependent
  // by definition.
  RunReport base = baseline_report();
  base.cases[0].metrics.push_back(counter("llc_misses", 1e9));
  RunReport current = base;
  current.cases[0].metrics[1].samples = {5.0};
  CompareOptions options;
  options.require_all = true;
  CompareResult result = compare_reports(current, base, options);
  EXPECT_TRUE(result.ok);

  // Counter missing entirely from the current run: still fine (a run
  // without --perf-counters records none).
  current.cases[0].metrics.pop_back();
  result = compare_reports(current, base, options);
  EXPECT_TRUE(result.ok) << "absent counter metric must not fail the gate";
}

TEST(BenchCompare, IgnoreWallSkipsWallMetrics) {
  const RunReport base = baseline_report();
  RunReport current = base;
  current.cases[1].metrics[0].samples = {99.0};  // massive "regression"
  CompareOptions options;
  options.ignore_wall = true;
  const CompareResult result = compare_reports(current, base, options);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.metrics_checked, 1u);  // only the deterministic one
}

TEST(BenchCompare, MissingCaseFailsUnlessAllowed) {
  const RunReport base = baseline_report();
  RunReport current = base;
  current.cases.erase(current.cases.begin());
  const CompareResult strict = compare_reports(current, base, {});
  EXPECT_FALSE(strict.ok);
  ASSERT_EQ(strict.failures().size(), 1u);
  EXPECT_EQ(strict.failures()[0].kind, FindingKind::MissingCase);

  CompareOptions options;
  options.allow_missing = true;
  EXPECT_TRUE(compare_reports(current, base, options).ok);
}

TEST(BenchCompare, MissingMetricFails) {
  const RunReport base = baseline_report();
  RunReport current = base;
  current.cases[0].metrics.clear();
  current.cases[0].metrics.push_back(det("renamed", 7.25));
  const CompareResult result = compare_reports(current, base, {});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.failures().size(), 1u);
  EXPECT_EQ(result.failures()[0].kind, FindingKind::MissingMetric);
}

TEST(BenchCompare, NewCasesAreInformationalOnly) {
  const RunReport base = baseline_report();
  RunReport current = base;
  current.cases.push_back(make_case("s", "brand_new", {det("x", 1.0)}));
  const CompareResult result = compare_reports(current, base, {});
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::NewCase);
}

TEST(BenchCompare, RequireAllFailsUnbaselinedCases) {
  const RunReport base = baseline_report();
  RunReport current = base;
  current.cases.push_back(make_case("s", "brand_new", {det("x", 1.0)}));
  CompareOptions options;
  options.require_all = true;
  const CompareResult result = compare_reports(current, base, options);
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.failures().size(), 1u);
  EXPECT_EQ(result.failures()[0].kind, FindingKind::UnbaselinedCase);
  EXPECT_EQ(result.failures()[0].case_name, "s/brand_new");
}

TEST(BenchCompare, RequireAllPassesWhenBaselineCoversEverything) {
  const RunReport base = baseline_report();
  CompareOptions options;
  options.require_all = true;
  EXPECT_TRUE(compare_reports(base, base, options).ok);
}

}  // namespace
}  // namespace mlm::bench

// Exit-code contract of tools/bench_compare, exercised end-to-end by
// spawning the real binary on real JSON fixtures.  CI keys off the
// codes, so they are load-bearing API:
//
//   0 — comparison ran and passed
//   1 — comparison ran and found a regression
//   2 — usage error (bad flags / wrong arity); the gate never ran
//   3 — missing or unparsable artifact; the gate itself is broken
//
// The library-level pass/fail logic is covered in
// test_bench_compare.cpp; these tests pin the process boundary: the
// mapping from CompareResult/parse failure to exit status, and that an
// exit-3 diagnostic names the offending suite, case, and metric so the
// CI log points at the broken entry rather than a bare JSON error.
//
// The binary path and fixture directory are baked in by CMake
// (MLM_BENCH_COMPARE_BIN, MLM_BENCH_FIXTURE_DIR), so the tests run from
// any working directory ctest chooses.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

// Run bench_compare with `args`, capturing both streams.  popen gives
// the shell-reported status; WEXITSTATUS recovers the exit code.
RunResult run_compare(const std::string& args) {
  const std::string cmd =
      std::string(MLM_BENCH_COMPARE_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    result.output += buf;
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(MLM_BENCH_FIXTURE_DIR) + "/" + name;
}

TEST(BenchCompareCli, MatchingArtifactsExitZero) {
  const RunResult r =
      run_compare(fixture("current_ok.json") + " " + fixture("baseline.json"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK (0 failures)"), std::string::npos) << r.output;
}

TEST(BenchCompareCli, DeterministicMismatchExitsOne) {
  const RunResult r = run_compare(fixture("current_regression.json") + " " +
                                  fixture("baseline.json") + " --ignore-wall");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("deterministic mismatch"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos) << r.output;
}

TEST(BenchCompareCli, WallRegressionExitsOneUnlessIgnored) {
  const std::string pair =
      fixture("current_wall_slow.json") + " " + fixture("baseline.json");
  const RunResult gated = run_compare(pair);
  EXPECT_EQ(gated.exit_code, 1) << gated.output;
  EXPECT_NE(gated.output.find("slower by"), std::string::npos) << gated.output;

  // Same artifacts, wall metrics skipped: the deterministic metric
  // still matches, so the cross-machine CI form passes.
  const RunResult ignored = run_compare(pair + " --ignore-wall");
  EXPECT_EQ(ignored.exit_code, 0) << ignored.output;
}

TEST(BenchCompareCli, RequireAllTurnsNewCaseIntoFailure) {
  const std::string pair =
      fixture("current_extra_case.json") + " " + fixture("baseline.json");
  const RunResult lax = run_compare(pair);
  EXPECT_EQ(lax.exit_code, 0) << lax.output;
  EXPECT_NE(lax.output.find("note: new case"), std::string::npos)
      << lax.output;

  const RunResult strict = run_compare(pair + " --require-all");
  EXPECT_EQ(strict.exit_code, 1) << strict.output;
  EXPECT_NE(strict.output.find("s/unbaselined_case"), std::string::npos)
      << strict.output;
  EXPECT_NE(strict.output.find("--require-all"), std::string::npos)
      << strict.output;
}

TEST(BenchCompareCli, UsageErrorsExitTwo) {
  // Wrong arity: one artifact instead of two.
  const RunResult one_arg = run_compare(fixture("baseline.json"));
  EXPECT_EQ(one_arg.exit_code, 2) << one_arg.output;
  EXPECT_NE(one_arg.output.find("expected exactly two artifacts"),
            std::string::npos)
      << one_arg.output;

  // Unknown flag.
  const RunResult bad_flag =
      run_compare(fixture("current_ok.json") + " " + fixture("baseline.json") +
                  " --no-such-flag");
  EXPECT_EQ(bad_flag.exit_code, 2) << bad_flag.output;

  // Invalid threshold.
  const RunResult bad_threshold =
      run_compare(fixture("current_ok.json") + " " + fixture("baseline.json") +
                  " --threshold=-0.5");
  EXPECT_EQ(bad_threshold.exit_code, 2) << bad_threshold.output;
}

TEST(BenchCompareCli, MissingArtifactExitsThree) {
  const RunResult r = run_compare(fixture("does_not_exist.json") + " " +
                                  fixture("baseline.json"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("cannot load current artifact"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("gate failure"), std::string::npos) << r.output;
}

TEST(BenchCompareCli, TruncatedJsonExitsThree) {
  const RunResult r = run_compare(fixture("current_ok.json") + " " +
                                  fixture("truncated.json"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("cannot load baseline artifact"), std::string::npos)
      << r.output;
}

TEST(BenchCompareCli, ParseFailureNamesSuiteCaseAndMetric) {
  // broken_metric.json is valid JSON whose deterministic metric lacks
  // its "value" key.  The exit-3 diagnostic must carry the parse_metric
  // and parse_case frames so the log names the offending entry.
  const RunResult r = run_compare(fixture("broken_metric.json") + " " +
                                  fixture("baseline.json"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("parse_metric"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("metric 'sim_seconds'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("parse_case"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("suite 's'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("case 's/det_case'"), std::string::npos) << r.output;
}

}  // namespace

#include "mlm/bench/bench.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mlm/bench/report.h"
#include "mlm/support/error.h"

namespace mlm::bench {
namespace {

int run(Harness& h, std::vector<const char*> args) {
  args.insert(args.begin(), "test_bench");
  return h.run(static_cast<int>(args.size()), args.data());
}

TEST(BenchHarness, RunsRegisteredCasesAndRecordsMetrics) {
  Harness h("test_tool", "test");
  Suite suite = h.suite("demo", "demo suite");
  suite.add_case("alpha", [](BenchContext& ctx) {
    ctx.param("size", std::uint64_t{64});
    ctx.metric("answer", 42.0, "units");
  });
  suite.add_case("beta", [](BenchContext& ctx) {
    ctx.wall_metric("elapsed", {0.25, 0.75});
  });

  ASSERT_EQ(run(h, {"--quiet"}), 0);
  const RunReport& report = h.report();
  EXPECT_EQ(report.tool, "test_tool");
  ASSERT_EQ(report.cases.size(), 2u);
  EXPECT_EQ(report.cases[0].name, "demo/alpha");
  EXPECT_EQ(report.cases[0].suite, "demo");
  EXPECT_EQ(*report.cases[0].find_param("size"), "64");
  EXPECT_EQ(report.value("demo/alpha", "answer"), 42.0);
  // Wall-clock compare value is the mean over samples.
  EXPECT_EQ(report.value("demo/beta", "elapsed"), 0.5);
  // Default machine description: the paper's KNL 7250 tier list.
  EXPECT_EQ(report.machine_name, "knl-7250");
  EXPECT_FALSE(report.machine_tiers.empty());
}

TEST(BenchHarness, CounterMetricsRecordAndGateOnTheFlag) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("c", [](BenchContext& ctx) {
    EXPECT_TRUE(ctx.perf_counters());
    ctx.counter("llc_misses", 12345.0);
  });
  ASSERT_EQ(run(h, {"--quiet", "--perf-counters"}), 0);
  const Metric* m = h.report().find("s/c")->find_metric("llc_misses");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::Counter);
  EXPECT_EQ(m->value(), 12345.0);
}

TEST(BenchHarness, PerfCountersDefaultOff) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("c", [](BenchContext& ctx) {
    EXPECT_FALSE(ctx.perf_counters());
  });
  ASSERT_EQ(run(h, {"--quiet"}), 0);
}

TEST(BenchReport, CounterMetricsRoundTripThroughJson) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("c", [](BenchContext& ctx) {
    ctx.counter("node_remote_reads", 987654321.0, "events");
  });
  ASSERT_EQ(run(h, {"--quiet"}), 0);
  const RunReport back = report_from_json(report_to_json(h.report()));
  const Metric* m = back.find("s/c")->find_metric("node_remote_reads");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::Counter);
  EXPECT_EQ(m->unit, "events");
  EXPECT_EQ(m->value(), 987654321.0);
}

TEST(BenchHarness, SmokeClampsRepetitionProtocol) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  std::size_t calls = 0;
  suite.add_case("c", [&](BenchContext& ctx) {
    EXPECT_TRUE(ctx.smoke());
    EXPECT_EQ(ctx.scaled(100, 7), 7u);
    ctx.measure("m", [&] { ++calls; });
  });
  ASSERT_EQ(run(h, {"--smoke", "--quiet"}), 0);
  // --smoke => 1 repetition, 0 warmup unless overridden.
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(h.report().find("s/c")->find_metric("m")->samples.size(), 1u);
}

TEST(BenchHarness, MeasureDiscardsWarmupRuns) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  std::size_t calls = 0;
  suite.add_case("c", [&](BenchContext& ctx) {
    ctx.measure("m", [&] { ++calls; });
  });
  ASSERT_EQ(run(h, {"--quiet", "--repetitions=4", "--warmup=2"}), 0);
  EXPECT_EQ(calls, 6u);  // 2 warmup (discarded) + 4 timed
  EXPECT_EQ(h.report().find("s/c")->find_metric("m")->samples.size(), 4u);
}

TEST(BenchHarness, FilterSelectsSubsetAndUnmatchedFilterFails) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("keep_me", [](BenchContext& ctx) { ctx.metric("x", 1); });
  suite.add_case("drop_me", [](BenchContext& ctx) { ctx.metric("x", 2); });
  ASSERT_EQ(run(h, {"--quiet", "--filter=keep"}), 0);
  EXPECT_EQ(h.report().cases.size(), 1u);
  EXPECT_EQ(h.report().cases[0].name, "s/keep_me");

  Harness h2("t", "d");
  Suite s2 = h2.suite("s", "");
  s2.add_case("only", [](BenchContext& ctx) { ctx.metric("x", 1); });
  EXPECT_EQ(run(h2, {"--quiet", "--filter=no-such-case"}), 2);
}

TEST(BenchHarness, ThrowingCaseFailsTheRun) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("bad", [](BenchContext&) {
    throw Error("deliberate failure");
  });
  EXPECT_EQ(run(h, {"--quiet"}), 1);
}

TEST(BenchHarness, RejectsDuplicateCasesMetricsAndParams) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("c", [](BenchContext& ctx) {
    ctx.param("p", "v");
    EXPECT_THROW(ctx.param("p", "again"), Error);
    ctx.metric("m", 1);
    EXPECT_THROW(ctx.metric("m", 2), Error);
  });
  EXPECT_THROW(suite.add_case("c", [](BenchContext&) {}), Error);
  EXPECT_THROW(h.suite("s", "again"), Error);
  ASSERT_EQ(run(h, {"--quiet"}), 0);
}

TEST(BenchReport, JsonArtifactRoundTrips) {
  Harness h("roundtrip_tool", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("det", [](BenchContext& ctx) {
    ctx.param("elements", std::uint64_t{1000});
    ctx.metric("sim_seconds", 7.497391234, "s");
  });
  suite.add_case("wall", [](BenchContext& ctx) {
    ctx.wall_metric("seconds", {0.125, 0.5, 0.25});
  });
  const std::string path =
      ::testing::TempDir() + "/mlm_bench_roundtrip.json";
  ASSERT_EQ(run(h, {"--quiet", "--seed=7"}), 0);
  write_json_report(h.report(), path);

  const JsonValue doc = json_parse_file(path);
  EXPECT_EQ(doc.get("schema_version").as_number(), kSchemaVersion);
  EXPECT_EQ(doc.get("tool").as_string(), "roundtrip_tool");
  EXPECT_TRUE(doc.contains("git_sha"));
  EXPECT_EQ(doc.get("options").get("seed").as_number(), 7.0);

  const RunReport back = report_from_json(doc);
  EXPECT_EQ(back.tool, "roundtrip_tool");
  EXPECT_EQ(back.machine_name, h.report().machine_name);
  ASSERT_EQ(back.machine_tiers.size(), h.report().machine_tiers.size());
  EXPECT_EQ(back.machine_tiers[0].capacity_bytes,
            h.report().machine_tiers[0].capacity_bytes);
  ASSERT_EQ(back.cases.size(), 2u);
  // Deterministic values survive the round-trip bit-for-bit.
  EXPECT_EQ(back.value("s/det", "sim_seconds"), 7.497391234);
  EXPECT_EQ(*back.find("s/det")->find_param("elements"), "1000");
  const Metric* wall = back.find("s/wall")->find_metric("seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->kind, MetricKind::WallClock);
  ASSERT_EQ(wall->samples.size(), 3u);
  EXPECT_EQ(wall->samples[1], 0.5);
  std::remove(path.c_str());
}

TEST(BenchReport, RejectsUnknownSchemaVersion) {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", 999);
  EXPECT_THROW(report_from_json(doc), Error);
}

TEST(BenchReport, CsvViewHasOneRowPerMetric) {
  Harness h("t", "d");
  Suite suite = h.suite("s", "");
  suite.add_case("c", [](BenchContext& ctx) {
    ctx.param("k", "v,with comma");
    ctx.metric("m1", 1.5, "s");
    ctx.metric("m2", 2.5, "B");
  });
  ASSERT_EQ(run(h, {"--quiet"}), 0);
  const std::string path = ::testing::TempDir() + "/mlm_bench_view.csv";
  write_csv_report(h.report(), path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + one row per metric
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlm::bench

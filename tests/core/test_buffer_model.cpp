#include "mlm/core/buffer_model.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::core {
namespace {

ModelParams table2() { return ModelParams::from_machine(knl7250()); }

ModelWorkload paper_workload(double passes) {
  return ModelWorkload{14.9e9, passes};  // B_copy from Table 2
}

TEST(BufferModel, FromMachineCarriesTable2) {
  const ModelParams p = table2();
  EXPECT_DOUBLE_EQ(p.ddr_max, 90e9);
  EXPECT_DOUBLE_EQ(p.mcdram_max, 400e9);
  EXPECT_DOUBLE_EQ(p.s_copy, 4.8e9);
  EXPECT_DOUBLE_EQ(p.s_comp, 6.78e9);
}

TEST(BufferModel, Equation3BothBranches) {
  // Below DDR saturation: C_copy = S_copy.
  auto p = predict(table2(), paper_workload(1), ThreadSplit{4, 248});
  EXPECT_DOUBLE_EQ(p.c_copy, 4.8e9);
  // 8 copy threads per direction = 16 total, 76.8 <= 90 -> still S_copy.
  p = predict(table2(), paper_workload(1), ThreadSplit{8, 240});
  EXPECT_DOUBLE_EQ(p.c_copy, 4.8e9);
  // 16 per direction = 32 total, 153.6 > 90 -> DDR_max / p_copy.
  p = predict(table2(), paper_workload(1), ThreadSplit{16, 224});
  EXPECT_DOUBLE_EQ(p.c_copy, 90e9 / 32.0);
}

TEST(BufferModel, Equation2CopyTime) {
  // 2 * 14.9 GB at aggregate 8 * 4.8 GB/s.
  const auto p = predict(table2(), paper_workload(1), ThreadSplit{4, 248});
  EXPECT_NEAR(p.t_copy, 2.0 * 14.9e9 / (8.0 * 4.8e9), 1e-9);
}

TEST(BufferModel, Equation5SharesMcdramWithCopies) {
  // 248 compute threads demand 1681 GB/s >> 400: MCDRAM bound; copies at
  // 38.4 GB/s leave 361.6 for compute.
  const auto p = predict(table2(), paper_workload(1), ThreadSplit{4, 248});
  EXPECT_NEAR(p.c_comp * 248.0, 400e9 - 38.4e9, 1e-3);
}

TEST(BufferModel, Equation5UnconstrainedBranch) {
  // Few compute threads: 10 * 6.78 + 2 * 4.8 = 77.4 <= 400 -> S_comp.
  const auto p = predict(table2(), paper_workload(1), ThreadSplit{1, 10});
  EXPECT_DOUBLE_EQ(p.c_comp, 6.78e9);
}

TEST(BufferModel, Equation1MaxOfComponents) {
  const auto p = predict(table2(), paper_workload(8), ThreadSplit{4, 248});
  EXPECT_DOUBLE_EQ(p.t_total, std::max(p.t_copy, p.t_comp));
}

TEST(BufferModel, Table3ModelColumn) {
  // Our full-sweep optima for the paper's repeats ladder.  The paper's
  // Table 3 reports {10, 10, 10, 8, 3, 2, 1}; our exact evaluation of
  // Eqs. (1)-(5) finds the same values at repeats 1, 2, 16, 32, 64 and
  // flat-minimum neighbours (9, 5) at repeats 4 and 8 — within the
  // paper's own "numbers do not match exactly" tolerance, and the
  // monotone-decreasing shape is identical.
  const ModelParams p = table2();
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(1), 256), 10u);
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(2), 256), 10u);
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(4), 256), 9u);
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(8), 256), 5u);
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(16), 256), 3u);
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(32), 256), 2u);
  EXPECT_EQ(optimal_copy_threads(p, paper_workload(64), 256), 1u);
}

TEST(BufferModel, OptimaDecreaseMonotonically) {
  const ModelParams p = table2();
  std::size_t prev = 1000;
  for (double passes : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const std::size_t c =
        optimal_copy_threads(p, paper_workload(passes), 256);
    EXPECT_LE(c, prev) << "passes=" << passes;
    prev = c;
  }
}

TEST(BufferModel, CandidateRestrictedOptimum) {
  const ModelParams p = table2();
  // Powers-of-two grid, like the paper's empirical runs.
  const std::vector<std::size_t> powers{1, 2, 4, 8, 16, 32};
  const std::size_t c =
      optimal_copy_threads(p, paper_workload(16), 256, powers);
  // Full-sweep optimum is 3; nearest admissible neighbours are 2 or 4.
  EXPECT_TRUE(c == 2 || c == 4) << c;
}

TEST(BufferModel, SweepCoversAllFeasibleSplits) {
  const auto sweep = sweep_copy_threads(table2(), paper_workload(1), 31);
  // copy = 1..15 (2*15+1 = 31).
  ASSERT_EQ(sweep.size(), 15u);
  EXPECT_EQ(sweep.front().copy_threads, 1u);
  EXPECT_EQ(sweep.back().copy_threads, 15u);
}

TEST(BufferModel, RejectsBadInputs) {
  const ModelParams p = table2();
  EXPECT_THROW(predict(p, ModelWorkload{0.0, 1.0}, ThreadSplit{1, 1}),
               InvalidArgumentError);
  EXPECT_THROW(predict(p, ModelWorkload{1e9, 0.5}, ThreadSplit{1, 1}),
               InvalidArgumentError);
  EXPECT_THROW(predict(p, paper_workload(1), ThreadSplit{0, 1}),
               InvalidArgumentError);
  EXPECT_THROW(sweep_copy_threads(p, paper_workload(1), 2),
               InvalidArgumentError);
  EXPECT_THROW(optimal_copy_threads(p, paper_workload(1), 256, {}),
               InvalidArgumentError);
  EXPECT_THROW(optimal_copy_threads(p, paper_workload(1), 256, {200}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::core

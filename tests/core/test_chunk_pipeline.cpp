#include "mlm/core/chunk_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

DualSpace make_space(McdramMode mode, std::uint64_t mcdram = MiB(4)) {
  DualSpaceConfig cfg;
  cfg.mode = mode;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

PipelineConfig small_config(Buffering buffering = Buffering::Triple,
                            std::size_t chunk_bytes = 256 * 1024) {
  PipelineConfig cfg;
  cfg.chunk_bytes = chunk_bytes;
  cfg.pools = PoolSizes{1, 1, 2};
  cfg.buffering = buffering;
  return cfg;
}

class BufferingModes : public ::testing::TestWithParam<Buffering> {};

TEST_P(BufferingModes, IncrementsEveryElementExactlyOnce) {
  DualSpace space = make_space(McdramMode::Flat);
  std::vector<std::int64_t> data(300000);
  std::iota(data.begin(), data.end(), 0);

  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), small_config(GetParam()),
      [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        for (auto& v : chunk) v += 1;
      });

  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1) << i;
  }
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_EQ(stats.bytes_copied_in, data.size() * sizeof(std::int64_t));
  EXPECT_EQ(stats.bytes_copied_out, data.size() * sizeof(std::int64_t));
}

INSTANTIATE_TEST_SUITE_P(AllModes, BufferingModes,
                         ::testing::Values(Buffering::Single,
                                           Buffering::Double,
                                           Buffering::Triple),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ChunkPipeline, ChunkIndicesArriveInOrderWithCorrectSlices) {
  DualSpace space = make_space(McdramMode::Flat);
  std::vector<std::int64_t> data(100000);
  std::iota(data.begin(), data.end(), 0);

  std::vector<std::size_t> indices;
  std::vector<std::int64_t> first_elements;
  run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), small_config(),
      [&](std::span<std::int64_t> chunk, Executor&, std::size_t idx) {
        indices.push_back(idx);
        first_elements.push_back(chunk.front());
      });
  ASSERT_FALSE(indices.empty());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
    EXPECT_EQ(first_elements[i],
              static_cast<std::int64_t>(i * (256 * 1024 / 8)));
  }
}

TEST(ChunkPipeline, ImplicitModeProcessesInPlaceWithoutCopies) {
  DualSpace space = make_space(McdramMode::ImplicitCache);
  std::vector<std::int64_t> data(200000, 1);
  const std::int64_t* original_ptr = data.data();
  std::atomic<bool> in_place{true};

  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), small_config(),
      [&](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        // Implicit mode must hand us the original storage.
        if (chunk.data() < original_ptr ||
            chunk.data() >= original_ptr + data.size()) {
          in_place = false;
        }
        for (auto& v : chunk) v += 1;
      });

  EXPECT_TRUE(in_place.load());
  EXPECT_EQ(stats.bytes_copied_in, 0u);
  EXPECT_EQ(stats.bytes_copied_out, 0u);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](std::int64_t v) { return v == 2; }));
}

TEST(ChunkPipeline, WriteBackFalseLeavesDataUntouched) {
  DualSpace space = make_space(McdramMode::Flat);
  std::vector<std::int64_t> data(100000, 7);
  std::atomic<std::int64_t> sum{0};
  PipelineConfig cfg = small_config();
  cfg.write_back = false;

  run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg,
      [&](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        std::int64_t local = 0;
        for (auto& v : chunk) {
          local += v;
          v = 0;  // scribble on the buffer copy
        }
        sum += local;
      });

  EXPECT_EQ(sum.load(), 700000);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](std::int64_t v) { return v == 7; }));
}

TEST(ChunkPipeline, DefaultChunkSizeFillsNearMemory) {
  DualSpace space = make_space(McdramMode::Flat, MiB(3));
  std::vector<std::int64_t> data(MiB(2) / sizeof(std::int64_t), 1);
  PipelineConfig cfg = small_config();
  cfg.chunk_bytes = 0;  // auto: capacity / 3 buffers = 1 MiB
  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg,
      [](std::span<std::int64_t>, Executor&, std::size_t) {});
  EXPECT_EQ(stats.chunks, 2u);
}

TEST(ChunkPipeline, OversizedBuffersThrowOutOfMemory) {
  DualSpace space = make_space(McdramMode::Flat, MiB(1));
  std::vector<std::int64_t> data(MiB(2) / sizeof(std::int64_t), 1);
  PipelineConfig cfg = small_config(Buffering::Triple, MiB(1));
  EXPECT_THROW(run_chunk_pipeline_typed<std::int64_t>(
                   space, std::span<std::int64_t>(data), cfg,
                   [](std::span<std::int64_t>, Executor&, std::size_t) {}),
               OutOfMemoryError);
}

TEST(ChunkPipeline, SingleBufferingFitsWhereTripleDoesNot) {
  DualSpace space = make_space(McdramMode::Flat, MiB(1));
  std::vector<std::int64_t> data(MiB(2) / sizeof(std::int64_t));
  std::iota(data.begin(), data.end(), 0);
  auto expect = data;
  for (auto& v : expect) v *= 2;

  PipelineConfig cfg = small_config(Buffering::Single, MiB(1) - 64);
  run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg,
      [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        for (auto& v : chunk) v *= 2;
      });
  EXPECT_EQ(data, expect);
}

TEST(ChunkPipeline, ComputeExceptionPropagates) {
  DualSpace space = make_space(McdramMode::Flat);
  std::vector<std::int64_t> data(100000, 1);
  EXPECT_THROW(
      run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(data), small_config(),
          [](std::span<std::int64_t>, Executor&, std::size_t idx) {
            if (idx == 1) throw Error("compute failed");
          }),
      Error);
}

TEST(ChunkPipeline, RejectsBadArguments) {
  DualSpace space = make_space(McdramMode::Flat);
  std::vector<std::int64_t> data(100, 1);
  // Empty input is a no-op, not an error.
  const PipelineStats empty = run_chunk_pipeline(
      space, {}, small_config(),
      [](std::span<std::byte>, Executor&, std::size_t) {});
  EXPECT_EQ(empty.chunks, 0u);
  EXPECT_EQ(empty.steps, 0u);
  EXPECT_EQ(empty.bytes_copied_in, 0u);
  EXPECT_THROW(
      run_chunk_pipeline(space, std::as_writable_bytes(
                                    std::span<std::int64_t>(data)),
                         small_config(), nullptr),
      InvalidArgumentError);
}

TEST(ChunkPipeline, HybridModeUsesScratchpadHalf) {
  // Hybrid mode: only the flat fraction of MCDRAM is addressable; the
  // pipeline's buffers must respect it and chunks still round-trip.
  DualSpaceConfig scfg;
  scfg.mode = McdramMode::Hybrid;
  scfg.mcdram_bytes = MiB(4);
  scfg.hybrid_flat_fraction = 0.5;
  DualSpace space(scfg);
  std::vector<std::int64_t> data(300000);
  std::iota(data.begin(), data.end(), -150000);

  PipelineConfig cfg = small_config();
  cfg.chunk_bytes = 0;  // auto: (4 MiB * 0.5) / 3 buffers
  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg,
      [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        for (auto& v : chunk) v = -v;
      });
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], 150000 - static_cast<std::int64_t>(i));
  }
  EXPECT_GE(stats.chunks, 2u);
  // High-water stayed within the 2 MiB flat half.
  EXPECT_LE(space.mcdram().stats().high_water_bytes, MiB(2));
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(ChunkPipeline, StatsStepCountsMatchBuffering) {
  DualSpace space = make_space(McdramMode::Flat);
  std::vector<std::int64_t> data(4 * 256 * 1024 / 8, 1);  // 4 chunks
  for (auto [buffering, expected_steps] :
       {std::pair{Buffering::Single, 4u}, {Buffering::Double, 5u},
        {Buffering::Triple, 6u}}) {
    const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
        space, std::span<std::int64_t>(data), small_config(buffering),
        [](std::span<std::int64_t>, Executor&, std::size_t) {});
    EXPECT_EQ(stats.chunks, 4u);
    EXPECT_EQ(stats.steps, expected_steps) << to_string(buffering);
  }
}

}  // namespace
}  // namespace mlm::core

#include "mlm/core/copy_thread_tuner.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::core {
namespace {

TunedWorkload paper_workload(double passes) {
  return TunedWorkload{14.9e9, passes};
}

TEST(CopyThreadTuner, CopyBoundWorkloadSaturatesDdr) {
  // repeats=1 is copy-bound: the tuner must pick enough copy threads to
  // saturate DDR (10 per direction on the 7250) and report copy_bound.
  const TunedSplit s = tune_pools(knl7250(), paper_workload(1), 256);
  EXPECT_EQ(s.pools.copy_in, 10u);
  EXPECT_EQ(s.pools.copy_out, 10u);
  EXPECT_EQ(s.pools.compute, 236u);
  EXPECT_TRUE(s.copy_bound);
  EXPECT_GE(s.prediction.t_copy, s.prediction.t_comp);
}

TEST(CopyThreadTuner, ComputeBoundWorkloadUsesOneCopyThread) {
  const TunedSplit s = tune_pools(knl7250(), paper_workload(64), 256);
  EXPECT_EQ(s.pools.copy_in, 1u);
  EXPECT_FALSE(s.copy_bound);
  EXPECT_GT(s.prediction.t_comp, s.prediction.t_copy);
}

TEST(CopyThreadTuner, CandidateGridRestrictsChoice) {
  const TunedSplit s =
      tune_pools(knl7250(), paper_workload(16), 256, {1, 2, 4, 8, 16, 32});
  EXPECT_TRUE(s.pools.copy_in == 2 || s.pools.copy_in == 4);
}

TEST(CopyThreadTuner, PoolsAlwaysSumToBudget) {
  for (double passes : {1.0, 4.0, 16.0, 64.0}) {
    const TunedSplit s = tune_pools(knl7250(), paper_workload(passes), 256);
    EXPECT_EQ(s.pools.total(), 256u) << passes;
  }
}

TEST(CopyThreadTuner, RejectsBadWorkload) {
  EXPECT_THROW(tune_pools(knl7250(), TunedWorkload{0.0, 1.0}, 256),
               InvalidArgumentError);
  EXPECT_THROW(tune_pools(knl7250(), TunedWorkload{1e9, 0.0}, 256),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::core

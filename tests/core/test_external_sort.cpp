// Tests for double-level chunking: NVM-resident data sorted through
// capacity-limited DDR and MCDRAM (§6 extension).
#include "mlm/core/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/rng.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

using sort::InputOrder;
using sort::make_input;

// Tiny three-level machine: 512 KiB "MCDRAM", 2 MiB "DDR", unlimited NVM.
TripleSpace make_space() {
  TripleSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = KiB(512);
  cfg.ddr_bytes = MiB(2);
  cfg.nvm_bytes = 0;
  return TripleSpace(cfg);
}

TEST(TripleSpace, LevelsHaveExpectedKindsAndCapacities) {
  TripleSpace ts = make_space();
  EXPECT_EQ(ts.nvm().kind(), MemKind::NVM);
  EXPECT_TRUE(ts.nvm().unlimited());
  EXPECT_EQ(ts.ddr().capacity_bytes(), MiB(2));
  EXPECT_EQ(ts.mcdram().capacity_bytes(), KiB(512));
  EXPECT_TRUE(ts.has_addressable_mcdram());
}

TEST(TripleSpace, RequiresDdrLimit) {
  TripleSpaceConfig cfg;
  cfg.ddr_bytes = 0;
  EXPECT_THROW(TripleSpace{cfg}, InvalidArgumentError);
}

class ExternalSortProperty : public ::testing::TestWithParam<
                                 std::tuple<std::size_t, InputOrder>> {};

TEST_P(ExternalSortProperty, SortsNvmResidentData) {
  const auto [n, order] = GetParam();
  TripleSpace space = make_space();
  ThreadPool pool(4);

  // Data lives in the NVM space.
  SpaceBuffer<std::int64_t> data(space.nvm(), std::max<std::size_t>(n, 1));
  auto init = make_input(n, order, n * 13 + 1);
  std::copy(init.begin(), init.end(), data.data());
  auto expect = init;
  std::sort(expect.begin(), expect.end());

  ExternalSortConfig cfg;
  cfg.inner.variant = MlmVariant::Flat;
  ExternalMlmSorter<std::int64_t> sorter(space, pool, cfg);
  const ExternalSortStats stats =
      sorter.sort(std::span<std::int64_t>(data.data(), n));

  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), data.data()));
  if (n * sizeof(std::int64_t) > MiB(1)) {
    // Data exceeds half of DDR: outer chunking engaged.
    EXPECT_GE(stats.outer_chunks, 2u);
    EXPECT_TRUE(stats.external_merge_ran);
    // Inner sorter chunked through the 512 KiB MCDRAM too: double
    // chunking.
    EXPECT_GE(stats.last_inner.megachunks, 2u);
  }
  // All staging returned.
  EXPECT_EQ(space.ddr().stats().used_bytes, 0u);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSortProperty,
    ::testing::Combine(
        // 1M int64 = 8 MiB = 4x DDR = 16x MCDRAM.
        ::testing::Values(0, 1, 1000, 130000, 500000, 1000000),
        ::testing::Values(InputOrder::Random, InputOrder::Reverse,
                          InputOrder::FewDistinct)));

TEST(ExternalSort, ExplicitOuterChunkHonored) {
  TripleSpace space = make_space();
  ThreadPool pool(2);
  SpaceBuffer<std::int64_t> data(space.nvm(), 400000);
  auto init = make_input(400000, InputOrder::Random, 3);
  std::copy(init.begin(), init.end(), data.data());

  ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 100000;
  ExternalMlmSorter<std::int64_t> sorter(space, pool, cfg);
  const auto stats = sorter.sort(std::span<std::int64_t>(data.data(),
                                                         400000));
  EXPECT_EQ(stats.outer_chunks, 4u);
  EXPECT_TRUE(std::is_sorted(data.data(), data.data() + 400000));
}

TEST(ExternalSort, OversizedOuterChunkRejected) {
  TripleSpace space = make_space();
  ThreadPool pool(2);
  SpaceBuffer<std::int64_t> data(space.nvm(), 1000);
  ExternalSortConfig cfg;
  // 2 MiB of DDR / 8 B / 2 = 131072 elements max.
  cfg.outer_chunk_elements = 200000;
  ExternalMlmSorter<std::int64_t> sorter(space, pool, cfg);
  EXPECT_THROW(sorter.sort(std::span<std::int64_t>(data.data(), 1000)),
               InvalidArgumentError);
}

TEST(ExternalMerge, MergesFarRunsThroughTinyBlocks) {
  TripleSpace space = make_space();
  ThreadPool pool(3);
  // Three sorted far-resident runs.
  const std::size_t run_len = 5000;
  SpaceBuffer<std::int64_t> far(space.nvm(), 3 * run_len);
  SpaceBuffer<std::int64_t> out(space.nvm(), 3 * run_len);
  std::vector<std::int64_t> all;
  Xoshiro256ss rng(5);
  for (std::size_t r = 0; r < 3; ++r) {
    std::vector<std::int64_t> v(run_len);
    for (auto& x : v) x = static_cast<std::int64_t>(rng.bounded(100000));
    std::sort(v.begin(), v.end());
    std::copy(v.begin(), v.end(), far.data() + r * run_len);
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());

  std::vector<mlm::sort::Run<std::int64_t>> runs;
  for (std::size_t r = 0; r < 3; ++r) {
    runs.emplace_back(far.data() + r * run_len, run_len);
  }
  // Deliberately tiny blocks: forces many refills and tree rebuilds.
  external_multiway_merge(pool, space.ddr(),
                          std::span<const mlm::sort::Run<std::int64_t>>(runs),
                          std::span<std::int64_t>(out.data(), 3 * run_len),
                          /*block_elements=*/64);
  EXPECT_TRUE(std::equal(all.begin(), all.end(), out.data()));
  EXPECT_EQ(space.ddr().stats().used_bytes, 0u);
}

TEST(ExternalMerge, RejectsBadArguments) {
  TripleSpace space = make_space();
  ThreadPool pool(1);
  SpaceBuffer<std::int64_t> far(space.nvm(), 10);
  std::vector<mlm::sort::Run<std::int64_t>> runs{{far.data(), 10}};
  std::vector<std::int64_t> out_wrong(5);
  EXPECT_THROW(external_multiway_merge(
                   pool, space.ddr(),
                   std::span<const mlm::sort::Run<std::int64_t>>(runs),
                   std::span<std::int64_t>(out_wrong), 64),
               InvalidArgumentError);
  SpaceBuffer<std::int64_t> out(space.nvm(), 10);
  EXPECT_THROW(external_multiway_merge(
                   pool, space.ddr(),
                   std::span<const mlm::sort::Run<std::int64_t>>(runs),
                   std::span<std::int64_t>(out.data(), 10), 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::core

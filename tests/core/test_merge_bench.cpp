#include "mlm/core/merge_bench.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

DualSpace flat_space(std::uint64_t mcdram = MiB(4)) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

MergeBenchConfig small_config(unsigned repeats = 1) {
  MergeBenchConfig c;
  c.elements = 200000;
  c.chunk_elements = 32768;
  c.copy_threads = 1;
  c.compute_threads = 2;
  c.repeats = repeats;
  return c;
}

TEST(MergeBench, RunsAndCountsMerges) {
  DualSpace space = flat_space();
  auto data = mlm::sort::make_input(200000,
                                    mlm::sort::InputOrder::Random, 1);
  const MergeBenchConfig cfg = small_config(3);
  const MergeBenchResult r =
      run_merge_bench(space, std::span<std::int64_t>(data), cfg);
  EXPECT_GT(r.seconds, 0.0);
  // ceil(200000/32768) = 7 chunks; compute pool has 2 threads working,
  // so 2 portions per chunk per repeat.
  EXPECT_EQ(r.pipeline.chunks, 7u);
  EXPECT_EQ(r.merges_performed, 7u * 3u * 2u);
}

TEST(MergeBench, DataIsPermutedNotCorrupted) {
  DualSpace space = flat_space();
  auto data = mlm::sort::make_input(100000,
                                    mlm::sort::InputOrder::Random, 2);
  const auto cs = mlm::sort::checksum(data);
  MergeBenchConfig cfg = small_config(2);
  cfg.elements = data.size();
  run_merge_bench(space, std::span<std::int64_t>(data), cfg);
  EXPECT_EQ(mlm::sort::checksum(data), cs);
}

TEST(MergeBench, SortedHalvesStaySortedAfterOneRepeat) {
  // With each thread portion's halves sorted, the merge produces a
  // sorted portion: functional verification of the compute kernel.
  DualSpace space = flat_space();
  MergeBenchConfig cfg;
  cfg.elements = 65536;
  cfg.chunk_elements = 65536;   // one chunk
  cfg.copy_threads = 1;
  cfg.compute_threads = 1;      // one portion == whole chunk
  cfg.repeats = 1;
  std::vector<std::int64_t> data(cfg.elements);
  // Two sorted halves: evens then odds.
  for (std::size_t i = 0; i < data.size() / 2; ++i) {
    data[i] = static_cast<std::int64_t>(2 * i);
    data[data.size() / 2 + i] = static_cast<std::int64_t>(2 * i + 1);
  }
  run_merge_bench(space, std::span<std::int64_t>(data), cfg);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  EXPECT_EQ(data.front(), 0);
  EXPECT_EQ(data.back(), static_cast<std::int64_t>(data.size() - 1));
}

TEST(MergeBench, ImplicitModeRunsWithoutMcdram) {
  DualSpaceConfig scfg;
  scfg.mode = McdramMode::ImplicitCache;
  scfg.mcdram_bytes = MiB(4);
  DualSpace space(scfg);
  auto data = mlm::sort::make_input(100000,
                                    mlm::sort::InputOrder::Random, 3);
  MergeBenchConfig cfg = small_config();
  cfg.elements = data.size();
  const MergeBenchResult r =
      run_merge_bench(space, std::span<std::int64_t>(data), cfg);
  EXPECT_EQ(r.pipeline.bytes_copied_in, 0u);
  EXPECT_GT(r.merges_performed, 0u);
}

TEST(MergeBench, DefaultChunkSizeLeavesRoomForScratch) {
  DualSpace space = flat_space(MiB(4));
  auto data = mlm::sort::make_input(300000,
                                    mlm::sort::InputOrder::Random, 4);
  MergeBenchConfig cfg = small_config();
  cfg.elements = data.size();
  cfg.chunk_elements = 0;  // auto
  EXPECT_NO_THROW(
      run_merge_bench(space, std::span<std::int64_t>(data), cfg));
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(MergeBench, RejectsBadConfigs) {
  DualSpace space = flat_space();
  std::vector<std::int64_t> data(100);
  MergeBenchConfig cfg = small_config();
  cfg.elements = 200;  // more than data holds
  EXPECT_THROW(run_merge_bench(space, std::span<std::int64_t>(data), cfg),
               InvalidArgumentError);
  cfg = small_config();
  cfg.elements = 100;
  cfg.repeats = 0;
  EXPECT_THROW(run_merge_bench(space, std::span<std::int64_t>(data), cfg),
               InvalidArgumentError);
  cfg = small_config();
  cfg.elements = 100;
  cfg.copy_threads = 0;
  EXPECT_THROW(run_merge_bench(space, std::span<std::int64_t>(data), cfg),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::core

#include "mlm/core/mlm_radix.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

using sort::InputOrder;
using sort::make_input;

DualSpace flat_space(std::uint64_t mcdram = MiB(2)) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

class MlmRadixProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MlmRadixProperty, SortsCorrectly) {
  const std::size_t n = GetParam();
  DualSpace space = flat_space();
  ThreadPool pool(4);
  auto data = make_input(n, InputOrder::Random, n * 23 + 7);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  const auto cs = sort::checksum(data);
  const MlmRadixStats stats =
      mlm_radix_sort(space, pool, std::span<std::int64_t>(data));
  EXPECT_EQ(data, expect);
  EXPECT_EQ(sort::checksum(data), cs);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
  EXPECT_EQ(space.ddr().stats().used_bytes, 0u);
  if (n * sizeof(std::int64_t) > MiB(1)) {
    // Data exceeds half the MCDRAM (the radix ping-pong budget):
    // chunking and the final merge must have engaged.
    EXPECT_GE(stats.megachunks, 2u);
    EXPECT_TRUE(stats.final_merge_ran);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MlmRadixProperty,
                         ::testing::Values(0, 1, 1000, 100000, 500000,
                                           1000000));

TEST(MlmRadix, ReverseAndDuplicateInputs) {
  DualSpace space = flat_space();
  ThreadPool pool(3);
  for (InputOrder order : {InputOrder::Reverse, InputOrder::FewDistinct}) {
    auto data = make_input(300000, order, 11);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    mlm_radix_sort(space, pool, std::span<std::int64_t>(data));
    EXPECT_EQ(data, expect) << to_string(order);
  }
}

TEST(MlmRadix, ExplicitMegachunkHonoredAndValidated) {
  DualSpace space = flat_space(MiB(2));
  ThreadPool pool(2);
  auto data = make_input(400000, InputOrder::Random, 13);
  // 2 MiB MCDRAM / 8 B / 2 buffers = 131072 elements max.
  const MlmRadixStats stats = mlm_radix_sort(
      space, pool, std::span<std::int64_t>(data), 100000);
  EXPECT_EQ(stats.megachunks, 4u);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));

  EXPECT_THROW(mlm_radix_sort(space, pool,
                              std::span<std::int64_t>(data), 200000),
               InvalidArgumentError);
}

TEST(MlmRadix, RequiresAddressableMcdram) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Cache;
  cfg.mcdram_bytes = MiB(2);
  DualSpace space(cfg);
  ThreadPool pool(2);
  std::vector<std::int64_t> data(10);
  EXPECT_THROW(
      mlm_radix_sort(space, pool, std::span<std::int64_t>(data)),
      InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::core

#include "mlm/core/mlm_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

using mlm::sort::InputOrder;
using mlm::sort::checksum;
using mlm::sort::make_input;

DualSpace make_space(MlmVariant variant, std::uint64_t mcdram = MiB(2)) {
  DualSpaceConfig cfg;
  switch (variant) {
    case MlmVariant::Flat: cfg.mode = McdramMode::Flat; break;
    case MlmVariant::Implicit: cfg.mode = McdramMode::ImplicitCache; break;
    case MlmVariant::DdrOnly: cfg.mode = McdramMode::DdrOnly; break;
  }
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

using Case = std::tuple<MlmVariant, std::size_t, InputOrder>;

class MlmSortProperty : public ::testing::TestWithParam<Case> {};

TEST_P(MlmSortProperty, SortsCorrectlyAndPreservesData) {
  const auto [variant, n, order] = GetParam();
  DualSpace space = make_space(variant);
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = variant;

  auto data = make_input(n, order, n * 7 + static_cast<int>(order));
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  const auto cs = checksum(data);

  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const MlmSortStats stats = sorter.sort(std::span<std::int64_t>(data));

  EXPECT_EQ(data, expect);
  EXPECT_EQ(checksum(data), cs);
  if (n > 1) EXPECT_GE(stats.megachunks, 1u);
  // All scratch returned.
  EXPECT_EQ(space.ddr().stats().used_bytes, 0u);
  if (variant == MlmVariant::Flat) {
    EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MlmSortProperty,
    ::testing::Combine(
        ::testing::Values(MlmVariant::Flat, MlmVariant::Implicit,
                          MlmVariant::DdrOnly),
        ::testing::Values(0, 1, 2, 1000, 100000, 500000),
        ::testing::Values(InputOrder::Random, InputOrder::Reverse,
                          InputOrder::FewDistinct)));

TEST(MlmSorter, FlatUsesMultipleMegachunksWhenDataExceedsMcdram) {
  // 2 MiB MCDRAM, 500k int64 = ~3.8 MiB of data -> >= 2 megachunks.
  DualSpace space = make_space(MlmVariant::Flat, MiB(2));
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;
  auto data = make_input(500000, InputOrder::Random, 3);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const MlmSortStats stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_GE(stats.megachunks, 2u);
  EXPECT_TRUE(stats.final_merge_ran);
  EXPECT_EQ(stats.bytes_copied_in, 500000 * sizeof(std::int64_t));
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(MlmSorter, ImplicitDefaultsToSingleMegachunk) {
  DualSpace space = make_space(MlmVariant::Implicit);
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Implicit;
  auto data = make_input(300000, InputOrder::Random, 5);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const MlmSortStats stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_EQ(stats.megachunks, 1u);
  EXPECT_FALSE(stats.final_merge_ran);
  EXPECT_EQ(stats.bytes_copied_in, 0u);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(MlmSorter, ExplicitMegachunkSizeHonored) {
  DualSpace space = make_space(MlmVariant::DdrOnly);
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::DdrOnly;
  cfg.megachunk_elements = 100000;
  auto data = make_input(350000, InputOrder::Random, 6);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const MlmSortStats stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_EQ(stats.megachunks, 4u);  // 3 full + 1 partial
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(MlmSorter, FlatRejectsMegachunkBiggerThanMcdram) {
  DualSpace space = make_space(MlmVariant::Flat, MiB(1));
  ThreadPool pool(2);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;
  cfg.megachunk_elements = MiB(2) / sizeof(std::int64_t);
  auto data = make_input(100000, InputOrder::Random, 8);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  EXPECT_THROW(sorter.sort(std::span<std::int64_t>(data)),
               InvalidArgumentError);
}

TEST(MlmSorter, FlatVariantRequiresAddressableMcdram) {
  DualSpace space = make_space(MlmVariant::Implicit);  // cache mode
  ThreadPool pool(2);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;
  EXPECT_THROW((MlmSorter<std::int64_t>(space, pool, cfg)),
               InvalidArgumentError);
}

TEST(MlmSorter, CustomComparator) {
  DualSpace space = make_space(MlmVariant::DdrOnly);
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::DdrOnly;
  auto data = make_input(50000, InputOrder::Random, 10);
  MlmSorter<std::int64_t, std::greater<>> sorter(space, pool, cfg,
                                                 std::greater<>{});
  sorter.sort(std::span<std::int64_t>(data));
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<>{}));
}

TEST(BasicChunkedSort, SortsThroughPipeline) {
  DualSpaceConfig scfg;
  scfg.mode = McdramMode::Flat;
  scfg.mcdram_bytes = MiB(2);
  DualSpace space(scfg);
  ThreadPool pool(4);
  auto data = make_input(300000, InputOrder::Random, 12);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  basic_chunked_sort(space, pool, std::span<std::int64_t>(data), 100000);
  EXPECT_EQ(data, expect);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(BasicChunkedSort, DdrOnlyPath) {
  DualSpaceConfig scfg;
  scfg.mode = McdramMode::DdrOnly;
  DualSpace space(scfg);
  ThreadPool pool(3);
  auto data = make_input(120000, InputOrder::Reverse, 13);
  basic_chunked_sort(space, pool, std::span<std::int64_t>(data), 50000);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(MlmVariant, Names) {
  EXPECT_STREQ(to_string(MlmVariant::Flat), "flat");
  EXPECT_STREQ(to_string(MlmVariant::Implicit), "implicit");
  EXPECT_STREQ(to_string(MlmVariant::DdrOnly), "ddr-only");
}

}  // namespace
}  // namespace mlm::core

// Tests for the buffered (double-megachunk) MLM-sort variant — the §6
// future-work feature: copy-in of megachunk c+1 overlaps the sorting of
// megachunk c.
#include <gtest/gtest.h>

#include <algorithm>

#include "mlm/core/mlm_sort.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

using sort::InputOrder;
using sort::make_input;

DualSpace flat_space(std::uint64_t mcdram = MiB(2)) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

class BufferedMlmSort : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferedMlmSort, SortsCorrectly) {
  const std::size_t n = GetParam();
  DualSpace space = flat_space();
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;
  cfg.overlap_copy_in = true;
  cfg.copy_threads = 2;
  auto data = make_input(n, InputOrder::Random, n + 1);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  const auto cs = sort::checksum(data);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const MlmSortStats stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_EQ(data, expect);
  EXPECT_EQ(sort::checksum(data), cs);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
  if (n * sizeof(std::int64_t) > MiB(1)) {
    // Data exceeds half the MCDRAM: chunking + overlap engaged.
    EXPECT_GE(stats.megachunks, 2u);
    EXPECT_EQ(stats.overlapped_copies, stats.megachunks - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferedMlmSort,
                         ::testing::Values(0, 1, 1000, 100000, 400000,
                                           1000000));

TEST(BufferedMlmSort, MegachunkCapHalved) {
  DualSpace space = flat_space(MiB(2));
  ThreadPool pool(2);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;
  cfg.overlap_copy_in = true;
  // 1.5 MiB megachunk > 1 MiB (= half of MCDRAM) must be rejected.
  cfg.megachunk_elements = (MiB(1) + MiB(1) / 2) / sizeof(std::int64_t);
  auto data = make_input(500000, InputOrder::Random, 3);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  EXPECT_THROW(sorter.sort(std::span<std::int64_t>(data)),
               InvalidArgumentError);
}

TEST(BufferedMlmSort, SingleMegachunkFallsBackToUnbuffered) {
  DualSpace space = flat_space(MiB(4));
  ThreadPool pool(2);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;
  cfg.overlap_copy_in = true;
  auto data = make_input(10000, InputOrder::Reverse, 4);  // fits easily
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const MlmSortStats stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_EQ(stats.megachunks, 1u);
  EXPECT_EQ(stats.overlapped_copies, 0u);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(BufferedMlmSort, MatchesUnbufferedResult) {
  DualSpace space = flat_space();
  ThreadPool pool(3);
  auto data1 = make_input(300000, InputOrder::FewDistinct, 8);
  auto data2 = data1;

  MlmSortConfig plain;
  plain.variant = MlmVariant::Flat;
  MlmSorter<std::int64_t> s1(space, pool, plain);
  s1.sort(std::span<std::int64_t>(data1));

  MlmSortConfig buf = plain;
  buf.overlap_copy_in = true;
  MlmSorter<std::int64_t> s2(space, pool, buf);
  s2.sort(std::span<std::int64_t>(data2));

  EXPECT_EQ(data1, data2);
}

}  // namespace
}  // namespace mlm::core

#include "mlm/core/scatter_bench.h"

#include <gtest/gtest.h>

#include <numeric>

#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

DualSpace flat_space(std::uint64_t mcdram = KiB(256)) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

class ScatterStrategyTest
    : public ::testing::TestWithParam<ScatterStrategy> {};

TEST_P(ScatterStrategyTest, MatchesReference) {
  DualSpace space = flat_space();
  ThreadPool pool(4);
  const auto keys = make_scatter_keys(200000, 1u << 20, 0.0, 7);
  // Table of 64K slots = 512 KiB > the 256 KiB near space.
  std::vector<std::uint64_t> table(1 << 16, 0);
  std::vector<std::uint64_t> expect(table.size(), 0);
  scatter_reference(keys, std::span<std::uint64_t>(expect));

  ScatterConfig cfg;
  cfg.strategy = GetParam();
  const ScatterStats stats =
      run_scatter(space, pool, keys, std::span<std::uint64_t>(table), cfg);
  EXPECT_EQ(table, expect);
  EXPECT_GE(stats.buckets_used, 1u);
  if (GetParam() == ScatterStrategy::Partitioned) {
    // 512 KiB table over (256/2) KiB slice budget -> 4 buckets.
    EXPECT_GE(stats.buckets_used, 4u);
    EXPECT_EQ(stats.bucket_bytes, keys.size() * sizeof(std::uint64_t));
  }
}

INSTANTIATE_TEST_SUITE_P(Both, ScatterStrategyTest,
                         ::testing::Values(ScatterStrategy::Direct,
                                           ScatterStrategy::Partitioned),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Scatter, SkewedKeysStillExact) {
  DualSpace space = flat_space();
  ThreadPool pool(3);
  const auto keys = make_scatter_keys(100000, 1u << 18, 2.0, 3);
  std::vector<std::uint64_t> t1(1 << 14, 0), t2(1 << 14, 0);
  scatter_reference(keys, std::span<std::uint64_t>(t1));
  ScatterConfig cfg;
  cfg.strategy = ScatterStrategy::Partitioned;
  run_scatter(space, pool, keys, std::span<std::uint64_t>(t2), cfg);
  EXPECT_EQ(t1, t2);
}

TEST(Scatter, ExplicitBucketCountHonored) {
  DualSpace space = flat_space();
  ThreadPool pool(2);
  const auto keys = make_scatter_keys(10000, 1000, 0.0, 1);
  std::vector<std::uint64_t> table(1000, 0);
  ScatterConfig cfg;
  cfg.strategy = ScatterStrategy::Partitioned;
  cfg.buckets = 7;
  const auto stats =
      run_scatter(space, pool, keys, std::span<std::uint64_t>(table), cfg);
  EXPECT_EQ(stats.buckets_used, 7u);
  EXPECT_EQ(std::accumulate(table.begin(), table.end(), 0ull), 10000u);
}

TEST(Scatter, MoreBucketsThanSlotsClamped) {
  DualSpace space = flat_space();
  ThreadPool pool(2);
  const auto keys = make_scatter_keys(100, 10, 0.0, 2);
  std::vector<std::uint64_t> table(10, 0);
  ScatterConfig cfg;
  cfg.strategy = ScatterStrategy::Partitioned;
  cfg.buckets = 50;
  const auto stats =
      run_scatter(space, pool, keys, std::span<std::uint64_t>(table), cfg);
  EXPECT_LE(stats.buckets_used, 10u);
  EXPECT_EQ(std::accumulate(table.begin(), table.end(), 0ull), 100u);
}

TEST(Scatter, ImplicitModeUsesCacheSizedSlices) {
  DualSpaceConfig scfg;
  scfg.mode = McdramMode::ImplicitCache;
  scfg.mcdram_bytes = KiB(256);
  DualSpace space(scfg);
  ThreadPool pool(2);
  const auto keys = make_scatter_keys(50000, 1u << 16, 0.0, 9);
  std::vector<std::uint64_t> table(1 << 16, 0);
  std::vector<std::uint64_t> expect(table.size(), 0);
  scatter_reference(keys, std::span<std::uint64_t>(expect));
  ScatterConfig cfg;
  cfg.strategy = ScatterStrategy::Partitioned;
  const auto stats =
      run_scatter(space, pool, keys, std::span<std::uint64_t>(table), cfg);
  EXPECT_EQ(table, expect);
  EXPECT_GE(stats.buckets_used, 4u);
}

TEST(Scatter, EmptyKeysLeaveTableUntouched) {
  DualSpace space = flat_space();
  ThreadPool pool(2);
  std::vector<std::uint64_t> table(100, 5);
  ScatterConfig cfg;
  run_scatter(space, pool, {}, std::span<std::uint64_t>(table), cfg);
  EXPECT_TRUE(std::all_of(table.begin(), table.end(),
                          [](std::uint64_t v) { return v == 5; }));
}

TEST(Scatter, EmptyTableRejected) {
  DualSpace space = flat_space();
  ThreadPool pool(1);
  const auto keys = make_scatter_keys(10, 10, 0.0, 1);
  EXPECT_THROW(run_scatter(space, pool, keys, {}, ScatterConfig{}),
               InvalidArgumentError);
  EXPECT_THROW(scatter_reference(keys, {}), InvalidArgumentError);
}

TEST(MakeScatterKeys, UniformAndSkewedShapes) {
  const auto uniform = make_scatter_keys(100000, 1000, 0.0, 4);
  const auto skewed = make_scatter_keys(100000, 1000, 2.0, 4);
  auto count_low = [](const std::vector<std::uint64_t>& v) {
    return std::count_if(v.begin(), v.end(),
                         [](std::uint64_t k) { return k < 100; });
  };
  // Uniform: ~10% below 100.  Skewed: the hot set dominates.
  EXPECT_NEAR(static_cast<double>(count_low(uniform)), 10000.0, 1500.0);
  EXPECT_GT(count_low(skewed), 40000);
  for (std::uint64_t k : skewed) ASSERT_LT(k, 1000u);
}

TEST(MakeScatterKeys, Deterministic) {
  EXPECT_EQ(make_scatter_keys(1000, 50, 1.0, 11),
            make_scatter_keys(1000, 50, 1.0, 11));
  EXPECT_NE(make_scatter_keys(1000, 50, 1.0, 11),
            make_scatter_keys(1000, 50, 1.0, 12));
}

}  // namespace
}  // namespace mlm::core

#include "mlm/core/chunk_pipeline.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mlm/support/error.h"
#include "mlm/support/trace.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

HierarchyConfig three_tier(McdramMode mode) {
  HierarchyConfig c;
  c.mode = mode;
  c.tiers = {
      TierConfig{"nvm", MemKind::NVM, 0, 0.0, 0.0, 0.0},
      TierConfig{"ddr", MemKind::DDR, MiB(2), 0.0, 0.0, 0.0},
      TierConfig{"mcdram", MemKind::MCDRAM, KiB(512), 0.0, 0.0, 0.0},
  };
  return c;
}

TieredPipelineConfig small_tiered_config() {
  TieredPipelineConfig cfg;
  cfg.levels.resize(2);
  cfg.levels[0].chunk_bytes = KiB(512);  // NVM -> DDR outer chunks
  cfg.levels[0].pools = PoolSizes{1, 1, 1};
  cfg.levels[1].chunk_bytes = KiB(128);  // DDR -> MCDRAM inner chunks
  cfg.levels[1].pools = PoolSizes{1, 1, 2};
  return cfg;
}

TEST(TieredPipeline, DoubleChunkingTouchesEveryElementOnce) {
  MemoryHierarchy hier(three_tier(McdramMode::Flat));
  std::vector<std::int64_t> data(MiB(4) / sizeof(std::int64_t));
  std::iota(data.begin(), data.end(), 0);

  const TieredPipelineStats stats =
      run_tiered_pipeline_typed<std::int64_t>(
          hier, std::span<std::int64_t>(data), small_tiered_config(),
          [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
            for (auto& v : chunk) v += 1;
          });

  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1) << i;
  }
  ASSERT_EQ(stats.levels.size(), 2u);
  // Outer level: 4 MiB in 512 KiB chunks = 8 chunks, each copied in and
  // out once.  Inner level: every outer chunk re-chunked 512/128 = 4
  // ways.
  EXPECT_EQ(stats.levels[0].chunks, 8u);
  EXPECT_EQ(stats.levels[1].chunks, 8u * 4u);
  EXPECT_EQ(stats.bytes_copied_in(0), MiB(4));
  EXPECT_EQ(stats.bytes_copied_out(0), MiB(4));
  // Every outer byte also crosses the DDR -> MCDRAM boundary.
  EXPECT_EQ(stats.bytes_copied_in(1), MiB(4));
  EXPECT_EQ(stats.bytes_copied_out(1), MiB(4));
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST(TieredPipeline, PerStageSecondsAndBandwidthReported) {
  MemoryHierarchy hier(three_tier(McdramMode::Flat));
  std::vector<std::int64_t> data(MiB(2) / sizeof(std::int64_t));

  const TieredPipelineStats stats =
      run_tiered_pipeline_typed<std::int64_t>(
          hier, std::span<std::int64_t>(data), small_tiered_config(),
          [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
            for (auto& v : chunk) v = 7;
          });

  for (const PipelineStats& level : stats.levels) {
    EXPECT_GT(level.copy_in_seconds, 0.0);
    EXPECT_GT(level.compute_seconds, 0.0);
    EXPECT_GT(level.copy_out_seconds, 0.0);
    EXPECT_GT(level.effective_in_bw(), 0.0);
    EXPECT_GT(level.effective_out_bw(), 0.0);
  }
}

TEST(TieredPipeline, ImplicitModeDegeneratesInnerLevelToInPlace) {
  MemoryHierarchy hier(three_tier(McdramMode::ImplicitCache));
  std::vector<std::int64_t> data(MiB(4) / sizeof(std::int64_t));
  std::iota(data.begin(), data.end(), 0);

  const TieredPipelineStats stats =
      run_tiered_pipeline_typed<std::int64_t>(
          hier, std::span<std::int64_t>(data), small_tiered_config(),
          [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
            for (auto& v : chunk) v += 1;
          });

  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1) << i;
  }
  // NVM -> DDR still runs explicit copies; DDR -> "MCDRAM" does not.
  EXPECT_EQ(stats.bytes_copied_in(0), MiB(4));
  EXPECT_EQ(stats.bytes_copied_in(1), 0u);
  EXPECT_EQ(stats.bytes_copied_out(1), 0u);
  EXPECT_GT(stats.levels[1].compute_seconds, 0.0);
}

TEST(TieredPipeline, TraceProducesDistinctTracksPerLevel) {
  MemoryHierarchy hier(three_tier(McdramMode::Flat));
  std::vector<std::int64_t> data(MiB(2) / sizeof(std::int64_t));

  TraceWriter trace;
  TieredPipelineConfig cfg = small_tiered_config();
  cfg.trace = &trace;
  run_tiered_pipeline_typed<std::int64_t>(
      hier, std::span<std::int64_t>(data), cfg,
      [](std::span<std::int64_t>, Executor&, std::size_t) {});

  EXPECT_GT(trace.size(), 0u);
  // Level 0 stages on tracks 0..2, level 1 on tracks 3..5, each named
  // after its tier pair.
  EXPECT_EQ(trace.track_name(0), "L0 nvm->ddr copy-in");
  EXPECT_EQ(trace.track_name(1), "L0 ddr compute");
  EXPECT_EQ(trace.track_name(2), "L0 nvm->ddr copy-out");
  EXPECT_EQ(trace.track_name(3), "L1 ddr->mcdram copy-in");
  EXPECT_EQ(trace.track_name(4), "L1 mcdram compute");
  EXPECT_EQ(trace.track_name(5), "L1 ddr->mcdram copy-out");
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("L1 copy-in"), std::string::npos);
}

TEST(TieredPipeline, TypedWrapperRejectsSubElementChunks) {
  MemoryHierarchy hier(three_tier(McdramMode::Flat));
  std::vector<std::int64_t> data(1024);
  TieredPipelineConfig cfg = small_tiered_config();
  cfg.levels[1].chunk_bytes = sizeof(std::int64_t) - 1;
  EXPECT_THROW(run_tiered_pipeline_typed<std::int64_t>(
                   hier, std::span<std::int64_t>(data), cfg,
                   [](std::span<std::int64_t>, Executor&, std::size_t) {}),
               InvalidArgumentError);
}

TEST(TieredPipeline, PoolSizingGivesInnerLevelTheComputeThreads) {
  const std::vector<PoolSizes> sizes = make_tiered_pool_sizes(16, 2, 2);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0].copy_in, 2u);
  EXPECT_EQ(sizes[0].copy_out, 2u);
  EXPECT_EQ(sizes[0].compute, 1u);  // outer compute only orchestrates
  EXPECT_EQ(sizes[1].copy_in, 2u);
  EXPECT_EQ(sizes[1].copy_out, 2u);
  EXPECT_EQ(sizes[1].compute, 7u);  // 16 - 2*(2+2) - 1
  EXPECT_EQ(sizes[0].total() + sizes[1].total(), 16u);

  EXPECT_THROW(make_tiered_pool_sizes(5, 2, 1), InvalidArgumentError);
  EXPECT_THROW(make_tiered_pool_sizes(16, 0, 1), InvalidArgumentError);
}

TEST(TieredPipeline, RequiresAtLeastTwoTiers) {
  HierarchyConfig single;
  single.tiers = {TierConfig{"ddr", MemKind::DDR, 0, 0.0, 0.0, 0.0}};
  MemoryHierarchy hier(single);
  std::vector<std::byte> data(1024);
  EXPECT_THROW(
      run_tiered_pipeline(hier, std::span<std::byte>(data), {},
                          [](std::span<std::byte>, Executor&,
                             std::size_t) {}),
      InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::core

// Graceful-degradation tests that do NOT rely on injection for the
// failure itself: real near-tier capacity pressure drives the recovery
// ladder (retry -> chunk halving -> tier fallback), and the structured
// error chain is inspected when the ladder is exhausted.
#include "mlm/core/degrade.h"

#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "mlm/core/chunk_pipeline.h"
#include "mlm/fault/fault.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

DualSpace tiny_mcdram_space(std::uint64_t mcdram_bytes) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = mcdram_bytes;
  return DualSpace(cfg);
}

std::vector<std::int64_t> iota_data(std::size_t n) {
  std::vector<std::int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);
  return data;
}

void check_incremented(const std::vector<std::int64_t>& data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1) << "i=" << i;
  }
}

PipelineConfig triple_config(std::size_t chunk_bytes) {
  PipelineConfig cfg;
  cfg.chunk_bytes = chunk_bytes;
  cfg.pools = PoolSizes{1, 1, 1};
  cfg.buffering = Buffering::Triple;
  return cfg;
}

auto increment = [](std::span<std::int64_t> chunk, Executor&,
                    std::size_t) {
  for (auto& x : chunk) x += 1;
};

// 3 x 64 KiB triple buffers cannot fit in 128 KiB of MCDRAM; with
// halving allowed the pipeline lands on 32 KiB chunks and completes.
TEST(DegradeChunkHalving, RealCapacityPressureHalvesUntilFit) {
  DualSpace space = tiny_mcdram_space(KiB(128));
  auto data = iota_data(4 * KiB(64) / sizeof(std::int64_t));
  PipelineConfig cfg = triple_config(KiB(64));
  cfg.degrade.allow_chunk_halving = true;
  cfg.degrade.min_chunk_bytes = 4096;

  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg, increment);

  EXPECT_EQ(stats.chunk_halvings, 1u);
  EXPECT_EQ(stats.tier_fallbacks, 0u);
  EXPECT_EQ(stats.chunks, 8u);  // 256 KiB of data in 32 KiB chunks
  ASSERT_EQ(stats.degradations.size(), 1u);
  EXPECT_EQ(stats.degradations[0].action, "chunk_halved");
  EXPECT_EQ(stats.degradations[0].site,
            fault::sites::kPipelineBufferAlloc);
  check_incremented(data);
}

// 8 KiB of MCDRAM cannot hold three 4 KiB buffers even at the halving
// floor; with tier fallback allowed the run completes in place in DDR.
TEST(DegradeTierFallback, ExhaustedLadderRunsInPlaceInFarTier) {
  DualSpace space = tiny_mcdram_space(KiB(8));
  auto data = iota_data(2 * KiB(64) / sizeof(std::int64_t));
  PipelineConfig cfg = triple_config(KiB(64));
  cfg.degrade.allow_chunk_halving = true;
  cfg.degrade.min_chunk_bytes = 4096;
  cfg.degrade.allow_tier_fallback = true;

  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg, increment);

  EXPECT_GE(stats.chunk_halvings, 1u);
  EXPECT_EQ(stats.tier_fallbacks, 1u);
  EXPECT_EQ(stats.bytes_copied_in, 0u);   // no explicit staging
  EXPECT_EQ(stats.bytes_copied_out, 0u);
  check_incremented(data);
}

// With the ladder disabled the same pressure is a structured error:
// innermost frame names the allocation, outermost names the pipeline.
TEST(DegradeDisabled, CapacityPressureIsAStructuredError) {
  DualSpace space = tiny_mcdram_space(KiB(128));
  auto data = iota_data(4 * KiB(64) / sizeof(std::int64_t));
  PipelineConfig cfg = triple_config(KiB(64));  // degrade defaults off
  EXPECT_FALSE(cfg.degrade.any_enabled());

  try {
    run_chunk_pipeline_typed<std::int64_t>(
        space, std::span<std::int64_t>(data), cfg, increment);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    const auto& chain = e.chain();
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0].op, "buffer_alloc");
    EXPECT_EQ(chain[0].tier, space.mcdram().name());
    EXPECT_EQ(chain[0].thread, "orchestrator");
    EXPECT_NE(chain[0].detail.find("chunk_bytes=65536"),
              std::string::npos);
    EXPECT_EQ(chain[1].op, "run_chunk_pipeline");
    // what() renders the base message plus one line per frame.
    const std::string what = e.what();
    EXPECT_NE(what.find("in buffer_alloc"), std::string::npos);
    EXPECT_NE(what.find("in run_chunk_pipeline"), std::string::npos);
  }
}

// Retry bookkeeping: a single injected transient exhaustion costs
// exactly one retry and is recorded as a degradation event.
TEST(DegradeRetry, TransientExhaustionCostsOneRecordedRetry) {
  DualSpace space = tiny_mcdram_space(MiB(4));
  auto data = iota_data(4 * KiB(64) / sizeof(std::int64_t));
  PipelineConfig cfg = triple_config(KiB(64));
  cfg.degrade.max_retries = 2;

  fault::FaultPlan plan;
  plan.arm(fault::sites::kPipelineBufferAlloc,
           fault::FaultTrigger::nth_call(0));
  fault::ScopedFaultInjector inject(plan);

  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg, increment);

  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.chunk_halvings, 0u);
  ASSERT_EQ(stats.degradations.size(), 1u);
  EXPECT_EQ(stats.degradations[0].action, "retry");
  EXPECT_EQ(stats.degradations[0].attempt, 1u);
  check_incremented(data);
}

// Backoff path smoke test: real (microsecond) backoff between retries
// on real thread pools — must terminate promptly and still recover.
TEST(DegradeRetry, BackoffBetweenRetriesRecovers) {
  DualSpace space = tiny_mcdram_space(MiB(4));
  auto data = iota_data(4 * KiB(64) / sizeof(std::int64_t));
  PipelineConfig cfg = triple_config(KiB(64));
  cfg.degrade.max_retries = 3;
  cfg.degrade.backoff_us = 10;

  fault::FaultPlan plan;
  plan.arm(fault::sites::kPipelineCopyIn,
           fault::FaultTrigger::after_n(0, 3));
  fault::ScopedFaultInjector inject(plan);

  const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg, increment);

  EXPECT_EQ(stats.retries, 3u);
  check_incremented(data);
}

// Stage retries exhausted: the error says how many attempts were made
// and the stats that *were* accumulated are lost with the throw, but
// the degradation trail travels in the error chain detail.
TEST(DegradeRetry, ExhaustedStageRetriesThrowWithAttemptCount) {
  DualSpace space = tiny_mcdram_space(MiB(4));
  auto data = iota_data(4 * KiB(64) / sizeof(std::int64_t));
  PipelineConfig cfg = triple_config(KiB(64));
  cfg.degrade.max_retries = 2;

  fault::FaultPlan plan;
  plan.arm(fault::sites::kPipelineCopyIn, fault::FaultTrigger::always());
  fault::ScopedFaultInjector inject(plan);

  try {
    run_chunk_pipeline_typed<std::int64_t>(
        space, std::span<std::int64_t>(data), cfg, increment);
    FAIL() << "expected InjectedFaultError";
  } catch (const fault::InjectedFaultError& e) {
    const auto& chain = e.chain();
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front().op, "copy_in");
    EXPECT_NE(chain.front().detail.find("retries exhausted after 2"),
              std::string::npos);
  }
}

// Regression: the doubled backoff must saturate at backoff_cap_us, not
// shift off the end of std::size_t.  Before the cap, a retry chain in
// the tens of attempts wrapped the delay back to ~0 and turned backoff
// into a busy spin exactly when the system was most overloaded.
TEST(DegradePolicy, BackoffDelaySaturatesAtCapForLongRetryChains) {
  DegradePolicy p;
  p.backoff_us = 100;
  p.backoff_cap_us = 1u << 20;

  EXPECT_EQ(p.delay_us(0), 0u);    // attempt 0: no wait
  EXPECT_EQ(p.delay_us(1), 100u);  // base
  EXPECT_EQ(p.delay_us(2), 200u);  // doubled
  EXPECT_EQ(p.delay_us(5), 1600u);

  // Past the doubling range the delay pins to the cap — including
  // attempt counts far beyond the word size, which used to wrap.
  const std::size_t cap = p.backoff_cap_us;
  EXPECT_EQ(p.delay_us(20), cap);
  EXPECT_EQ(p.delay_us(64), cap);
  EXPECT_EQ(p.delay_us(65), cap);
  EXPECT_EQ(p.delay_us(100000), cap);
  for (std::size_t attempt = 1; attempt < 80; ++attempt) {
    EXPECT_LE(p.delay_us(attempt), cap) << "attempt " << attempt;
    EXPECT_GE(p.delay_us(attempt + 1), p.delay_us(attempt))
        << "attempt " << attempt;  // monotone, never wraps
  }

  // Backoff disabled stays disabled regardless of attempt count.
  DegradePolicy off;
  EXPECT_EQ(off.delay_us(64), 0u);
}

// DegradePolicy::any_enabled drives the zero-cost default path.
TEST(DegradePolicy, AnyEnabledReflectsConfiguredRungs) {
  DegradePolicy p;
  EXPECT_FALSE(p.any_enabled());
  p.max_retries = 1;
  EXPECT_TRUE(p.any_enabled());
  p = DegradePolicy{};
  p.allow_chunk_halving = true;
  EXPECT_TRUE(p.any_enabled());
  p = DegradePolicy{};
  p.allow_tier_fallback = true;
  EXPECT_TRUE(p.any_enabled());
}

}  // namespace
}  // namespace mlm::core

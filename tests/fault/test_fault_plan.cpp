// Unit tests for the fault-injection primitives: trigger semantics,
// plan installation/nesting, the site registry, and thread safety.
#include "mlm/fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace mlm::fault {
namespace {

TEST(FaultSite, NeverFiresWithoutInstalledPlan) {
  FaultSite site("test.noplan");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(site.should_fire());
  EXPECT_NO_THROW(site.maybe_throw());
  EXPECT_EQ(installed_plan(), nullptr);
}

TEST(FaultSite, UnarmedSiteNeverFiresUnderPlan) {
  FaultPlan plan;
  plan.arm("test.other", FaultTrigger::always());
  ScopedFaultInjector inject(plan);
  FaultSite site("test.unarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(site.should_fire());
}

TEST(FaultTrigger, NthCallFiresExactlyOnceAtIndex) {
  FaultPlan plan;
  plan.arm("test.nth", FaultTrigger::nth_call(3));
  ScopedFaultInjector inject(plan);
  FaultSite site("test.nth");
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(site.should_fire());
  const std::vector<bool> expect{false, false, false, true, false,
                                 false, false, false, false, false};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(plan.stats("test.nth").hits, 10u);
  EXPECT_EQ(plan.stats("test.nth").fires, 1u);
}

TEST(FaultTrigger, AfterNFiresFromIndexUntilMaxFires) {
  FaultPlan plan;
  plan.arm("test.aftern", FaultTrigger::after_n(2, 3));
  ScopedFaultInjector inject(plan);
  FaultSite site("test.aftern");
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(site.should_fire());
  // Fires on calls 2,3,4 then the transient fault "clears".
  const std::vector<bool> expect{false, false, true, true,
                                 true,  false, false, false};
  EXPECT_EQ(fired, expect);
}

TEST(FaultTrigger, AlwaysFiresEveryCall) {
  FaultPlan plan;
  plan.arm("test.always", FaultTrigger::always());
  ScopedFaultInjector inject(plan);
  FaultSite site("test.always");
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(site.should_fire());
  EXPECT_EQ(plan.total_fires(), 20u);
}

TEST(FaultTrigger, ProbabilityZeroNeverOneAlways) {
  FaultPlan plan;
  plan.arm("test.p0", FaultTrigger::probability(0.0, 42));
  plan.arm("test.p1", FaultTrigger::probability(1.0, 42));
  ScopedFaultInjector inject(plan);
  FaultSite p0("test.p0"), p1("test.p1");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(p0.should_fire());
    EXPECT_TRUE(p1.should_fire());
  }
}

TEST(FaultTrigger, ProbabilityStreamIsSeedDeterministic) {
  auto pattern = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.arm("test.prob", FaultTrigger::probability(0.3, seed));
    ScopedFaultInjector inject(plan);
    FaultSite site("test.prob");
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(site.should_fire());
    return fired;
  };
  EXPECT_EQ(pattern(7), pattern(7));
  EXPECT_NE(pattern(7), pattern(8));
  // ~30% of 200 draws should fire; allow a generous band.
  const auto p = pattern(7);
  const auto fires = std::count(p.begin(), p.end(), true);
  EXPECT_GT(fires, 20);
  EXPECT_LT(fires, 120);
}

TEST(FaultTrigger, ProbabilityRejectsOutOfRange) {
  EXPECT_THROW(FaultTrigger::probability(-0.1, 0), InvalidArgumentError);
  EXPECT_THROW(FaultTrigger::probability(1.1, 0), InvalidArgumentError);
}

TEST(FaultPlan, RearmResetsCounters) {
  FaultPlan plan;
  plan.arm("test.rearm", FaultTrigger::always());
  ScopedFaultInjector inject(plan);
  FaultSite site("test.rearm");
  EXPECT_TRUE(site.should_fire());
  plan.arm("test.rearm", FaultTrigger::nth_call(0));
  EXPECT_EQ(plan.stats("test.rearm").hits, 0u);
  EXPECT_TRUE(site.should_fire());
  EXPECT_FALSE(site.should_fire());
}

TEST(FaultPlan, DisarmStopsFiringKeepsCounters) {
  FaultPlan plan;
  plan.arm("test.disarm", FaultTrigger::always());
  ScopedFaultInjector inject(plan);
  FaultSite site("test.disarm");
  EXPECT_TRUE(site.should_fire());
  plan.disarm("test.disarm");
  EXPECT_FALSE(site.should_fire());
  EXPECT_EQ(plan.stats("test.disarm").hits, 1u);
  EXPECT_EQ(plan.stats("test.disarm").fires, 1u);
}

TEST(ScopedFaultInjector, NestsAndRestoresPreviousPlan) {
  FaultPlan outer, inner;
  outer.arm("test.nest", FaultTrigger::always());
  FaultSite site("test.nest");
  EXPECT_FALSE(site.should_fire());
  {
    ScopedFaultInjector i1(outer);
    EXPECT_EQ(installed_plan(), &outer);
    EXPECT_TRUE(site.should_fire());
    {
      ScopedFaultInjector i2(inner);  // inner plan: site unarmed
      EXPECT_EQ(installed_plan(), &inner);
      EXPECT_FALSE(site.should_fire());
    }
    EXPECT_EQ(installed_plan(), &outer);
    EXPECT_TRUE(site.should_fire());
  }
  EXPECT_EQ(installed_plan(), nullptr);
  EXPECT_FALSE(site.should_fire());
}

TEST(FaultSite, MaybeThrowRaisesInjectedFaultErrorNamingSite) {
  FaultPlan plan;
  plan.arm("test.throw", FaultTrigger::always());
  ScopedFaultInjector inject(plan);
  FaultSite site("test.throw");
  try {
    site.maybe_throw();
    FAIL() << "expected InjectedFaultError";
  } catch (const InjectedFaultError& e) {
    EXPECT_NE(std::string(e.what()).find("test.throw"), std::string::npos);
  }
}

TEST(FaultRegistry, WellKnownCatalogIsPreRegistered) {
  const std::vector<std::string> sites = registered_sites();
  auto has = [&](const char* name) {
    return std::find(sites.begin(), sites.end(), name) != sites.end();
  };
  // The acceptance floor is >= 8 registered sites; the catalog has 13.
  EXPECT_GE(sites.size(), 13u);
  EXPECT_TRUE(has(sites::kMemorySpaceAllocate));
  EXPECT_TRUE(has(sites::kHbwMalloc));
  EXPECT_TRUE(has(sites::kHbwPosixMemalign));
  EXPECT_TRUE(has(sites::kTaskRun));
  EXPECT_TRUE(has(sites::kPipelineBufferAlloc));
  EXPECT_TRUE(has(sites::kPipelineCopyIn));
  EXPECT_TRUE(has(sites::kPipelineCompute));
  EXPECT_TRUE(has(sites::kPipelineCopyOut));
  EXPECT_TRUE(has(sites::kPipelineSkipCopyOutWait));
  EXPECT_TRUE(has(sites::kExternalSortStageIn));
  EXPECT_TRUE(has(sites::kExternalSortInner));
  EXPECT_TRUE(has(sites::kExternalSortStageOut));
  EXPECT_TRUE(has(sites::kExternalSortMerge));
  EXPECT_TRUE(has(sites::kKvMigrateStep));
  // Sorted and duplicate-free.
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()), sites.end());
}

// Concurrent queries against one armed site must be safe (run under
// tsan via the race label) and must honor max_fires exactly.
TEST(FaultPlan, ConcurrentQueriesRespectMaxFires) {
  constexpr std::uint64_t kMaxFires = 64;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  FaultPlan plan;
  plan.arm("test.mt", FaultTrigger::after_n(0, kMaxFires));
  ScopedFaultInjector inject(plan);
  std::atomic<std::uint64_t> observed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&observed] {
      FaultSite site("test.mt");
      for (int i = 0; i < kPerThread; ++i) {
        if (site.should_fire()) observed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(observed.load(), kMaxFires);
  EXPECT_EQ(plan.stats("test.mt").fires, kMaxFires);
  EXPECT_EQ(plan.stats("test.mt").hits,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace mlm::fault

// The acceptance sweep for deterministic fault injection: every
// registered fault site is exercised over many seeded schedules, and
// each run must either fully recover (digest and byte-count invariants
// hold) or surface a clean structured error naming the failing
// stage/chunk/tier.  Determinism comes from DeterministicScheduler
// (pipeline runs) and from the seeded triggers themselves.
#include "mlm/fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "mlm/core/chunk_pipeline.h"
#include "mlm/core/external_sort.h"
#include "mlm/core/pipeline_validator.h"
#include "mlm/memory/memkind_shim.h"
#include "mlm/memory/memory_space.h"
#include "mlm/memory/triple_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/support/proptest.h"
#include "mlm/support/rng.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

constexpr std::uint64_t kSeedsPerSite = 100;

DegradePolicy full_recovery_policy() {
  DegradePolicy p;
  p.max_retries = 3;
  p.allow_chunk_halving = true;
  p.min_chunk_bytes = 4096;
  p.allow_tier_fallback = true;
  return p;
}

// A seed-varied *transient* trigger: at most 3 fires, which the
// full-recovery policy (3 retries + halving + tier fallback) must
// always absorb at allocation/stage boundaries.
fault::FaultTrigger transient_trigger(std::uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return fault::FaultTrigger::nth_call(seed % 7);
    case 1:
      return fault::FaultTrigger::after_n(seed % 5, 1 + seed % 3);
    default:
      return fault::FaultTrigger::probability(0.2, seed, 3);
  }
}

// ---------------------------------------------------------------------
// Pipeline sweep: seven sites x kSeedsPerSite seeded schedules each.
// ---------------------------------------------------------------------

struct PipelineOutcome {
  bool recovered = false;
  bool invariant_error = false;  // PipelineInvariantError specifically
  std::uint64_t fires = 0;
  PipelineStats stats;
  std::string error_what;
  std::vector<ErrorFrame> chain;
};

PipelineOutcome run_pipeline_under_fault(const char* site,
                                         std::uint64_t seed,
                                         const fault::FaultTrigger& trigger,
                                         const DegradePolicy& policy) {
  constexpr std::size_t kChunkBytes = 64 * 1024;
  const std::size_t n = 5 * kChunkBytes / sizeof(std::int64_t);

  DualSpaceConfig space_cfg;
  space_cfg.mode = McdramMode::Flat;
  space_cfg.mcdram_bytes = MiB(4);
  DualSpace space(space_cfg);

  std::vector<std::int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);

  DeterministicScheduler sched(seed);
  PipelineValidator validator;
  PipelineConfig cfg;
  cfg.chunk_bytes = kChunkBytes;
  cfg.pools = PoolSizes{2, 2, 2};
  cfg.buffering = Buffering::Triple;
  cfg.scheduler = &sched;
  cfg.validator = &validator;
  cfg.degrade = policy;

  fault::FaultPlan plan;
  plan.arm(site, trigger);

  PipelineOutcome out;
  try {
    fault::ScopedFaultInjector inject(plan);
    out.stats = run_chunk_pipeline_typed<std::int64_t>(
        space, std::span<std::int64_t>(data), cfg,
        [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
          for (auto& x : chunk) x += 1;
        });
    out.recovered = true;
  } catch (const PipelineInvariantError& e) {
    out.invariant_error = true;
    out.error_what = e.what();
    out.chain = e.chain();
  } catch (const Error& e) {
    out.error_what = e.what();
    out.chain = e.chain();
  }
  out.fires = plan.total_fires();

  if (out.recovered) {
    // Digest invariant: the full transform happened exactly once.
    std::vector<std::int64_t> expected(n);
    std::iota(expected.begin(), expected.end(), 1);
    EXPECT_EQ(digest_of(std::span<const std::int64_t>(data)),
              digest_of(std::span<const std::int64_t>(expected)))
        << "site=" << site << " seed=" << seed;
    // Byte-count invariant: each element crossed the tier boundary once
    // per direction (explicit path) or never (in-place tier fallback).
    const std::uint64_t total = n * sizeof(std::int64_t);
    EXPECT_TRUE(out.stats.bytes_copied_in == total ||
                out.stats.bytes_copied_in == 0)
        << "site=" << site << " seed=" << seed
        << " bytes_in=" << out.stats.bytes_copied_in;
    EXPECT_EQ(out.stats.bytes_copied_out, out.stats.bytes_copied_in)
        << "site=" << site << " seed=" << seed;
    if (out.stats.bytes_copied_in == 0) {
      EXPECT_GE(out.stats.tier_fallbacks, 1u)
          << "site=" << site << " seed=" << seed;
    }
  } else {
    // Structured-error invariant: a non-empty annotation chain whose
    // outermost frame names the pipeline and whose frames carry a tier.
    EXPECT_FALSE(out.chain.empty())
        << "site=" << site << " seed=" << seed << ": " << out.error_what;
    if (!out.chain.empty()) {
      EXPECT_FALSE(out.chain.front().op.empty());
      EXPECT_EQ(out.chain.back().op, "run_chunk_pipeline");
      const bool has_tier = std::any_of(
          out.chain.begin(), out.chain.end(),
          [](const ErrorFrame& f) { return !f.tier.empty(); });
      EXPECT_TRUE(has_tier) << "site=" << site << " seed=" << seed;
      EXPECT_NE(out.error_what.find("\n  in "), std::string::npos)
          << "what() must render the frame chain: " << out.error_what;
    }
  }
  return out;
}

struct SiteCase {
  const char* site;
  /// Transient triggers at this site must never escape the recovery
  /// ladder (allocation/stage launch points are cleanly retryable).
  bool guaranteed_recovery;
  /// Failures surface as PipelineInvariantError (validator catch).
  bool invariant_error;
};

class PipelineFaultSweep : public ::testing::TestWithParam<SiteCase> {};

TEST_P(PipelineFaultSweep, RecoversOrFailsStructuredOverManySchedules) {
  const SiteCase c = GetParam();
  std::uint64_t recovered = 0, errored = 0, fired_and_recovered = 0;
  for (std::uint64_t seed = 0; seed < kSeedsPerSite; ++seed) {
    const PipelineOutcome out = run_pipeline_under_fault(
        c.site, seed, transient_trigger(seed), full_recovery_policy());
    if (out.recovered) {
      ++recovered;
      if (out.fires > 0) {
        ++fired_and_recovered;
        if (c.guaranteed_recovery) {
          // A fire that was absorbed must be visible in the stats.
          EXPECT_GE(out.stats.retries + out.stats.chunk_halvings +
                        out.stats.tier_fallbacks,
                    1u)
              << "site=" << c.site << " seed=" << seed;
          EXPECT_FALSE(out.stats.degradations.empty())
              << "site=" << c.site << " seed=" << seed;
        }
      }
    } else {
      ++errored;
      EXPECT_EQ(out.invariant_error, c.invariant_error)
          << "site=" << c.site << " seed=" << seed << ": "
          << out.error_what;
    }
  }
  EXPECT_EQ(recovered + errored, kSeedsPerSite);
  if (c.guaranteed_recovery) {
    EXPECT_EQ(errored, 0u) << "site=" << c.site;
    EXPECT_GT(fired_and_recovered, 0u)
        << "site=" << c.site << ": sweep never actually injected";
  } else {
    // Non-retryable sites must see both branches across the sweep.
    EXPECT_GT(errored, 0u) << "site=" << c.site;
    EXPECT_GT(recovered, 0u) << "site=" << c.site;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, PipelineFaultSweep,
    ::testing::Values(
        SiteCase{fault::sites::kMemorySpaceAllocate, true, false},
        SiteCase{fault::sites::kPipelineBufferAlloc, true, false},
        SiteCase{fault::sites::kPipelineCopyIn, true, false},
        SiteCase{fault::sites::kPipelineCompute, true, false},
        SiteCase{fault::sites::kPipelineCopyOut, true, false},
        // A task fault strikes mid-execution: not retryable, surfaces
        // as a structured error.
        SiteCase{fault::sites::kTaskRun, false, false},
        // The planted ordering bug is never recovered from; the
        // validator must convict it.
        SiteCase{fault::sites::kPipelineSkipCopyOutWait, false, true}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      std::string name = info.param.site;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// Permanent (always-firing) faults at retryable sites: the ladder's
// final rung decides the outcome.
TEST(PipelineFaultSweep, PermanentExhaustionFallsBackToFarTier) {
  for (const char* site : {fault::sites::kPipelineBufferAlloc,
                           fault::sites::kMemorySpaceAllocate}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const PipelineOutcome out = run_pipeline_under_fault(
          site, seed, fault::FaultTrigger::always(),
          full_recovery_policy());
      ASSERT_TRUE(out.recovered)
          << "site=" << site << " seed=" << seed << ": "
          << out.error_what;
      EXPECT_GE(out.stats.tier_fallbacks, 1u);
      EXPECT_EQ(out.stats.bytes_copied_in, 0u);  // ran in place
    }
  }
}

TEST(PipelineFaultSweep, PermanentExhaustionWithoutFallbackIsStructured) {
  DegradePolicy policy = full_recovery_policy();
  policy.allow_tier_fallback = false;
  const PipelineOutcome out =
      run_pipeline_under_fault(fault::sites::kPipelineBufferAlloc, 0,
                               fault::FaultTrigger::always(), policy);
  ASSERT_FALSE(out.recovered);
  ASSERT_FALSE(out.chain.empty());
  EXPECT_EQ(out.chain.front().op, "buffer_alloc");
  EXPECT_FALSE(out.chain.front().tier.empty());
  EXPECT_NE(out.chain.front().detail.find("chunk_bytes="),
            std::string::npos);
  EXPECT_EQ(out.chain.back().op, "run_chunk_pipeline");
}

TEST(PipelineFaultSweep, PermanentStageFaultNamesStageChunkAndTier) {
  struct Expect {
    const char* site;
    const char* op;
  };
  for (const Expect e : {Expect{fault::sites::kPipelineCopyIn, "copy_in"},
                         Expect{fault::sites::kPipelineCompute, "compute"},
                         Expect{fault::sites::kPipelineCopyOut,
                                "copy_out"}}) {
    const PipelineOutcome out = run_pipeline_under_fault(
        e.site, 0, fault::FaultTrigger::always(), full_recovery_policy());
    ASSERT_FALSE(out.recovered) << "site=" << e.site;
    ASSERT_FALSE(out.chain.empty()) << "site=" << e.site;
    EXPECT_EQ(out.chain.front().op, e.op);
    EXPECT_GE(out.chain.front().chunk, 0);  // a concrete chunk index
    EXPECT_FALSE(out.chain.front().tier.empty());
    EXPECT_NE(out.error_what.find(e.site), std::string::npos)
        << out.error_what;
  }
}

// ---------------------------------------------------------------------
// Tiered (double-chunking) driver under injected stage faults.
// ---------------------------------------------------------------------

TEST(TieredFaultSweep, TransientStageFaultsRecoverAcrossLevels) {
  const std::size_t n = MiB(1) / sizeof(std::int64_t);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    HierarchyConfig hc;
    hc.mode = McdramMode::Flat;
    hc.tiers = {
        TierConfig{"nvm", MemKind::NVM, 0, 0.0, 0.0, 0.0},
        TierConfig{"ddr", MemKind::DDR, MiB(2), 0.0, 0.0, 0.0},
        TierConfig{"mcdram", MemKind::MCDRAM, KiB(512), 0.0, 0.0, 0.0},
    };
    MemoryHierarchy hier(hc);
    std::vector<std::int64_t> data(n);
    std::iota(data.begin(), data.end(), 0);

    DeterministicScheduler sched(seed);
    TieredPipelineConfig cfg;
    cfg.scheduler = &sched;
    cfg.levels.resize(2);
    cfg.levels[0].chunk_bytes = KiB(256);
    cfg.levels[0].pools = PoolSizes{1, 1, 1};
    cfg.levels[0].degrade = full_recovery_policy();
    cfg.levels[1].chunk_bytes = KiB(128);
    cfg.levels[1].pools = PoolSizes{1, 1, 2};
    cfg.levels[1].degrade = full_recovery_policy();

    fault::FaultPlan plan;
    plan.arm(fault::sites::kPipelineCopyIn, transient_trigger(seed));
    fault::ScopedFaultInjector inject(plan);

    const TieredPipelineStats stats =
        run_tiered_pipeline_typed<std::int64_t>(
            hier, std::span<std::int64_t>(data), cfg,
            [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
              for (auto& x : chunk) x += 1;
            });

    ASSERT_EQ(stats.levels.size(), 2u);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1)
          << "seed=" << seed << " i=" << i;
    }
  }
}

TEST(TieredFaultSweep, PermanentStageFaultNamesTieredLevel) {
  const std::size_t n = MiB(1) / sizeof(std::int64_t);
  HierarchyConfig hc;
  hc.mode = McdramMode::Flat;
  hc.tiers = {
      TierConfig{"nvm", MemKind::NVM, 0, 0.0, 0.0, 0.0},
      TierConfig{"ddr", MemKind::DDR, MiB(2), 0.0, 0.0, 0.0},
      TierConfig{"mcdram", MemKind::MCDRAM, KiB(512), 0.0, 0.0, 0.0},
  };
  MemoryHierarchy hier(hc);
  std::vector<std::int64_t> data(n, 1);

  DeterministicScheduler sched(0);
  TieredPipelineConfig cfg;
  cfg.scheduler = &sched;
  cfg.levels.resize(2);
  cfg.levels[0].chunk_bytes = KiB(256);
  cfg.levels[0].pools = PoolSizes{1, 1, 1};
  cfg.levels[1].chunk_bytes = KiB(128);
  cfg.levels[1].pools = PoolSizes{1, 1, 2};

  // Hit 0 of the buffer-alloc site is the outer (NVM->DDR) ladder;
  // firing from hit 1 on makes the *inner* (DDR->MCDRAM) pipeline the
  // one that fails, so the error must climb through the tiered driver.
  fault::FaultPlan plan;
  plan.arm(fault::sites::kPipelineBufferAlloc,
           fault::FaultTrigger::after_n(1));
  fault::ScopedFaultInjector inject(plan);
  try {
    run_tiered_pipeline_typed<std::int64_t>(
        hier, std::span<std::int64_t>(data), cfg,
        [](std::span<std::int64_t>, Executor&, std::size_t) {});
    FAIL() << "expected the injected inner-level fault to propagate";
  } catch (const Error& e) {
    const auto& chain = e.chain();
    ASSERT_FALSE(chain.empty());
    const bool names_level = std::any_of(
        chain.begin(), chain.end(), [](const ErrorFrame& f) {
          return f.op.rfind("tiered_level_", 0) == 0;
        });
    EXPECT_TRUE(names_level) << e.what();
  }
}

// ---------------------------------------------------------------------
// memkind-shim sweep: injected HBW exhaustion under both policies.
// ---------------------------------------------------------------------

TEST(MemkindFaultSweep, InjectedExhaustionHonorsPolicyOverManySeeds) {
  for (std::uint64_t seed = 0; seed < kSeedsPerSite; ++seed) {
    MemorySpace space("hbw", MemKind::MCDRAM, MiB(1));
    mlm_hbw_set_space(&space);

    fault::FaultPlan plan;
    plan.arm(fault::sites::kHbwMalloc,
             fault::FaultTrigger::probability(0.5, seed));
    plan.arm(fault::sites::kHbwPosixMemalign,
             fault::FaultTrigger::probability(0.5, seed + 1));
    fault::ScopedFaultInjector inject(plan);

    // BIND: a fire is a hard ENOMEM, like hbw_malloc on exhausted HBW.
    mlm_hbw_set_policy(MLM_HBW_POLICY_BIND);
    std::vector<void*> live;
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t before =
          plan.stats(fault::sites::kHbwMalloc).fires;
      void* p = mlm_hbw_malloc(1024);
      const bool fired =
          plan.stats(fault::sites::kHbwMalloc).fires > before;
      if (fired) {
        EXPECT_EQ(p, nullptr) << "seed=" << seed << " i=" << i;
      } else {
        ASSERT_NE(p, nullptr) << "seed=" << seed << " i=" << i;
        EXPECT_EQ(mlm_hbw_verify(p), 1);
        live.push_back(p);
      }

      void* q = nullptr;
      const std::uint64_t before_ma =
          plan.stats(fault::sites::kHbwPosixMemalign).fires;
      const int rc = mlm_hbw_posix_memalign(&q, 64, 1024);
      const bool fired_ma =
          plan.stats(fault::sites::kHbwPosixMemalign).fires > before_ma;
      if (fired_ma) {
        EXPECT_EQ(rc, ENOMEM) << "seed=" << seed << " i=" << i;
      } else {
        ASSERT_EQ(rc, 0);
        EXPECT_EQ(mlm_hbw_verify(q), 1);
        live.push_back(q);
      }
    }

    // PREFERRED: a fire silently falls back to the heap (verify == 0),
    // exactly memkind's behaviour.
    mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED);
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t before =
          plan.stats(fault::sites::kHbwMalloc).fires;
      void* p = mlm_hbw_malloc(1024);
      const bool fired =
          plan.stats(fault::sites::kHbwMalloc).fires > before;
      ASSERT_NE(p, nullptr) << "seed=" << seed << " i=" << i;
      EXPECT_EQ(mlm_hbw_verify(p), fired ? 0 : 1)
          << "seed=" << seed << " i=" << i;
      live.push_back(p);

      void* q = nullptr;
      const std::uint64_t before_ma =
          plan.stats(fault::sites::kHbwPosixMemalign).fires;
      ASSERT_EQ(mlm_hbw_posix_memalign(&q, 64, 1024), 0);
      const bool fired_ma =
          plan.stats(fault::sites::kHbwPosixMemalign).fires > before_ma;
      EXPECT_EQ(mlm_hbw_verify(q), fired_ma ? 0 : 1)
          << "seed=" << seed << " i=" << i;
      live.push_back(q);
    }

    for (void* p : live) mlm_hbw_free(p);
    EXPECT_EQ(space.stats().used_bytes, 0u) << "seed=" << seed;
    mlm_hbw_set_space(nullptr);
    mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED);
  }
}

// ---------------------------------------------------------------------
// External-sorter sweep: four phase sites x kSeedsPerSite seeds each.
// ---------------------------------------------------------------------

struct SortOutcome {
  bool recovered = false;
  std::uint64_t fires = 0;
  ExternalSortStats stats;
  std::string error_what;
  std::vector<ErrorFrame> chain;
};

SortOutcome run_sort_under_fault(const char* site,
                                 const fault::FaultTrigger& trigger,
                                 const DegradePolicy& policy,
                                 std::uint64_t data_seed) {
  constexpr std::size_t n = 1 << 16;  // 512 KiB of int64 in NVM
  TripleSpaceConfig space_cfg;
  space_cfg.mode = McdramMode::Flat;
  space_cfg.mcdram_bytes = KiB(512);
  space_cfg.ddr_bytes = MiB(2);
  space_cfg.nvm_bytes = 0;  // unlimited
  TripleSpace space(space_cfg);
  ThreadPool pool(2);

  SpaceBuffer<std::int64_t> data(space.nvm(), n);
  Xoshiro256ss rng(data_seed + 1);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::int64_t>(rng.next());
  }
  std::vector<std::int64_t> expected(data.data(), data.data() + n);
  std::sort(expected.begin(), expected.end());

  ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 1 << 14;  // 4 outer chunks
  cfg.inner.variant = MlmVariant::Flat;
  cfg.degrade = policy;
  ExternalMlmSorter<std::int64_t> sorter(space, pool, cfg);

  fault::FaultPlan plan;
  plan.arm(site, trigger);

  SortOutcome out;
  try {
    fault::ScopedFaultInjector inject(plan);
    out.stats = sorter.sort(std::span<std::int64_t>(data.data(), n));
    out.recovered = true;
  } catch (const Error& e) {
    out.error_what = e.what();
    out.chain = e.chain();
  }
  out.fires = plan.total_fires();

  if (out.recovered) {
    EXPECT_EQ(digest_of(std::span<const std::int64_t>(data.data(), n)),
              digest_of(std::span<const std::int64_t>(expected)))
        << "site=" << site << " data_seed=" << data_seed;
    // Byte-count invariant: every outer chunk staged in and out at
    // least once (a tier fallback re-stages, hence >=).
    EXPECT_GE(out.stats.bytes_staged_in, n * sizeof(std::int64_t));
    EXPECT_GE(out.stats.bytes_staged_out, n * sizeof(std::int64_t));
    EXPECT_EQ(out.stats.outer_chunks, 4u);
    EXPECT_TRUE(out.stats.external_merge_ran);
  } else {
    EXPECT_FALSE(out.chain.empty())
        << "site=" << site << ": " << out.error_what;
    if (!out.chain.empty()) {
      EXPECT_EQ(out.chain.back().op, "external_sort");
      EXPECT_FALSE(out.chain.front().op.empty());
    }
  }
  return out;
}

class SorterFaultSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SorterFaultSweep, TransientPhaseFaultsAlwaysRecover) {
  const char* site = GetParam();
  std::uint64_t fired = 0;
  for (std::uint64_t seed = 0; seed < kSeedsPerSite; ++seed) {
    const SortOutcome out = run_sort_under_fault(
        site, transient_trigger(seed), full_recovery_policy(), seed);
    ASSERT_TRUE(out.recovered)
        << "site=" << site << " seed=" << seed << ": " << out.error_what;
    if (out.fires > 0) {
      ++fired;
      EXPECT_FALSE(out.stats.degradations.empty())
          << "site=" << site << " seed=" << seed;
    }
  }
  EXPECT_GT(fired, 0u) << "site=" << site << ": sweep never injected";
}

INSTANTIATE_TEST_SUITE_P(
    Phases, SorterFaultSweep,
    ::testing::Values(fault::sites::kExternalSortStageIn,
                      fault::sites::kExternalSortInner,
                      fault::sites::kExternalSortStageOut,
                      fault::sites::kExternalSortMerge),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

// A permanently failing inner sort (MCDRAM gone for good) degrades to
// the DDR-only sorter — the HBW_POLICY_PREFERRED analogue — and still
// produces a fully sorted result.
TEST(SorterFaultSweep, PermanentInnerFaultFallsBackToDdrOnly) {
  const SortOutcome out =
      run_sort_under_fault(fault::sites::kExternalSortInner,
                           fault::FaultTrigger::always(),
                           full_recovery_policy(), 7);
  ASSERT_TRUE(out.recovered) << out.error_what;
  EXPECT_TRUE(out.stats.inner_tier_fallback);
  const bool has_fallback_event = std::any_of(
      out.stats.degradations.begin(), out.stats.degradations.end(),
      [](const DegradationEvent& e) { return e.action == "tier_fallback"; });
  EXPECT_TRUE(has_fallback_event);
  // The fallback re-stages the failed chunk from NVM: extra traffic.
  EXPECT_GT(out.stats.bytes_staged_in,
            (std::uint64_t{1} << 16) * sizeof(std::int64_t));
}

TEST(SorterFaultSweep, PermanentPhaseFaultNamesPhaseChunkAndTier) {
  DegradePolicy no_recovery;  // everything off: fail fast, annotated
  {
    const SortOutcome out =
        run_sort_under_fault(fault::sites::kExternalSortStageIn,
                             fault::FaultTrigger::always(), no_recovery, 3);
    ASSERT_FALSE(out.recovered);
    ASSERT_FALSE(out.chain.empty());
    EXPECT_EQ(out.chain.front().op, "stage_in");
    EXPECT_EQ(out.chain.front().chunk, 0);
    EXPECT_FALSE(out.chain.front().tier.empty());
  }
  {
    const SortOutcome out =
        run_sort_under_fault(fault::sites::kExternalSortMerge,
                             fault::FaultTrigger::always(), no_recovery, 3);
    ASSERT_FALSE(out.recovered);
    ASSERT_FALSE(out.chain.empty());
    EXPECT_EQ(out.chain.front().op, "merge");
    EXPECT_EQ(out.chain.front().chunk, -1);  // not chunk-scoped
  }
}

}  // namespace
}  // namespace mlm::core

// Executable §6 double chunking vs the knlsim projection.
//
// One TierConfig list (NVM -> DDR -> MCDRAM) builds both the host
// MemoryHierarchy an ExternalMlmSorter runs on and parameterizes
// simulate_nvm_sort's DoubleChunked strategy.  The two must agree on the
// structural phase breakdown: outer chunk counts, staged byte volumes,
// and NVM traffic (the host moves exactly one extra read+write of the
// data, the scratch-to-home move the simulator does not model).  Time is
// checked for internal consistency on each side — the host's phase sum
// must account for its wall clock within a stated 25% tolerance, and the
// simulator's phases must sum to its total exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "mlm/core/external_sort.h"
#include "mlm/knlsim/nvm_timeline.h"
#include "mlm/machine/tier_params.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/units.h"

namespace mlm {
namespace {

constexpr std::size_t kElements = (8 * 1024 * 1024) / sizeof(std::int64_t);

std::vector<TierConfig> scaled_tiers() {
  // A geometrically scaled node: every capacity ratio of the paper's
  // KNL + Optane design point, shrunk to host-test size.
  KnlConfig machine = knl7250();
  machine.mcdram_bytes = KiB(512);
  machine.ddr_bytes = MiB(2);
  NvmConfig nvm = optane_pmm();
  nvm.bytes = MiB(32);
  return describe_tiers(machine, nvm);
}

TEST(DoubleChunkingVsSim, PhaseBreakdownAgrees) {
  const std::vector<TierConfig> tiers = scaled_tiers();

  // --- host: executable double-chunked sort over the tier list ---
  HierarchyConfig hc;
  hc.tiers = tiers;
  hc.mode = McdramMode::Flat;
  MemoryHierarchy hier(hc);
  ThreadPool pool(4);

  SpaceBuffer<std::int64_t> data(hier.tier(0), kElements);
  {
    auto init = sort::make_input(kElements, sort::InputOrder::Random, 99);
    std::copy(init.begin(), init.end(), data.data());
  }
  core::ExternalSortConfig host_cfg;
  host_cfg.inner.variant = core::MlmVariant::Flat;
  core::ExternalMlmSorter<std::int64_t> sorter(hier, pool, host_cfg);
  const core::ExternalSortStats host =
      sorter.sort(std::span<std::int64_t>(data.data(), kElements));
  ASSERT_TRUE(std::is_sorted(data.data(), data.data() + kElements));

  // --- sim: the same tier list drives the DoubleChunked projection ---
  KnlConfig compute = knl7250();
  knlsim::SortCostParams params;
  knlsim::NvmSortConfig sim_cfg;
  sim_cfg.strategy = knlsim::NvmStrategy::DoubleChunked;
  sim_cfg.elements = kElements;
  const knlsim::NvmSortResult sim = knlsim::simulate_nvm_sort(
      std::span<const TierConfig>(tiers), compute, params, sim_cfg);

  // Both sides derive the outer chunk from the same DDR capacity
  // (DDR/2: chunk + inner scratch), so the chunk structure must match.
  EXPECT_EQ(host.outer_chunks, sim.outer_chunks);
  EXPECT_EQ(host.outer_chunks, 8u);
  EXPECT_TRUE(host.external_merge_ran);
  EXPECT_GE(host.last_inner.megachunks, 2u);  // double chunking happened

  // Staged volume: every byte crosses NVM -> DDR once and back once.
  const std::uint64_t total_bytes = kElements * sizeof(std::int64_t);
  EXPECT_EQ(host.bytes_staged_in, total_bytes);
  EXPECT_EQ(host.bytes_staged_out, total_bytes);
  EXPECT_DOUBLE_EQ(sim.nvm_read_bytes - static_cast<double>(total_bytes),
                   static_cast<double>(host.bytes_staged_in));

  // NVM traffic: host = sim + one read and one write of the data (the
  // merge scratch moved home, which the simulator's merge skips).
  EXPECT_DOUBLE_EQ(static_cast<double>(host.nvm_read_bytes),
                   sim.nvm_read_bytes + static_cast<double>(total_bytes));
  EXPECT_DOUBLE_EQ(static_cast<double>(host.nvm_write_bytes),
                   sim.nvm_write_bytes + static_cast<double>(total_bytes));

  // Host phase breakdown: all three phases ran and account for the wall
  // clock within 25% (stated tolerance; the remainder is alloc/setup).
  EXPECT_GT(host.staging_seconds, 0.0);
  EXPECT_GT(host.sorting_seconds, 0.0);
  EXPECT_GT(host.merging_seconds, 0.0);
  const double phase_sum =
      host.staging_seconds + host.sorting_seconds + host.merging_seconds;
  EXPECT_LE(phase_sum, host.total_seconds * 1.25 + 1e-6);
  EXPECT_GE(phase_sum, host.total_seconds * 0.75 - 1e-6);

  // Sim phase breakdown: phases partition the simulated total exactly
  // (no overlap was requested).
  EXPECT_NEAR(sim.staging_seconds + sim.sorting_seconds +
                  sim.merging_seconds,
              sim.seconds, sim.seconds * 1e-9);
}

TEST(DoubleChunkingVsSim, TierOverloadMatchesExplicitConfigs) {
  // The tier-list overload must be a pure repackaging of the
  // (machine, nvm) overload — same description in, same projection out.
  KnlConfig machine = knl7250();
  machine.mcdram_bytes = KiB(512);
  machine.ddr_bytes = MiB(2);
  NvmConfig nvm = optane_pmm();
  nvm.bytes = MiB(32);

  knlsim::SortCostParams params;
  knlsim::NvmSortConfig cfg;
  cfg.strategy = knlsim::NvmStrategy::DoubleChunked;
  cfg.elements = kElements;

  const knlsim::NvmSortResult direct =
      knlsim::simulate_nvm_sort(machine, nvm, params, cfg);
  const std::vector<TierConfig> tiers = describe_tiers(machine, nvm);
  const knlsim::NvmSortResult via_tiers = knlsim::simulate_nvm_sort(
      std::span<const TierConfig>(tiers), machine, params, cfg);

  EXPECT_DOUBLE_EQ(via_tiers.seconds, direct.seconds);
  EXPECT_DOUBLE_EQ(via_tiers.staging_seconds, direct.staging_seconds);
  EXPECT_DOUBLE_EQ(via_tiers.sorting_seconds, direct.sorting_seconds);
  EXPECT_DOUBLE_EQ(via_tiers.merging_seconds, direct.merging_seconds);
  EXPECT_EQ(via_tiers.outer_chunks, direct.outer_chunks);
  EXPECT_DOUBLE_EQ(via_tiers.nvm_read_bytes, direct.nvm_read_bytes);
  EXPECT_DOUBLE_EQ(via_tiers.nvm_write_bytes, direct.nvm_write_bytes);
}

}  // namespace
}  // namespace mlm

// End-to-end tests: the full library stack on host-scale versions of the
// paper's experiments, with a scaled-down KNL (capacities / 1024,
// bandwidth ratios preserved) so the same code paths run in seconds.
#include <gtest/gtest.h>

#include <algorithm>

#include "mlm/core/merge_bench.h"
#include "mlm/core/mlm_sort.h"
#include "mlm/core/copy_thread_tuner.h"
#include "mlm/machine/knl_config.h"
#include "mlm/memory/memkind_shim.h"
#include "mlm/sort/input_gen.h"

namespace mlm {
namespace {

using core::MlmSortConfig;
using core::MlmSorter;
using core::MlmVariant;
using sort::InputOrder;
using sort::make_input;

// One scaled machine for all end-to-end runs: 16 MiB "MCDRAM".
KnlConfig scaled() { return scaled_knl(1024, 4); }

TEST(EndToEnd, AllVariantsSortDataLargerThanMcdram) {
  const KnlConfig machine = scaled();
  // 4M int64 = 32 MiB = 2x the scaled MCDRAM.
  const std::size_t n = 4 << 20;
  for (MlmVariant variant :
       {MlmVariant::Flat, MlmVariant::Implicit, MlmVariant::DdrOnly}) {
    const McdramMode mode = variant == MlmVariant::Flat
                                ? McdramMode::Flat
                                : (variant == MlmVariant::Implicit
                                       ? McdramMode::ImplicitCache
                                       : McdramMode::DdrOnly);
    DualSpace space(make_dual_space_config(machine, mode));
    ThreadPool pool(machine.total_threads());
    MlmSortConfig cfg;
    cfg.variant = variant;
    auto data = make_input(n, InputOrder::Random, 42);
    const auto cs = sort::checksum(data);
    MlmSorter<std::int64_t> sorter(space, pool, cfg);
    const auto stats = sorter.sort(std::span<std::int64_t>(data));
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()))
        << core::to_string(variant);
    EXPECT_EQ(sort::checksum(data), cs);
    if (variant == MlmVariant::Flat) {
      // Data (32 MiB) > MCDRAM (16 MiB): chunking must have kicked in.
      EXPECT_GE(stats.megachunks, 2u);
    }
  }
}

TEST(EndToEnd, HybridModeSortWorksWithHalvedScratchpad) {
  const KnlConfig machine = scaled();
  DualSpace space(
      make_dual_space_config(machine, McdramMode::Hybrid, 0.5));
  ThreadPool pool(4);
  MlmSortConfig cfg;
  cfg.variant = MlmVariant::Flat;  // explicit copies into the flat half
  auto data = make_input(2 << 20, InputOrder::Reverse, 7);
  MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const auto stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  // 16 MiB of data against an 8 MiB flat half: >= 2 megachunks.
  EXPECT_GE(stats.megachunks, 2u);
}

TEST(EndToEnd, TunedMergeBenchmarkRunsWithModelChosenPools) {
  const KnlConfig machine = scaled();
  const std::size_t elements = 2 << 20;
  const double bytes = static_cast<double>(elements) * 8;

  const core::TunedSplit split = core::tune_pools(
      machine, core::TunedWorkload{bytes, 4.0}, machine.total_threads());

  DualSpace space(make_dual_space_config(machine, McdramMode::Flat));
  auto data = make_input(elements, InputOrder::Random, 11);
  core::MergeBenchConfig cfg;
  cfg.elements = elements;
  cfg.copy_threads = split.pools.copy_in;
  cfg.compute_threads = split.pools.compute;
  cfg.repeats = 4;
  const auto result =
      core::run_merge_bench(space, std::span<std::int64_t>(data), cfg);
  EXPECT_GT(result.merges_performed, 0u);
  EXPECT_GT(result.pipeline.chunks, 1u);
  EXPECT_EQ(result.pipeline.bytes_copied_in, bytes);
}

TEST(EndToEnd, MemkindShimBackedSortWorkflow) {
  // The workflow a memkind user would follow: install the MCDRAM space,
  // hbw_malloc a working buffer, sort through it, free, uninstall.
  const KnlConfig machine = scaled();
  DualSpace space(make_dual_space_config(machine, McdramMode::Flat));
  mlm_hbw_set_space(&space.mcdram());
  ASSERT_EQ(mlm_hbw_check_available(), 1);

  const std::size_t chunk = 1 << 18;
  auto data = make_input(chunk * 3, InputOrder::Random, 21);
  auto* buf = static_cast<std::int64_t*>(
      mlm_hbw_malloc(chunk * sizeof(std::int64_t)));
  ASSERT_NE(buf, nullptr);
  // Chunk-sort via the scratchpad, then merge on host.
  for (std::size_t c = 0; c < 3; ++c) {
    std::copy_n(data.data() + c * chunk, chunk, buf);
    sort::serial_sort(buf, buf + chunk);
    std::copy_n(buf, chunk, data.data() + c * chunk);
  }
  mlm_hbw_free(buf);
  mlm_hbw_set_space(nullptr);

  std::vector<std::int64_t> out(data.size());
  std::vector<sort::Run<std::int64_t>> runs;
  for (std::size_t c = 0; c < 3; ++c) {
    runs.emplace_back(data.data() + c * chunk, chunk);
  }
  sort::multiway_merge(std::span<const sort::Run<std::int64_t>>(runs),
                       std::span<std::int64_t>(out));
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(EndToEnd, BasicChunkedEqualsStdSortAtScale) {
  const KnlConfig machine = scaled();
  DualSpace space(make_dual_space_config(machine, McdramMode::Flat));
  ThreadPool pool(4);
  auto data = make_input(3 << 20, InputOrder::NearlySorted, 31);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  core::basic_chunked_sort(space, pool, std::span<std::int64_t>(data),
                           1 << 19);
  EXPECT_EQ(data, expect);
}

}  // namespace
}  // namespace mlm

// Failure injection: capacity exhaustion mid-run, compute-stage
// exceptions inside pipelines, and recovery/cleanup guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "mlm/core/chunk_pipeline.h"
#include "mlm/core/mlm_sort.h"
#include "mlm/memory/memkind_shim.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm {
namespace {

DualSpace flat_space(std::uint64_t mcdram = MiB(2)) {
  DualSpaceConfig cfg;
  cfg.mode = McdramMode::Flat;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

TEST(FailureInjection, MlmSortFailsCleanlyWhenMcdramAlreadyOccupied) {
  DualSpace space = flat_space(MiB(1));
  ThreadPool pool(2);
  // A co-tenant holds almost all of MCDRAM.
  Allocation squatter(space.mcdram(), MiB(1) - KiB(64));

  core::MlmSortConfig cfg;
  cfg.variant = core::MlmVariant::Flat;
  cfg.megachunk_elements = MiB(1) / sizeof(std::int64_t);  // > free
  auto data = sort::make_input(100000, sort::InputOrder::Random, 1);
  core::MlmSorter<std::int64_t> sorter(space, pool, cfg);
  EXPECT_THROW(sorter.sort(std::span<std::int64_t>(data)),
               InvalidArgumentError);
  // Nothing leaked beyond the squatter.
  EXPECT_EQ(space.mcdram().stats().used_bytes, MiB(1) - KiB(64));
  EXPECT_EQ(space.ddr().stats().used_bytes, 0u);
}

TEST(FailureInjection, MlmSortAdaptsMegachunkToRemainingCapacity) {
  // With the default (auto) megachunk, the sorter sizes itself to the
  // capacity that is actually free and still succeeds.
  DualSpace space = flat_space(MiB(1));
  ThreadPool pool(2);
  Allocation squatter(space.mcdram(), KiB(512));

  core::MlmSortConfig cfg;
  cfg.variant = core::MlmVariant::Flat;  // auto megachunk
  auto data = sort::make_input(200000, sort::InputOrder::Random, 2);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  core::MlmSorter<std::int64_t> sorter(space, pool, cfg);
  const auto stats = sorter.sort(std::span<std::int64_t>(data));
  EXPECT_EQ(data, expect);
  EXPECT_GE(stats.megachunks, 3u);  // 1.6 MB data over ~0.5 MB chunks
}

TEST(FailureInjection, PipelineThrowsOnFirstChunkFailure) {
  DualSpace space = flat_space();
  std::vector<std::int64_t> data(200000, 1);
  core::PipelineConfig cfg;
  cfg.chunk_bytes = 128 * 1024;
  cfg.pools = PoolSizes{1, 1, 2};
  std::atomic<int> chunks_started{0};
  EXPECT_THROW(
      core::run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(data), cfg,
          [&](std::span<std::int64_t>, Executor&, std::size_t) {
            ++chunks_started;
            throw Error("injected compute failure");
          }),
      Error);
  EXPECT_GE(chunks_started.load(), 1);
  // All MCDRAM buffers returned despite the exception (RAII).
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(FailureInjection, PipelineMidStreamFailureStillCleansUp) {
  DualSpace space = flat_space();
  std::vector<std::int64_t> data(400000, 1);
  core::PipelineConfig cfg;
  cfg.chunk_bytes = 64 * 1024;
  cfg.pools = PoolSizes{1, 1, 2};
  EXPECT_THROW(
      core::run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(data), cfg,
          [&](std::span<std::int64_t>, Executor&, std::size_t idx) {
            if (idx == 17) throw Error("late failure");
          }),
      Error);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(FailureInjection, ComputeThrowingOnFinalChunkStillCleansUp) {
  // The last chunk's failure happens after every copy-in has been
  // posted; the step barrier must still join the in-flight copies
  // before the buffers die.
  DualSpace space = flat_space();
  const std::size_t n = 5 * 64 * 1024 / sizeof(std::int64_t);  // 5 chunks
  std::vector<std::int64_t> data(n, 1);
  core::PipelineConfig cfg;
  cfg.chunk_bytes = 64 * 1024;
  cfg.pools = PoolSizes{1, 1, 2};
  std::atomic<std::size_t> last_seen{0};
  EXPECT_THROW(
      core::run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(data), cfg,
          [&](std::span<std::int64_t>, Executor&, std::size_t idx) {
            last_seen = idx;
            if (idx == 4) throw Error("final chunk failure");
          }),
      Error);
  EXPECT_EQ(last_seen.load(), 4u);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(PipelineEdgeCases, ZeroLengthInputIsNoop) {
  DualSpace space = flat_space();
  core::PipelineConfig cfg;
  cfg.chunk_bytes = 64 * 1024;
  cfg.pools = PoolSizes{1, 1, 1};
  std::atomic<int> calls{0};
  const core::PipelineStats stats =
      core::run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(), cfg,
          [&](std::span<std::int64_t>, Executor&, std::size_t) {
            ++calls;
          });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(stats.bytes_copied_in, 0u);
  EXPECT_EQ(stats.bytes_copied_out, 0u);
  EXPECT_EQ(space.mcdram().stats().used_bytes, 0u);
}

TEST(PipelineEdgeCases, ChunkBytesNotMultipleOfElementSize) {
  // The typed wrapper rounds chunk_bytes down to an element boundary,
  // so a ragged request still touches every element exactly once.
  DualSpace space = flat_space();
  const std::size_t n = 40000;
  std::vector<std::int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);
  core::PipelineConfig cfg;
  cfg.chunk_bytes = 64 * 1024 + 3;  // not a multiple of 8
  cfg.pools = PoolSizes{1, 1, 2};
  core::run_chunk_pipeline_typed<std::int64_t>(
      space, std::span<std::int64_t>(data), cfg,
      [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
        for (auto& x : chunk) x += 1;
      });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1) << i;
  }
}

TEST(PipelineEdgeCases, ChunkLargerThanInputRunsAsOneChunk) {
  DualSpace space = flat_space();
  const std::size_t n = 1000;
  std::vector<std::int64_t> data(n, 5);
  core::PipelineConfig cfg;
  cfg.chunk_bytes = 512 * 1024;  // far larger than 8 KB of data
  cfg.pools = PoolSizes{1, 1, 1};
  const core::PipelineStats stats =
      core::run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(data), cfg,
          [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
            for (auto& x : chunk) x *= 2;
          });
  EXPECT_EQ(stats.chunks, 1u);
  EXPECT_EQ(stats.bytes_copied_in, n * sizeof(std::int64_t));
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](std::int64_t v) { return v == 10; }));
}

TEST(FailureInjection, ShimPreferredPolicySurvivesExhaustion) {
  // A chunked workflow whose staging space fills up: PREFERRED policy
  // degrades to heap (as memkind does on KNL when MCDRAM runs out)
  // instead of failing the run.
  MemorySpace hbw("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&hbw);
  mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED);
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) {
    void* p = mlm_hbw_malloc(KiB(16));  // exceeds capacity after 4
    ASSERT_NE(p, nullptr) << i;
    blocks.push_back(p);
  }
  EXPECT_EQ(hbw.stats().used_bytes, KiB(64));
  for (void* p : blocks) mlm_hbw_free(p);
  EXPECT_EQ(hbw.stats().used_bytes, 0u);
  mlm_hbw_set_space(nullptr);
}

TEST(FailureInjection, ScratchReleaseAllowsRetryAfterFailure) {
  DualSpace space = flat_space(MiB(1));
  ThreadPool pool(2);
  core::MlmSortConfig bad;
  bad.variant = core::MlmVariant::Flat;
  bad.megachunk_elements = MiB(2) / sizeof(std::int64_t);
  auto data = sort::make_input(50000, sort::InputOrder::Reverse, 3);
  core::MlmSorter<std::int64_t> bad_sorter(space, pool, bad);
  EXPECT_THROW(bad_sorter.sort(std::span<std::int64_t>(data)),
               InvalidArgumentError);

  // The failed attempt must not poison the space: a valid retry works.
  core::MlmSortConfig good;
  good.variant = core::MlmVariant::Flat;
  core::MlmSorter<std::int64_t> good_sorter(space, pool, good);
  good_sorter.sort(std::span<std::int64_t>(data));
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

}  // namespace
}  // namespace mlm

// Cross-validation between the paper's closed-form model (Eqs. 1-5) and
// the flow-level simulator: in steady state they must agree, because the
// equations are the fixed point of the bandwidth-sharing the simulator
// computes.  Divergence is allowed only where the model's known
// simplifications bite (pipeline fill/drain, copy/compute asymmetry at
// the last chunks).
#include <gtest/gtest.h>

#include <vector>

#include "mlm/core/buffer_model.h"
#include "mlm/knlsim/merge_bench_timeline.h"

namespace mlm {
namespace {

core::ModelParams table2() {
  return core::ModelParams::from_machine(knl7250());
}

knlsim::MergeBenchConfig sim_config(unsigned repeats,
                                    std::size_t copy_threads) {
  knlsim::MergeBenchConfig c;
  c.repeats = repeats;
  c.copy_threads = copy_threads;
  c.total_threads = 256;
  return c;
}

class ModelVsSim
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
};

TEST_P(ModelVsSim, SteadyStateTimesAgree) {
  const auto [repeats, copy_threads] = GetParam();

  const core::ModelPrediction model =
      core::predict(table2(),
                    core::ModelWorkload{14.9e9, double(repeats)},
                    core::ThreadSplit{copy_threads, 256 - 2 * copy_threads});

  const knlsim::MergeBenchResult sim =
      knlsim::simulate_merge_bench(knl7250(),
                                   sim_config(repeats, copy_threads));

  // The model ignores pipeline fill/drain, so compare within 25%: the
  // paper's own model-vs-empirical gaps (Fig. 8a vs 8b) are larger.
  EXPECT_NEAR(sim.seconds / model.t_total, 1.0, 0.25)
      << "repeats=" << repeats << " copy=" << copy_threads
      << " sim=" << sim.seconds << " model=" << model.t_total;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSim,
    ::testing::Combine(::testing::Values(1u, 4u, 16u, 64u),
                       ::testing::Values(std::size_t{2}, std::size_t{8},
                                         std::size_t{16})));

TEST(ModelVsSim, OptimalCopyThreadsAgreeWithinGrid) {
  // On the powers-of-two grid the model's pick and the simulator's pick
  // must be neighbours (the paper's Table 3 shows the same looseness
  // between its model and empirical columns).
  const std::vector<std::size_t> grid{1, 2, 4, 8, 16, 32};
  for (unsigned repeats : {1u, 8u, 32u, 64u}) {
    const std::size_t model_best = core::optimal_copy_threads(
        table2(), core::ModelWorkload{14.9e9, double(repeats)}, 256, grid);
    const std::size_t sim_best = knlsim::best_copy_threads(
        knl7250(), sim_config(repeats, 1), grid);
    const double ratio =
        static_cast<double>(std::max(model_best, sim_best)) /
        static_cast<double>(std::min(model_best, sim_best));
    EXPECT_LE(ratio, 4.0) << "repeats=" << repeats
                          << " model=" << model_best
                          << " sim=" << sim_best;
  }
}

TEST(ModelVsSim, BothShowCopyToComputeTransition) {
  // At repeats=1 the best split uses many copy threads; at repeats=64 it
  // uses few — in both the model and the simulator.
  const std::vector<std::size_t> grid{1, 2, 4, 8, 16, 32};
  const std::size_t model_low = core::optimal_copy_threads(
      table2(), core::ModelWorkload{14.9e9, 1.0}, 256, grid);
  const std::size_t model_high = core::optimal_copy_threads(
      table2(), core::ModelWorkload{14.9e9, 64.0}, 256, grid);
  const std::size_t sim_low =
      knlsim::best_copy_threads(knl7250(), sim_config(1, 1), grid);
  const std::size_t sim_high =
      knlsim::best_copy_threads(knl7250(), sim_config(64, 1), grid);
  EXPECT_GT(model_low, model_high);
  EXPECT_GT(sim_low, sim_high);
  EXPECT_EQ(model_high, 1u);
  // The simulated pipeline reaches 1 copy thread one repeats-step later
  // than the closed-form model (fill/drain steps favour a second one).
  EXPECT_LE(sim_high, 2u);
}

}  // namespace
}  // namespace mlm

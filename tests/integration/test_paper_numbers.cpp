// The reproduction contract as a regression test: every Table 1 cell of
// the paper must stay within 10% of the simulated value, and the
// qualitative claims of the evaluation section must hold.  If a model
// change breaks the reproduction, this file fails before EXPERIMENTS.md
// goes stale.
#include <gtest/gtest.h>

#include <map>

#include "mlm/knlsim/merge_bench_timeline.h"
#include "mlm/knlsim/sort_timeline.h"

namespace mlm::knlsim {
namespace {

struct Cell {
  std::uint64_t elements;
  SimOrder order;
  SortAlgo algo;
  double paper_mean;
};

// Table 1 of the paper.  (6e9-random MLM-ddr uses the trend value ~27.5;
// the printed 18.74 duplicates the 4e9 row.)
const Cell kTable1[] = {
    {2000000000ull, SimOrder::Random, SortAlgo::GnuFlat, 11.92},
    {2000000000ull, SimOrder::Random, SortAlgo::GnuCache, 9.73},
    {2000000000ull, SimOrder::Random, SortAlgo::MlmDdr, 9.28},
    {2000000000ull, SimOrder::Random, SortAlgo::MlmSort, 8.09},
    {2000000000ull, SimOrder::Random, SortAlgo::MlmImplicit, 7.37},
    {4000000000ull, SimOrder::Random, SortAlgo::GnuFlat, 24.21},
    {4000000000ull, SimOrder::Random, SortAlgo::GnuCache, 19.76},
    {4000000000ull, SimOrder::Random, SortAlgo::MlmDdr, 18.74},
    {4000000000ull, SimOrder::Random, SortAlgo::MlmSort, 16.28},
    {4000000000ull, SimOrder::Random, SortAlgo::MlmImplicit, 14.56},
    {6000000000ull, SimOrder::Random, SortAlgo::GnuFlat, 36.52},
    {6000000000ull, SimOrder::Random, SortAlgo::GnuCache, 29.53},
    {6000000000ull, SimOrder::Random, SortAlgo::MlmDdr, 27.50},
    {6000000000ull, SimOrder::Random, SortAlgo::MlmSort, 22.71},
    {6000000000ull, SimOrder::Random, SortAlgo::MlmImplicit, 21.66},
    {2000000000ull, SimOrder::Reverse, SortAlgo::GnuFlat, 7.97},
    {2000000000ull, SimOrder::Reverse, SortAlgo::GnuCache, 7.19},
    {2000000000ull, SimOrder::Reverse, SortAlgo::MlmDdr, 4.79},
    {2000000000ull, SimOrder::Reverse, SortAlgo::MlmSort, 4.46},
    {2000000000ull, SimOrder::Reverse, SortAlgo::MlmImplicit, 4.10},
    {4000000000ull, SimOrder::Reverse, SortAlgo::GnuFlat, 16.06},
    {4000000000ull, SimOrder::Reverse, SortAlgo::GnuCache, 14.27},
    {4000000000ull, SimOrder::Reverse, SortAlgo::MlmDdr, 9.53},
    {4000000000ull, SimOrder::Reverse, SortAlgo::MlmSort, 9.02},
    {4000000000ull, SimOrder::Reverse, SortAlgo::MlmImplicit, 8.31},
    {6000000000ull, SimOrder::Reverse, SortAlgo::GnuFlat, 23.94},
    {6000000000ull, SimOrder::Reverse, SortAlgo::GnuCache, 21.85},
    {6000000000ull, SimOrder::Reverse, SortAlgo::MlmDdr, 14.48},
    {6000000000ull, SimOrder::Reverse, SortAlgo::MlmSort, 12.56},
    {6000000000ull, SimOrder::Reverse, SortAlgo::MlmImplicit, 12.76},
};

double simulate_cell(const Cell& c) {
  SortRunConfig cfg;
  cfg.algo = c.algo;
  cfg.order = c.order;
  cfg.elements = c.elements;
  return simulate_sort(knl7250(), SortCostParams{}, cfg).seconds;
}

TEST(PaperNumbers, EveryTable1CellWithin10Percent) {
  for (const Cell& c : kTable1) {
    const double sim = simulate_cell(c);
    EXPECT_NEAR(sim / c.paper_mean, 1.0, 0.10)
        << to_string(c.algo) << " " << to_string(c.order) << " "
        << c.elements << ": sim " << sim << " vs paper " << c.paper_mean;
  }
}

TEST(PaperNumbers, HeadlineSpeedupBand) {
  // §6: "performance speedup of approximately 1.6-1.9X (depending on
  // input order) times that of using the non-chunking GNU sort without
  // MCDRAM."  Allow the band edges a little slack for our 2e9 cells.
  for (SimOrder order : {SimOrder::Random, SimOrder::Reverse}) {
    for (std::uint64_t n :
         {2000000000ull, 4000000000ull, 6000000000ull}) {
      Cell gnu{n, order, SortAlgo::GnuFlat, 0};
      double best = 1e300;
      for (SortAlgo a : {SortAlgo::MlmSort, SortAlgo::MlmImplicit}) {
        best = std::min(best, simulate_cell({n, order, a, 0}));
      }
      const double speedup = simulate_cell(gnu) / best;
      EXPECT_GE(speedup, 1.45) << n << " " << to_string(order);
      EXPECT_LE(speedup, 2.0) << n << " " << to_string(order);
    }
  }
}

TEST(PaperNumbers, Table1OrderingAllSizes) {
  // Random inputs: GNU-flat > GNU-cache > MLM-ddr > MLM-sort and
  // MLM-implicit beats MLM-sort except possibly at 6e9 reverse (the
  // paper's own crossover).
  for (std::uint64_t n : {2000000000ull, 4000000000ull, 6000000000ull}) {
    const double gf = simulate_cell({n, SimOrder::Random,
                                     SortAlgo::GnuFlat, 0});
    const double gc = simulate_cell({n, SimOrder::Random,
                                     SortAlgo::GnuCache, 0});
    const double md = simulate_cell({n, SimOrder::Random,
                                     SortAlgo::MlmDdr, 0});
    const double ms = simulate_cell({n, SimOrder::Random,
                                     SortAlgo::MlmSort, 0});
    EXPECT_GT(gf, gc) << n;
    EXPECT_GT(gc, md) << n;
    EXPECT_GT(md, ms) << n;
  }
}

TEST(PaperNumbers, ReverseCrossoverAt6Billion) {
  // Table 1's odd cell: MLM-implicit lags MLM-sort only at 6e9 reverse.
  const double ms = simulate_cell({6000000000ull, SimOrder::Reverse,
                                   SortAlgo::MlmSort, 0});
  const double mi = simulate_cell({6000000000ull, SimOrder::Reverse,
                                   SortAlgo::MlmImplicit, 0});
  EXPECT_GT(mi, ms);
  // ...and only there: at 2e9/4e9 reverse implicit is at least on par.
  for (std::uint64_t n : {2000000000ull, 4000000000ull}) {
    const double s = simulate_cell({n, SimOrder::Reverse,
                                    SortAlgo::MlmSort, 0});
    const double i = simulate_cell({n, SimOrder::Reverse,
                                    SortAlgo::MlmImplicit, 0});
    EXPECT_LT(i, s * 1.01) << n;
  }
}

TEST(PaperNumbers, Table3ShapesHold) {
  // Model column monotone nonincreasing, empirical column too, and both
  // reach few copy threads at repeats >= 32 (Table 3).
  const std::vector<std::size_t> powers{1, 2, 4, 8, 16, 32};
  std::size_t prev_emp = 1000;
  for (unsigned rep : {1u, 4u, 16u, 64u}) {
    MergeBenchConfig cfg;
    cfg.repeats = rep;
    const std::size_t emp = best_copy_threads(knl7250(), cfg, powers);
    EXPECT_LE(emp, prev_emp) << rep;
    prev_emp = emp;
  }
  EXPECT_LE(prev_emp, 2u);
}

}  // namespace
}  // namespace mlm::knlsim

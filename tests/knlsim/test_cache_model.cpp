#include "mlm/knlsim/cache_model.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.capacity_bytes = 1000.0;
  c.tag_overhead = 0.0;
  c.conflict_factor = 0.0;
  c.dirty_fraction = 0.5;
  return c;
}

TEST(CacheConfig, TagOverheadShrinksCapacity) {
  CacheConfig c = small_cache();
  c.tag_overhead = 0.03;
  EXPECT_NEAR(c.effective_capacity(1), 970.0, 1e-9);
}

TEST(CacheConfig, ConflictsShrinkCapacityWithStreams) {
  CacheConfig c = small_cache();
  c.conflict_factor = 0.25;
  EXPECT_NEAR(c.effective_capacity(1), 1000.0, 1e-9);
  EXPECT_LT(c.effective_capacity(4), c.effective_capacity(2));
  EXPECT_LT(c.effective_capacity(16), c.effective_capacity(4));
}

TEST(StreamingTraffic, SinglePassIsAllMisses) {
  const CacheTraffic t =
      streaming_traffic(small_cache(), 500.0, 500.0, 1.0);
  EXPECT_NEAR(t.hit_fraction, 0.0, 1e-12);
  // Miss traffic: fetch + dirty writebacks on DDR, fill + victim reads
  // on MCDRAM.
  EXPECT_NEAR(t.ddr_bytes, 500.0 * 1.5, 1e-9);
  EXPECT_NEAR(t.mcdram_bytes, 500.0 * 1.5, 1e-9);
}

TEST(StreamingTraffic, FittingWorkingSetHitsAfterFirstPass) {
  // Working set 500 fits the 1000 cache; 10 passes -> 9 of 10 hit.
  const CacheTraffic t =
      streaming_traffic(small_cache(), 5000.0, 500.0, 10.0);
  EXPECT_NEAR(t.hit_fraction, 0.9, 1e-12);
  EXPECT_NEAR(t.ddr_bytes, 5000.0 * 0.1 * 1.5, 1e-9);
}

TEST(StreamingTraffic, OversizedWorkingSetHitsOnlyResidentFraction) {
  // Working set 2000 in a 1000 cache: resident fraction 0.5; with many
  // passes hit fraction approaches 0.5.
  const CacheTraffic t =
      streaming_traffic(small_cache(), 2000.0 * 100, 2000.0, 100.0);
  EXPECT_NEAR(t.hit_fraction, 0.5 * 99.0 / 100.0, 1e-9);
}

TEST(StreamingTraffic, MoreDdrTrafficThanPayloadWhenThrashing) {
  // The cache-mode overhead the paper warns about: misses move MORE
  // bytes than flat DDR access would.
  const CacheTraffic t =
      streaming_traffic(small_cache(), 1000.0, 10000.0, 1.0);
  EXPECT_GT(t.ddr_bytes, 1000.0);
  EXPECT_GT(t.mcdram_bytes, 0.0);
}

TEST(StreamingTraffic, RejectsBadArguments) {
  EXPECT_THROW(streaming_traffic(small_cache(), -1.0, 10.0, 1.0),
               InvalidArgumentError);
  EXPECT_THROW(streaming_traffic(small_cache(), 1.0, 0.0, 1.0),
               InvalidArgumentError);
  EXPECT_THROW(streaming_traffic(small_cache(), 1.0, 10.0, 0.5),
               InvalidArgumentError);
}

TEST(DncHitFraction, FullyFittingIsAllHits) {
  EXPECT_DOUBLE_EQ(dnc_hit_fraction(small_cache(), 800.0, 32.0), 1.0);
}

TEST(DncHitFraction, DecreasesWithWorkingSet) {
  const CacheConfig c = small_cache();
  const double h1 = dnc_hit_fraction(c, 2000.0, 32.0);
  const double h2 = dnc_hit_fraction(c, 8000.0, 32.0);
  const double h3 = dnc_hit_fraction(c, 64000.0, 32.0);
  EXPECT_GT(h1, h2);
  EXPECT_GT(h2, h3);
  EXPECT_GT(h3, 0.0);
  EXPECT_LT(h1, 1.0);
}

TEST(DncHitFraction, LevelArithmetic) {
  // working_set 4096, lower level 32 -> 7 levels; cache 1024 -> 2 miss
  // levels -> hit fraction 5/7.
  CacheConfig c = small_cache();
  c.capacity_bytes = 1024.0;
  EXPECT_NEAR(dnc_hit_fraction(c, 4096.0, 32.0), 1.0 - 2.0 / 7.0, 1e-9);
}

TEST(DncHitFraction, RejectsBadSizes) {
  EXPECT_THROW(dnc_hit_fraction(small_cache(), 0.0, 32.0),
               InvalidArgumentError);
  EXPECT_THROW(dnc_hit_fraction(small_cache(), 100.0, 0.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::knlsim

// Tests for the multi-node distributed MLM-sort projection (§6).
#include "mlm/knlsim/cluster_timeline.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

constexpr std::uint64_t kN = 16'000'000'000ull;  // 128 GB across cluster

ClusterSortResult run(std::size_t nodes, std::uint64_t n = kN,
                      double nic_bw = 12.5e9) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.elements = n;
  cfg.nic_bw = nic_bw;
  return simulate_cluster_sort(knl7250(), SortCostParams{}, cfg);
}

TEST(ClusterTimeline, SingleNodeMatchesLocalSort) {
  const ClusterSortResult r = run(1);
  EXPECT_EQ(r.elements_per_node, kN);
  EXPECT_DOUBLE_EQ(r.exchange_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.final_merge_seconds, 0.0);
  EXPECT_NEAR(r.speedup_vs_single, 1.0, 1e-9);
  EXPECT_NEAR(r.parallel_efficiency, 1.0, 1e-9);
}

TEST(ClusterTimeline, TimeFallsWithNodes) {
  double prev = run(1).seconds;
  for (std::size_t p : {2u, 4u, 8u, 16u}) {
    const double t = run(p).seconds;
    EXPECT_LT(t, prev) << p << " nodes";
    prev = t;
  }
}

TEST(ClusterTimeline, EfficiencyStaysHighButBelowOne) {
  // Strong scaling of an n·log n workload: the shrinking log factor
  // partly offsets the communication cost, so efficiency hovers in a
  // band below 1 (0.79-0.86 across 2..256 nodes) rather than decaying
  // monotonically; it is past its local maximum by 256 nodes.
  double e_max = 0.0;
  for (std::size_t p : {2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    const double e = run(p).parallel_efficiency;
    EXPECT_GT(e, 0.7) << p;
    EXPECT_LT(e, 1.0) << p;
    e_max = std::max(e_max, e);
  }
  EXPECT_LT(run(256).parallel_efficiency, e_max);
}

TEST(ClusterTimeline, FasterNicImprovesScaling) {
  const double slow = run(16, kN, 5e9).seconds;
  const double fast = run(16, kN, 25e9).seconds;
  EXPECT_LT(fast, slow);
  // NIC speed must not matter on one node.
  EXPECT_DOUBLE_EQ(run(1, kN, 5e9).seconds, run(1, kN, 25e9).seconds);
}

TEST(ClusterTimeline, ExchangeVolumeMatchesSampleSort) {
  const ClusterSortResult r = run(8);
  const double part_bytes = static_cast<double>(kN / 8) * 8.0;
  EXPECT_NEAR(r.bytes_sent_per_node, part_bytes * 7.0 / 8.0,
              part_bytes * 1e-9);
}

TEST(ClusterTimeline, SuperlinearLocalWorkGivesGoodSpeedup) {
  // Sorting is superlinear (n log n), so the speedup at P nodes exceeds
  // the communication-free lower bound P * (local fraction).
  const ClusterSortResult r = run(8);
  EXPECT_GT(r.speedup_vs_single, 4.0);
}

TEST(ClusterTimeline, RejectsBadConfigs) {
  ClusterConfig cfg;
  cfg.nodes = 0;
  cfg.elements = 100;
  EXPECT_THROW(simulate_cluster_sort(knl7250(), SortCostParams{}, cfg),
               InvalidArgumentError);
  cfg.nodes = 8;
  cfg.elements = 4;  // fewer elements than nodes
  EXPECT_THROW(simulate_cluster_sort(knl7250(), SortCostParams{}, cfg),
               InvalidArgumentError);
  cfg.elements = 100;
  cfg.nic_bw = 0.0;
  EXPECT_THROW(simulate_cluster_sort(knl7250(), SortCostParams{}, cfg),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::knlsim

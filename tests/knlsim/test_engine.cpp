#include "mlm/knlsim/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

FlowSpec flow(double bytes, double peak,
              std::vector<ResourceUse> uses, std::string label = "f") {
  FlowSpec f;
  f.bytes = bytes;
  f.peak_rate = peak;
  f.uses = std::move(uses);
  f.label = std::move(label);
  return f;
}

TEST(SimEngine, SingleFlowRateLimitedByPeak) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 100.0);
  e.start_flow(flow(50.0, 10.0, {{r, 1.0}}));
  e.run_until_idle();
  EXPECT_NEAR(e.now(), 5.0, 1e-9);  // 50 bytes at 10 B/s
}

TEST(SimEngine, SingleFlowRateLimitedByResource) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 20.0);
  e.start_flow(flow(100.0, 1000.0, {{r, 1.0}}));
  e.run_until_idle();
  EXPECT_NEAR(e.now(), 5.0, 1e-9);  // 100 bytes at 20 B/s
}

TEST(SimEngine, SymmetricFlowsShareEvenly) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 30.0);
  for (int i = 0; i < 3; ++i) {
    e.start_flow(flow(100.0, 1000.0, {{r, 1.0}}));
  }
  e.run_until_idle();
  // Each gets 10 B/s -> 10 s, all finish together.
  EXPECT_NEAR(e.now(), 10.0, 1e-9);
}

TEST(SimEngine, MaxMinFairnessWithHeterogeneousPeaks) {
  // Flow A capped at 2 B/s; B and C unbounded by peak.  Capacity 12:
  // A gets 2, B and C get 5 each.
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 12.0);
  e.start_flow(flow(2.0, 2.0, {{r, 1.0}}, "A"));     // finishes at t=1
  e.start_flow(flow(50.0, 1000.0, {{r, 1.0}}, "B"));
  e.start_flow(flow(50.0, 1000.0, {{r, 1.0}}, "C"));
  auto rates = e.current_rates();
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_NEAR(rates[0].rate, 2.0, 1e-9);
  EXPECT_NEAR(rates[1].rate, 5.0, 1e-9);
  EXPECT_NEAR(rates[2].rate, 5.0, 1e-9);

  // After A completes, B and C speed up to 6 each.
  ASSERT_TRUE(e.step());  // A finishes at t=1 (2 bytes / 2 B/s)
  EXPECT_NEAR(e.now(), 1.0, 1e-9);
  rates = e.current_rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0].rate, 6.0, 1e-9);
  EXPECT_NEAR(rates[1].rate, 6.0, 1e-9);
}

TEST(SimEngine, WeightedFlowConsumesWeightTimesRate) {
  // Weight 2 flow on a 10-capacity resource alone: payload rate 5.
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 10.0);
  e.start_flow(flow(10.0, 1000.0, {{r, 2.0}}));
  e.run_until_idle();
  EXPECT_NEAR(e.now(), 2.0, 1e-9);
  // Traffic meter integrates weight * payload.
  EXPECT_NEAR(e.resource_traffic(r), 20.0, 1e-9);
}

TEST(SimEngine, FlowOnTwoResourcesBoundByTighter) {
  SimEngine e;
  const ResourceId a = e.add_resource("a", 100.0);
  const ResourceId b = e.add_resource("b", 7.0);
  e.start_flow(flow(14.0, 1000.0, {{a, 1.0}, {b, 1.0}}));
  e.run_until_idle();
  EXPECT_NEAR(e.now(), 2.0, 1e-9);
  EXPECT_NEAR(e.resource_traffic(a), 14.0, 1e-9);
  EXPECT_NEAR(e.resource_traffic(b), 14.0, 1e-9);
}

TEST(SimEngine, ModelEquation3Reproduced) {
  // Paper Eq. (3): copy threads share DDR once saturated.  20 copy
  // "threads" at S_copy=4.8 demand 96 > DDR_max=90 -> aggregate 90.
  SimEngine e;
  const ResourceId ddr = e.add_resource("ddr", 90.0);
  e.start_flow(flow(180.0, 20 * 4.8, {{ddr, 1.0}}));
  e.run_until_idle();
  EXPECT_NEAR(e.now(), 2.0, 1e-9);

  // 10 threads demand 48 <= 90 -> rate 48.
  SimEngine e2;
  const ResourceId ddr2 = e2.add_resource("ddr", 90.0);
  e2.start_flow(flow(96.0, 10 * 4.8, {{ddr2, 1.0}}));
  e2.run_until_idle();
  EXPECT_NEAR(e2.now(), 2.0, 1e-9);
}

TEST(SimEngine, ModelEquation5Reproduced) {
  // Compute and copy flows share MCDRAM; compute gets the remainder when
  // copy is pinned by its own (DDR) bottleneck.
  SimEngine e;
  const ResourceId ddr = e.add_resource("ddr", 90.0);
  const ResourceId mc = e.add_resource("mcdram", 400.0);
  // Copy: 20 threads, peak 96, DDR+MCDRAM -> rate 90.
  e.start_flow(flow(9000.0, 96.0, {{ddr, 1.0}, {mc, 1.0}}, "copy"));
  // Compute: demand far above the 310 left in MCDRAM.
  e.start_flow(flow(31000.0, 1600.0, {{mc, 1.0}}, "comp"));
  auto rates = e.current_rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0].rate, 90.0, 1e-6);
  EXPECT_NEAR(rates[1].rate, 310.0, 1e-6);
}

TEST(SimEngine, CompletionCallbackStartsNextFlow) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 10.0);
  double second_done_at = -1.0;
  FlowSpec first = flow(10.0, 1000.0, {{r, 1.0}}, "first");
  first.on_complete = [&] {
    FlowSpec second = flow(20.0, 1000.0, {{r, 1.0}}, "second");
    second.on_complete = [&] { second_done_at = e.now(); };
    e.start_flow(std::move(second));
  };
  e.start_flow(std::move(first));
  e.run_until_idle();
  EXPECT_NEAR(second_done_at, 3.0, 1e-9);  // 1s + 2s
}

TEST(SimEngine, ZeroByteFlowCompletesImmediately) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 10.0);
  bool fired = false;
  FlowSpec f = flow(0.0, 1.0, {{r, 1.0}});
  f.on_complete = [&] { fired = true; };
  e.start_flow(std::move(f));
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(SimEngine, StepReturnsFalseWhenIdle) {
  SimEngine e;
  EXPECT_FALSE(e.step());
}

TEST(SimEngine, TrafficMeterResets) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 10.0);
  e.start_flow(flow(10.0, 100.0, {{r, 1.0}}));
  e.run_until_idle();
  EXPECT_GT(e.resource_traffic(r), 0.0);
  e.reset_traffic();
  EXPECT_DOUBLE_EQ(e.resource_traffic(r), 0.0);
}

TEST(SimEngine, RejectsBadFlows) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 10.0);
  EXPECT_THROW(e.start_flow(flow(-1.0, 1.0, {{r, 1.0}})),
               InvalidArgumentError);
  EXPECT_THROW(e.start_flow(flow(1.0, 0.0, {{r, 1.0}})),
               InvalidArgumentError);
  EXPECT_THROW(e.start_flow(flow(1.0, 1.0, {{99, 1.0}})),
               InvalidArgumentError);
  EXPECT_THROW(e.start_flow(flow(1.0, 1.0, {{r, 0.0}})),
               InvalidArgumentError);
  EXPECT_THROW(e.start_flow(flow(1.0, kUnbounded, {})),
               InvalidArgumentError);
}

TEST(SimEngine, RejectsBadResources) {
  SimEngine e;
  EXPECT_THROW(e.add_resource("zero", 0.0), InvalidArgumentError);
  EXPECT_THROW(e.resource_name(3), InvalidArgumentError);
}

TEST(RunPhase, TimeIsMaxOfComponents) {
  SimEngine e;
  const ResourceId a = e.add_resource("a", 100.0);
  const ResourceId b = e.add_resource("b", 100.0);
  const double t = run_phase(
      e, {flow(100.0, 10.0, {{a, 1.0}}),    // 10 s
          flow(100.0, 50.0, {{b, 1.0}})});  // 2 s
  EXPECT_NEAR(t, 10.0, 1e-9);
}

TEST(RunPhase, RequiresIdleEngine) {
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 10.0);
  e.start_flow(flow(100.0, 1.0, {{r, 1.0}}));
  EXPECT_THROW(run_phase(e, {flow(1.0, 1.0, {{r, 1.0}})}),
               InvalidArgumentError);
}

TEST(SimEngine, ManyFlowsConservation) {
  // Total completed bytes equals the sum of all flow sizes.
  SimEngine e;
  const ResourceId r = e.add_resource("bw", 13.0);
  double total = 0.0;
  for (int i = 1; i <= 20; ++i) {
    e.start_flow(flow(i * 3.0, 0.5 + i * 0.3, {{r, 1.0}}));
    total += i * 3.0;
  }
  e.run_until_idle();
  EXPECT_NEAR(e.completed_bytes(), total, total * 1e-9);
  EXPECT_NEAR(e.resource_traffic(r), total, total * 1e-9);
}

}  // namespace
}  // namespace mlm::knlsim

// Property tests for the flow engine's max-min fair allocation against
// an independent reference: randomized flow networks are solved with a
// tiny-step progressive-filling loop (slow, obviously-correct) and the
// engine's closed-form allocation must match.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mlm/knlsim/engine.h"
#include "mlm/support/rng.h"

namespace mlm::knlsim {
namespace {

struct RefFlow {
  double peak;
  std::vector<ResourceUse> uses;
};

/// Reference allocator: raise all unfrozen rates in epsilon steps until
/// a peak or capacity binds.  O(1/epsilon); only for tests.
std::vector<double> reference_maxmin(const std::vector<double>& caps,
                                     const std::vector<RefFlow>& flows,
                                     double epsilon) {
  std::vector<double> rate(flows.size(), 0.0);
  std::vector<bool> frozen(flows.size(), false);
  for (;;) {
    // Which flows can still grow by epsilon without violating anything?
    std::vector<double> used(caps.size(), 0.0);
    for (std::size_t f = 0; f < flows.size(); ++f) {
      for (const auto& u : flows[f].uses) {
        used[u.resource] += u.weight * rate[f];
      }
    }
    bool any = false;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      if (rate[f] + epsilon > flows[f].peak) {
        frozen[f] = true;
        continue;
      }
      bool fits = true;
      for (const auto& u : flows[f].uses) {
        // All unfrozen flows on a resource grow together; approximate
        // by per-flow headroom check (valid in the epsilon limit).
        double grow = 0.0;
        for (std::size_t g = 0; g < flows.size(); ++g) {
          if (frozen[g]) continue;
          for (const auto& v : flows[g].uses) {
            if (v.resource == u.resource) grow += v.weight * epsilon;
          }
        }
        if (used[u.resource] + grow > caps[u.resource] + 1e-12) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        frozen[f] = true;
        continue;
      }
      any = true;
    }
    if (!any) break;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!frozen[f]) rate[f] += epsilon;
    }
  }
  return rate;
}

class EngineMaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(EngineMaxMinProperty, MatchesReferenceOnRandomNetworks) {
  mlm::Xoshiro256ss rng(GetParam() * 977 + 5);
  const std::size_t n_res = 1 + rng.bounded(4);
  const std::size_t n_flows = 1 + rng.bounded(8);

  SimEngine engine;
  std::vector<double> caps;
  for (std::size_t r = 0; r < n_res; ++r) {
    caps.push_back(10.0 + static_cast<double>(rng.bounded(90)));
    engine.add_resource("r" + std::to_string(r), caps.back());
  }

  std::vector<RefFlow> flows;
  for (std::size_t f = 0; f < n_flows; ++f) {
    RefFlow rf;
    rf.peak = 1.0 + static_cast<double>(rng.bounded(50));
    const std::size_t uses = 1 + rng.bounded(n_res);
    std::vector<bool> picked(n_res, false);
    for (std::size_t u = 0; u < uses; ++u) {
      const auto r = static_cast<ResourceId>(rng.bounded(n_res));
      if (picked[r]) continue;
      picked[r] = true;
      rf.uses.push_back(
          {r, 0.25 + static_cast<double>(rng.bounded(8)) * 0.25});
    }
    flows.push_back(rf);
  }

  // Start engine flows with huge byte counts so none completes while we
  // read the allocation.
  for (const RefFlow& rf : flows) {
    FlowSpec spec;
    spec.bytes = 1e18;
    spec.peak_rate = rf.peak;
    spec.uses = rf.uses;
    engine.start_flow(std::move(spec));
  }
  const auto rates = engine.current_rates();
  const auto ref = reference_maxmin(caps, flows, 1e-3);

  ASSERT_EQ(rates.size(), flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(rates[f].rate, ref[f], 0.05)
        << "flow " << f << " of " << flows.size() << " (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineMaxMinProperty,
                         ::testing::Range(0, 20));

TEST(EngineInvariants, NoResourceEverOverCapacity) {
  mlm::Xoshiro256ss rng(123);
  SimEngine engine;
  std::vector<double> caps{50.0, 80.0, 25.0};
  std::vector<ResourceId> ids;
  for (double c : caps) {
    ids.push_back(engine.add_resource("r", c));
  }
  // Random flows arriving over time; after each event, the allocation
  // must respect every capacity.
  for (int i = 0; i < 30; ++i) {
    FlowSpec spec;
    spec.bytes = 10.0 + static_cast<double>(rng.bounded(200));
    spec.peak_rate = 1.0 + static_cast<double>(rng.bounded(40));
    spec.uses.push_back({ids[rng.bounded(3)], 1.0});
    if (rng.bounded(2)) spec.uses.push_back({ids[rng.bounded(3)], 0.5});
    engine.start_flow(std::move(spec));

    const auto rates = engine.current_rates();
    std::vector<double> used(caps.size(), 0.0);
    // Re-deriving usage needs the specs; instead assert aggregate rate
    // conservation: total payload rate cannot exceed total capacity.
    double total_rate = 0.0;
    for (const auto& r : rates) total_rate += r.rate;
    double total_cap = 0.0;
    for (double c : caps) total_cap += c;
    EXPECT_LE(total_rate, total_cap * (1.0 + 1e-9));
    if (i % 5 == 4) engine.step();
  }
  engine.run_until_idle();
  EXPECT_EQ(engine.active_flows(), 0u);
}

TEST(EngineInvariants, CompletionOrderRespectsSizes) {
  // Identical flows complete in arrival order; a much smaller flow
  // completes first.
  SimEngine engine;
  const ResourceId r = engine.add_resource("bw", 30.0);
  std::vector<int> order;
  auto add = [&](double bytes, int tag) {
    FlowSpec f;
    f.bytes = bytes;
    f.peak_rate = 1e9;
    f.uses = {{r, 1.0}};
    f.on_complete = [&order, tag] { order.push_back(tag); };
    engine.start_flow(std::move(f));
  };
  add(300.0, 1);
  add(300.0, 2);
  add(3.0, 3);
  engine.run_until_idle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);
}

}  // namespace
}  // namespace mlm::knlsim

#include "mlm/knlsim/knl_node.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::knlsim {
namespace {

TEST(KnlNode, FlatModeScratchpadIsFullMcdram) {
  KnlNode node(knl7250(), McdramMode::Flat);
  EXPECT_TRUE(node.has_scratchpad());
  EXPECT_FALSE(node.has_hardware_cache());
  EXPECT_DOUBLE_EQ(node.scratchpad_bytes(),
                   static_cast<double>(GiB(16)));
}

TEST(KnlNode, CacheModeHasNoScratchpad) {
  KnlNode node(knl7250(), McdramMode::Cache);
  EXPECT_FALSE(node.has_scratchpad());
  EXPECT_TRUE(node.has_hardware_cache());
  EXPECT_DOUBLE_EQ(node.scratchpad_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(node.cache_config().capacity_bytes,
                   static_cast<double>(GiB(16)));
}

TEST(KnlNode, HybridSplits) {
  KnlNode node(knl7250(), McdramMode::Hybrid, 0.5);
  EXPECT_TRUE(node.has_scratchpad());
  EXPECT_TRUE(node.has_hardware_cache());
  EXPECT_DOUBLE_EQ(node.scratchpad_bytes(),
                   static_cast<double>(GiB(16)) / 2);
  EXPECT_DOUBLE_EQ(node.cache_config().capacity_bytes,
                   static_cast<double>(GiB(16)) / 2);
}

TEST(KnlNode, CopyFlowUsesBothLevels) {
  KnlNode node(knl7250(), McdramMode::Flat);
  const FlowSpec f = node.copy_flow(1e9, 8);
  EXPECT_DOUBLE_EQ(f.peak_rate, 8 * 4.8e9);
  ASSERT_EQ(f.uses.size(), 3u);  // ddr + mcdram + noc
  EXPECT_EQ(f.uses[0].resource, node.ddr_resource());
  EXPECT_DOUBLE_EQ(f.uses[0].weight, 1.0);
  EXPECT_EQ(f.uses[1].resource, node.mcdram_resource());
  EXPECT_DOUBLE_EQ(f.uses[1].weight, 1.0);
}

TEST(KnlNode, HybridCopyPollutesCache) {
  KnlNode node(knl7250(), McdramMode::Hybrid);
  const FlowSpec f = node.copy_flow(1e9, 8);
  // The MCDRAM side carries the scratchpad write plus the cache sweep.
  EXPECT_DOUBLE_EQ(f.uses[1].weight, 2.0);
}

TEST(KnlNode, CopyFlowRequiresScratchpad) {
  KnlNode node(knl7250(), McdramMode::Cache);
  EXPECT_THROW(node.copy_flow(1e9, 8), Error);
}

TEST(KnlNode, StreamFlowsTargetTheirLevel) {
  KnlNode node(knl7250(), McdramMode::Flat);
  const FlowSpec ddr = node.ddr_stream_flow(1e9, 4, 5e9);
  EXPECT_EQ(ddr.uses[0].resource, node.ddr_resource());
  EXPECT_DOUBLE_EQ(ddr.peak_rate, 2e10);
  const FlowSpec mc = node.mcdram_stream_flow(1e9, 4, 5e9);
  EXPECT_EQ(mc.uses[0].resource, node.mcdram_resource());
}

TEST(KnlNode, CachedStreamFallsBackWithoutCache) {
  KnlNode node(knl7250(), McdramMode::DdrOnly);
  const FlowSpec f = node.cached_stream_flow(1e9, 1e9, 1.0, 4, 5e9, 1);
  // Pure DDR stream: one DDR use (plus NoC).
  ASSERT_EQ(f.uses.size(), 2u);
  EXPECT_EQ(f.uses[0].resource, node.ddr_resource());
  EXPECT_DOUBLE_EQ(f.uses[0].weight, 1.0);
}

TEST(KnlNode, CachedStreamSplitsTrafficInCacheMode) {
  KnlNode node(knl7250(), McdramMode::Cache);
  // Small working set, many passes: mostly hits -> little DDR weight.
  const FlowSpec f =
      node.cached_stream_flow(100e9, 1e9, 100.0, 4, 5e9, 1);
  ASSERT_EQ(f.uses.size(), 3u);
  EXPECT_LT(f.uses[0].weight, 0.1);   // ddr
  EXPECT_GT(f.uses[1].weight, 0.9);   // mcdram
}

TEST(KnlNode, DncComputeFlowMoreDdrForBiggerWorkingSets) {
  KnlNode node(knl7250(), McdramMode::ImplicitCache);
  auto ddr_weight = [&](const FlowSpec& f) {
    for (const ResourceUse& u : f.uses) {
      if (u.resource == node.ddr_resource()) return u.weight;
    }
    return 0.0;  // all-hit flows carry no DDR use at all
  };
  const FlowSpec small =
      node.dnc_compute_flow(1e9, 1e9, 512e3, 4, 5e9, 1);
  const FlowSpec big =
      node.dnc_compute_flow(1e9, 64e9, 512e3, 4, 5e9, 1);
  EXPECT_LT(ddr_weight(small), ddr_weight(big));
}

TEST(KnlNode, NocWeightIsSumOfMemoryWeights) {
  KnlNode node(knl7250(), McdramMode::Flat);
  const FlowSpec f = node.copy_flow(1e9, 8);
  EXPECT_DOUBLE_EQ(f.uses[2].weight,
                   f.uses[0].weight + f.uses[1].weight);
}

TEST(KnlNode, CustomFlowPassesThrough) {
  KnlNode node(knl7250(), McdramMode::Flat);
  const FlowSpec f = node.custom_flow(5.0, 7.0, 0.25, 1.75, "x");
  EXPECT_DOUBLE_EQ(f.bytes, 5.0);
  EXPECT_DOUBLE_EQ(f.peak_rate, 7.0);
  EXPECT_EQ(f.label, "x");
  EXPECT_DOUBLE_EQ(f.uses[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(f.uses[1].weight, 1.75);
}

TEST(KnlNode, RejectsBadArguments) {
  KnlNode node(knl7250(), McdramMode::Flat);
  EXPECT_THROW(node.copy_flow(1e9, 0), InvalidArgumentError);
  EXPECT_THROW(node.ddr_stream_flow(1e9, 0, 1e9), InvalidArgumentError);
  EXPECT_THROW(node.mcdram_stream_flow(1e9, 4, 0.0),
               InvalidArgumentError);
  EXPECT_THROW(KnlNode(knl7250(), McdramMode::Hybrid, 0.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::knlsim

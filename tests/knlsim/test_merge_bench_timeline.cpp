#include "mlm/knlsim/merge_bench_timeline.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

MergeBenchConfig cfg(unsigned repeats, std::size_t copy_threads) {
  MergeBenchConfig c;
  c.repeats = repeats;
  c.copy_threads = copy_threads;
  return c;
}

TEST(MergeBenchTimeline, BasicRunProducesSteps) {
  const MergeBenchResult r = simulate_merge_bench(knl7250(), cfg(1, 8));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(r.chunks, 3u);  // 14.9 GB over ~5.7 GB chunks
  EXPECT_EQ(r.step_seconds.size(), r.chunks + 2);
  EXPECT_EQ(r.compute_threads, 256u - 16u);
}

TEST(MergeBenchTimeline, DdrTrafficIsTwiceDataSize) {
  // Each byte is copied in and copied out exactly once.
  const MergeBenchConfig c = cfg(1, 8);
  const MergeBenchResult r = simulate_merge_bench(knl7250(), c);
  EXPECT_NEAR(r.ddr_traffic_bytes, 2.0 * c.data_bytes,
              c.data_bytes * 1e-6);
}

TEST(MergeBenchTimeline, McdramTrafficGrowsWithRepeats) {
  const double t1 =
      simulate_merge_bench(knl7250(), cfg(1, 8)).mcdram_traffic_bytes;
  const double t8 =
      simulate_merge_bench(knl7250(), cfg(8, 8)).mcdram_traffic_bytes;
  // Copy traffic constant, compute traffic scales with repeats.
  EXPECT_GT(t8, 4.0 * t1 / 2.0);
  EXPECT_GT(t8, t1);
}

TEST(MergeBenchTimeline, TimeIncreasesWithRepeats) {
  // With few copy threads the pipeline is copy-bound at low repeats
  // (time flat) and compute-bound at high repeats (time grows): overall
  // non-decreasing, strictly growing once compute dominates.
  double prev = 0.0;
  for (unsigned rep : {1u, 4u, 16u, 64u}) {
    const double t = simulate_merge_bench(knl7250(), cfg(rep, 2)).seconds;
    EXPECT_GE(t, prev * (1 - 1e-12)) << rep;
    prev = t;
  }
  const double t32 = simulate_merge_bench(knl7250(), cfg(32, 2)).seconds;
  const double t128 =
      simulate_merge_bench(knl7250(), cfg(128, 2)).seconds;
  EXPECT_GT(t128, 2.0 * t32);
}

TEST(MergeBenchTimeline, OptimalCopyThreadsDecreaseWithRepeats) {
  // The paper's central empirical claim (Fig. 8b / Table 3): as compute
  // work grows, fewer copy threads are needed.
  const std::vector<std::size_t> powers{1, 2, 4, 8, 16, 32};
  const std::size_t at1 = best_copy_threads(knl7250(), cfg(1, 1), powers);
  const std::size_t at16 =
      best_copy_threads(knl7250(), cfg(16, 1), powers);
  const std::size_t at64 =
      best_copy_threads(knl7250(), cfg(64, 1), powers);
  const std::size_t at128 =
      best_copy_threads(knl7250(), cfg(128, 1), powers);
  EXPECT_GE(at1, at16);
  EXPECT_GE(at16, at64);
  EXPECT_GT(at1, at64);
  // The paper's empirical optimum reaches 1 at repeats=64; our simulated
  // pipeline gets there one grid step later (its fill/drain steps favour
  // a second copy thread slightly longer).
  EXPECT_LE(at64, 2u);
  EXPECT_EQ(at128, 1u);
}

TEST(MergeBenchTimeline, SweepReturnsOneResultPerCount) {
  const auto sweep =
      sweep_copy_threads(knl7250(), cfg(4, 1), {1, 2, 4, 8});
  ASSERT_EQ(sweep.size(), 4u);
  for (const auto& r : sweep) EXPECT_GT(r.seconds, 0.0);
}

TEST(MergeBenchTimeline, CustomChunkSizeRespected) {
  MergeBenchConfig c = cfg(1, 4);
  c.chunk_bytes = 1e9;
  const MergeBenchResult r = simulate_merge_bench(knl7250(), c);
  EXPECT_EQ(r.chunks, 15u);  // ceil(14.9e9 / 1e9)
}

TEST(MergeBenchTimeline, OversizedChunkRejected) {
  MergeBenchConfig c = cfg(1, 4);
  c.chunk_bytes = 8e9;  // 3 buffers = 24 GB > 16 GB
  EXPECT_THROW(simulate_merge_bench(knl7250(), c), Error);
}

TEST(MergeBenchTimeline, RejectsBadConfigs) {
  MergeBenchConfig c = cfg(1, 4);
  c.data_bytes = 0.0;
  EXPECT_THROW(simulate_merge_bench(knl7250(), c), InvalidArgumentError);
  c = cfg(1, 128);
  c.total_threads = 256;  // 2*128 leaves no compute
  EXPECT_THROW(simulate_merge_bench(knl7250(), c), InvalidArgumentError);
  c = cfg(0, 4);
  EXPECT_THROW(simulate_merge_bench(knl7250(), c), InvalidArgumentError);
}

TEST(MergeBenchTimeline, PipelineFillAndDrainVisible) {
  const MergeBenchResult r = simulate_merge_bench(knl7250(), cfg(1, 8));
  // First step has only a copy-in, last only a copy-out: both shorter
  // than a steady-state step for repeats=1 (copy-bound workload).
  ASSERT_GE(r.step_seconds.size(), 4u);
  const double steady = r.step_seconds[r.step_seconds.size() / 2];
  EXPECT_LE(r.step_seconds.front(), steady * (1 + 1e-9));
  EXPECT_LE(r.step_seconds.back(), steady * (1 + 1e-9));
}

}  // namespace
}  // namespace mlm::knlsim

// Tests for the §6 NVM projection timeline.
#include "mlm/knlsim/nvm_timeline.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

// 24e9 int64 = 192 GB: twice the 96 GB DDR, twelve times the MCDRAM.
constexpr std::uint64_t kBig = 24'000'000'000ull;

NvmSortResult run(NvmStrategy strategy, std::uint64_t n = kBig,
                  bool overlap = false) {
  NvmSortConfig cfg;
  cfg.strategy = strategy;
  cfg.elements = n;
  cfg.overlap_staging = overlap;
  return simulate_nvm_sort(knl7250(), optane_pmm(), SortCostParams{}, cfg);
}

TEST(NvmTimeline, AllStrategiesProducePositiveTimes) {
  for (NvmStrategy s :
       {NvmStrategy::DoubleChunked, NvmStrategy::DirectToMcdram,
        NvmStrategy::InNvm}) {
    const NvmSortResult r = run(s);
    EXPECT_GT(r.seconds, 0.0) << to_string(s);
    EXPECT_GT(r.nvm_read_bytes, 0.0) << to_string(s);
  }
}

TEST(NvmTimeline, ChunkedStrategiesCrushInNvm) {
  // The §6 exploration's finding: *chunking* through the upper levels is
  // what matters — both chunked strategies beat sorting in place on NVM
  // by a wide margin, and at 2018-era Optane bandwidths they are within
  // ~15% of each other (double chunking's fewer external runs roughly
  // cancel its extra DDR-level merge pass).
  const double dbl = run(NvmStrategy::DoubleChunked).seconds;
  const double direct = run(NvmStrategy::DirectToMcdram).seconds;
  const double raw = run(NvmStrategy::InNvm).seconds;
  EXPECT_LT(dbl, raw / 1.5);
  EXPECT_LT(direct, raw / 1.5);
  EXPECT_NEAR(dbl / direct, 1.0, 0.15);
}

TEST(NvmTimeline, InNvmMovesFarMoreMediaTraffic) {
  const NvmSortResult dbl = run(NvmStrategy::DoubleChunked);
  const NvmSortResult raw = run(NvmStrategy::InNvm);
  EXPECT_GT(raw.nvm_read_bytes, 2.0 * dbl.nvm_read_bytes);
}

TEST(NvmTimeline, DoubleChunkedUsesExpectedOuterChunks) {
  const NvmSortResult r = run(NvmStrategy::DoubleChunked);
  // 192 GB over 48 GB outer chunks (DDR/2).
  EXPECT_EQ(r.outer_chunks, 4u);
  // Every byte staged in and out once, plus the external merge pass.
  const double bytes = static_cast<double>(kBig) * 8.0;
  EXPECT_NEAR(r.nvm_read_bytes, 2.0 * bytes, bytes * 1e-9);
  EXPECT_NEAR(r.nvm_write_bytes, 2.0 * bytes, bytes * 1e-9);
}

TEST(NvmTimeline, OverlapHidesStagingWithSmallPool) {
  // As with buffered MLM-sort: overlap pays when the staging pool is
  // small (4 threads here), because the staged loads hide completely
  // while barely shrinking the compute pool.
  auto with = [](bool overlap) {
    NvmSortConfig cfg;
    cfg.strategy = NvmStrategy::DoubleChunked;
    cfg.elements = kBig;
    cfg.staging_threads = 4;
    cfg.overlap_staging = overlap;
    return simulate_nvm_sort(knl7250(), optane_pmm(), SortCostParams{},
                             cfg);
  };
  const NvmSortResult plain = with(false);
  const NvmSortResult overlapped = with(true);
  EXPECT_LT(overlapped.seconds, plain.seconds);
  EXPECT_LT(overlapped.staging_seconds, plain.staging_seconds);
}

TEST(NvmTimeline, BigStagingPoolMakesOverlapCounterproductive) {
  // With 16 staging threads the NVM read bandwidth is already saturated
  // unhidden loads are short, and donating 16 threads slows every inner
  // sort: overlap loses — the same copy-pool economics the paper's
  // model captures for MCDRAM.
  const NvmSortResult plain = run(NvmStrategy::DoubleChunked, kBig, false);
  const NvmSortResult overlapped =
      run(NvmStrategy::DoubleChunked, kBig, true);
  EXPECT_GT(overlapped.seconds, plain.seconds);
}

TEST(NvmTimeline, WriteBandwidthLimitsMergePhase) {
  // The external merge streams the full data set through the 11 GB/s
  // NVM write bandwidth — it cannot be faster than that.
  const NvmSortResult r = run(NvmStrategy::DoubleChunked);
  const double bytes = static_cast<double>(kBig) * 8.0;
  EXPECT_GE(r.merging_seconds, bytes / optane_pmm().write_bw * (1 - 1e-9));
}

TEST(NvmTimeline, ScalesWithProblemSize) {
  const double t1 = run(NvmStrategy::DoubleChunked, kBig / 2).seconds;
  const double t2 = run(NvmStrategy::DoubleChunked, kBig).seconds;
  EXPECT_GT(t2, 1.8 * t1);
}

TEST(NvmTimeline, RejectsBadConfigs) {
  NvmSortConfig cfg;
  cfg.elements = 0;
  EXPECT_THROW(
      simulate_nvm_sort(knl7250(), optane_pmm(), SortCostParams{}, cfg),
      InvalidArgumentError);
  cfg.elements = 100;
  cfg.staging_threads = cfg.threads;
  EXPECT_THROW(
      simulate_nvm_sort(knl7250(), optane_pmm(), SortCostParams{}, cfg),
      InvalidArgumentError);
  cfg = NvmSortConfig{};
  cfg.elements = kBig;
  cfg.outer_chunk_elements = 13'000'000'000ull;  // 104 GB > DDR/2
  EXPECT_THROW(
      simulate_nvm_sort(knl7250(), optane_pmm(), SortCostParams{}, cfg),
      InvalidArgumentError);
}

TEST(NvmConfigTest, ValidatesAndDefaults) {
  const NvmConfig c = optane_pmm();
  EXPECT_GT(c.read_bw, c.write_bw);  // 3D-XPoint asymmetry
  NvmConfig bad = c;
  bad.write_bw = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::knlsim

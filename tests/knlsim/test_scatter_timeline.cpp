#include "mlm/knlsim/scatter_timeline.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

ScatterSimResult run(ScatterMode mode, double table_bytes,
                     std::uint64_t updates = 10'000'000'000ull,
                     double hot = 0.0) {
  ScatterSimConfig cfg;
  cfg.mode = mode;
  cfg.table_bytes = table_bytes;
  cfg.updates = updates;
  cfg.hot_fraction = hot;
  return simulate_scatter(knl7250(), ScatterCostParams{}, cfg);
}

constexpr double kGB = 1e9;

TEST(ScatterTimeline, AllModesProducePositiveRates) {
  for (ScatterMode m : {ScatterMode::DirectDdr, ScatterMode::DirectCache,
                        ScatterMode::PartitionedFlat}) {
    const ScatterSimResult r = run(m, 8.0 * kGB);
    EXPECT_GT(r.seconds, 0.0) << to_string(m);
    EXPECT_GT(r.updates_per_second, 0.0) << to_string(m);
  }
}

TEST(ScatterTimeline, CacheModeWinsWhenTableFitsMcdram) {
  // 8 GB table < 16 GiB MCDRAM: hardware cache absorbs the scatter with
  // no algorithm changes — the no-effort path works here.
  const double ddr = run(ScatterMode::DirectDdr, 8.0 * kGB).seconds;
  const double cache = run(ScatterMode::DirectCache, 8.0 * kGB).seconds;
  EXPECT_LT(cache, ddr / 2.0);
}

TEST(ScatterTimeline, PartitioningWinsWhenTableExceedsMcdram) {
  // 64 GB table >> MCDRAM: the cache thrashes; the two-pass chunked
  // strategy converts random misses into streams and wins — the §6
  // question ("is chunking applicable?") answered positively.
  const double cache = run(ScatterMode::DirectCache, 64.0 * kGB).seconds;
  const double part =
      run(ScatterMode::PartitionedFlat, 64.0 * kGB).seconds;
  EXPECT_LT(part, cache * 0.75);
  // Update density drives the margin: partitioning amortizes its fixed
  // table-staging cost over the updates, so quadrupling the updates
  // widens its advantage.
  const double cache_dense =
      run(ScatterMode::DirectCache, 64.0 * kGB, 40'000'000'000ull)
          .seconds;
  const double part_dense =
      run(ScatterMode::PartitionedFlat, 64.0 * kGB, 40'000'000'000ull)
          .seconds;
  EXPECT_LT(part_dense / cache_dense, part / cache);
}

TEST(ScatterTimeline, CrossoverMovesWithTableSize) {
  // Small tables: direct-cache beats partitioned (no partition pass to
  // pay).  Large tables: reversed.
  const double small_cache =
      run(ScatterMode::DirectCache, 1.0 * kGB).seconds;
  const double small_part =
      run(ScatterMode::PartitionedFlat, 1.0 * kGB).seconds;
  EXPECT_LT(small_cache, small_part);

  const double big_cache =
      run(ScatterMode::DirectCache, 128.0 * kGB).seconds;
  const double big_part =
      run(ScatterMode::PartitionedFlat, 128.0 * kGB).seconds;
  EXPECT_LT(big_part, big_cache);
}

TEST(ScatterTimeline, HotKeysHelpDirectModes) {
  const double cold = run(ScatterMode::DirectDdr, 64.0 * kGB).seconds;
  const double hot =
      run(ScatterMode::DirectDdr, 64.0 * kGB, 10'000'000'000ull, 0.9)
          .seconds;
  EXPECT_LT(hot, cold / 3.0);
}

TEST(ScatterTimeline, PartitionedBucketsScaleWithTable) {
  // Cache-partitioned sizing: slices target the aggregate L2 footprint
  // (256 threads x 512 KiB = 128 MiB), so bucket count grows linearly
  // with the table.
  const ScatterSimResult small =
      run(ScatterMode::PartitionedFlat, 8.0 * kGB);
  const ScatterSimResult big =
      run(ScatterMode::PartitionedFlat, 64.0 * kGB);
  EXPECT_GE(small.buckets, 32u);
  EXPECT_NEAR(static_cast<double>(big.buckets) / small.buckets, 8.0,
              0.5);
}

TEST(ScatterTimeline, DirectDdrTrafficIsLineAmplified) {
  // 10e9 cold updates to a huge table: each moves a 64 B line both ways.
  const ScatterSimResult r = run(ScatterMode::DirectDdr, 512.0 * kGB);
  EXPECT_NEAR(r.ddr_traffic_bytes, 10e9 * 128.0, 10e9 * 128.0 * 0.02);
}

TEST(ScatterTimeline, RejectsBadConfigs) {
  ScatterSimConfig cfg;
  cfg.updates = 0;
  cfg.table_bytes = 1e9;
  EXPECT_THROW(simulate_scatter(knl7250(), ScatterCostParams{}, cfg),
               InvalidArgumentError);
  cfg.updates = 100;
  cfg.table_bytes = 0.0;
  EXPECT_THROW(simulate_scatter(knl7250(), ScatterCostParams{}, cfg),
               InvalidArgumentError);
  cfg.table_bytes = 1e9;
  cfg.hot_fraction = 1.5;
  EXPECT_THROW(simulate_scatter(knl7250(), ScatterCostParams{}, cfg),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::knlsim

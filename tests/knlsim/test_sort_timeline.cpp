#include "mlm/knlsim/sort_timeline.h"

#include <gtest/gtest.h>

#include <tuple>

#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

SortRunResult run(SortAlgo algo, std::uint64_t n,
                  SimOrder order = SimOrder::Random,
                  std::uint64_t megachunk = 0) {
  SortRunConfig cfg;
  cfg.algo = algo;
  cfg.order = order;
  cfg.elements = n;
  cfg.megachunk_elements = megachunk;
  return simulate_sort(knl7250(), SortCostParams{}, cfg);
}

constexpr std::uint64_t k2B = 2'000'000'000ull;
constexpr std::uint64_t k6B = 6'000'000'000ull;

TEST(SortTimeline, AllAlgorithmsProducePositiveTimes) {
  for (SortAlgo a :
       {SortAlgo::GnuFlat, SortAlgo::GnuCache, SortAlgo::MlmDdr,
        SortAlgo::MlmSort, SortAlgo::MlmImplicit, SortAlgo::BasicChunked}) {
    const SortRunResult r = run(a, k2B);
    EXPECT_GT(r.seconds, 0.0) << to_string(a);
    EXPECT_FALSE(r.phases.empty()) << to_string(a);
    EXPECT_GT(r.ddr_traffic_bytes, 0.0) << to_string(a);
  }
}

TEST(SortTimeline, Table1OrderingRandom2B) {
  // The paper's headline ordering at 2e9 random elements:
  // GNU-flat > GNU-cache > MLM-ddr > MLM-sort > MLM-implicit.
  const double gnu_flat = run(SortAlgo::GnuFlat, k2B).seconds;
  const double gnu_cache = run(SortAlgo::GnuCache, k2B).seconds;
  const double mlm_ddr = run(SortAlgo::MlmDdr, k2B).seconds;
  const double mlm_sort = run(SortAlgo::MlmSort, k2B).seconds;
  const double mlm_impl = run(SortAlgo::MlmImplicit, k2B).seconds;
  EXPECT_GT(gnu_flat, gnu_cache);
  EXPECT_GT(gnu_cache, mlm_ddr);
  EXPECT_GT(mlm_ddr, mlm_sort);
  EXPECT_GT(mlm_sort, mlm_impl);
}

TEST(SortTimeline, SpeedupOverGnuFlatInPaperBand) {
  // §6: "speedup of approximately 1.6-1.9X (depending on input order)"
  // for the best MLM variant over GNU-flat.
  for (SimOrder order : {SimOrder::Random, SimOrder::Reverse}) {
    const double gnu = run(SortAlgo::GnuFlat, k2B, order).seconds;
    const double best =
        std::min(run(SortAlgo::MlmSort, k2B, order).seconds,
                 run(SortAlgo::MlmImplicit, k2B, order).seconds);
    const double speedup = gnu / best;
    EXPECT_GT(speedup, 1.4) << to_string(order);
    EXPECT_LT(speedup, 2.3) << to_string(order);
  }
}

TEST(SortTimeline, TimeGrowsSuperlinearlyWithN) {
  for (SortAlgo a : {SortAlgo::GnuFlat, SortAlgo::MlmSort}) {
    const double t2 = run(a, k2B).seconds;
    const double t4 = run(a, 2 * k2B).seconds;
    const double t6 = run(a, 3 * k2B).seconds;
    EXPECT_GT(t4, 1.9 * t2) << to_string(a);
    EXPECT_GT(t6, 1.4 * t4) << to_string(a);
  }
}

TEST(SortTimeline, ReverseInputFasterThanRandom) {
  for (SortAlgo a : {SortAlgo::GnuFlat, SortAlgo::MlmDdr,
                     SortAlgo::MlmSort, SortAlgo::MlmImplicit}) {
    const double random = run(a, k2B, SimOrder::Random).seconds;
    const double reverse = run(a, k2B, SimOrder::Reverse).seconds;
    EXPECT_LT(reverse, random) << to_string(a);
  }
}

TEST(SortTimeline, MlmExploitsReverseMoreThanGnu) {
  // §4.1: "reversed input arrays have structure that our MLM-sort
  // variants exploit more effectively than the stock GNU algorithms."
  const double gnu_ratio =
      run(SortAlgo::GnuFlat, k2B, SimOrder::Random).seconds /
      run(SortAlgo::GnuFlat, k2B, SimOrder::Reverse).seconds;
  const double mlm_ratio =
      run(SortAlgo::MlmDdr, k2B, SimOrder::Random).seconds /
      run(SortAlgo::MlmDdr, k2B, SimOrder::Reverse).seconds;
  EXPECT_GT(mlm_ratio, gnu_ratio);
}

TEST(SortTimeline, MlmSortMegachunkMustFitMcdram) {
  // 3e9 elements = 24 GB > 16 GiB MCDRAM (problem must exceed the
  // megachunk so no clamping rescues it).
  EXPECT_THROW(run(SortAlgo::MlmSort, k6B, SimOrder::Random,
                   3'000'000'000ull),
               Error);
}

TEST(SortTimeline, MlmImplicitAllowsOversizedMegachunks) {
  // §4: "MLM-implicit allows megachunk sizes greater than MCDRAM."
  EXPECT_NO_THROW(
      run(SortAlgo::MlmImplicit, k6B, SimOrder::Random, k6B));
}

TEST(SortTimeline, PaperMegachunkDefaults) {
  EXPECT_EQ(paper_megachunk(SortAlgo::MlmSort, k2B), 1'000'000'000ull);
  EXPECT_EQ(paper_megachunk(SortAlgo::MlmSort, k6B), 1'500'000'000ull);
  EXPECT_EQ(paper_megachunk(SortAlgo::MlmImplicit, k6B), k6B);
  EXPECT_EQ(paper_megachunk(SortAlgo::GnuFlat, k2B), k2B);
}

TEST(SortTimeline, ChunkSizeSweepSmallChunksHurtFlatMode) {
  // Figure 7 / §6: small chunks are slower (deep DDR-resident final
  // merge), and "chunk sizes of 1-1.5GB are sufficient to provide
  // near-minimal execution times" — the curve flattens once chunks are
  // large.
  const double t_tiny =
      run(SortAlgo::MlmSort, k6B, SimOrder::Random, 125'000'000ull)
          .seconds;
  const double t_half =
      run(SortAlgo::MlmSort, k6B, SimOrder::Random, 500'000'000ull)
          .seconds;
  const double t_1b =
      run(SortAlgo::MlmSort, k6B, SimOrder::Random, 1'000'000'000ull)
          .seconds;
  const double t_paper =
      run(SortAlgo::MlmSort, k6B, SimOrder::Random, 1'500'000'000ull)
          .seconds;
  const double t_min = std::min({t_half, t_1b, t_paper});
  EXPECT_GT(t_tiny, t_min * 1.01);
  // The paper's chosen megachunk (1.5e9) is near-minimal.
  EXPECT_LT(t_paper, t_min * 1.03);
}

TEST(SortTimeline, ImplicitKeepsImprovingPastMcdramSize) {
  // Figure 7's annotation: "MLM-implicit can continue improving as
  // megachunk size exceeds MCDRAM."
  const double at_mcdram =
      run(SortAlgo::MlmImplicit, k6B, SimOrder::Random, 2'000'000'000ull)
          .seconds;
  const double beyond =
      run(SortAlgo::MlmImplicit, k6B, SimOrder::Random, k6B).seconds;
  EXPECT_LT(beyond, at_mcdram);
}

TEST(SortTimeline, HybridCloseToFlatAtSameChunk) {
  // §4.2: "hybrid mode shows near identical performance to flat, given a
  // chunk size."
  SortRunConfig cfg;
  cfg.algo = SortAlgo::MlmSort;
  cfg.elements = k6B;
  cfg.megachunk_elements = 500'000'000ull;  // fits the hybrid half
  const double flat =
      simulate_sort(knl7250(), SortCostParams{}, cfg).seconds;
  cfg.hybrid = true;
  const double hybrid =
      simulate_sort(knl7250(), SortCostParams{}, cfg).seconds;
  EXPECT_NEAR(hybrid / flat, 1.0, 0.1);
}

TEST(SortTimeline, McdramTrafficOnlyWhenUsed) {
  EXPECT_EQ(run(SortAlgo::GnuFlat, k2B).mcdram_traffic_bytes, 0.0);
  EXPECT_EQ(run(SortAlgo::MlmDdr, k2B).mcdram_traffic_bytes, 0.0);
  EXPECT_GT(run(SortAlgo::MlmSort, k2B).mcdram_traffic_bytes, 0.0);
  EXPECT_GT(run(SortAlgo::GnuCache, k2B).mcdram_traffic_bytes, 0.0);
}

TEST(SortTimeline, BenderDdrTrafficReduction) {
  // §1.2/§2.3: chunking reduces DDR traffic substantially (Bender et al.
  // predicted ~2.5x).
  const double unchunked = run(SortAlgo::GnuFlat, k2B).ddr_traffic_bytes;
  const double chunked = run(SortAlgo::MlmSort, k2B).ddr_traffic_bytes;
  EXPECT_GT(unchunked / chunked, 1.8);
}

TEST(SortTimeline, RejectsBadConfigs) {
  SortRunConfig cfg;
  cfg.elements = 0;
  EXPECT_THROW(simulate_sort(knl7250(), SortCostParams{}, cfg),
               InvalidArgumentError);
  cfg.elements = 100;
  cfg.threads = 0;
  EXPECT_THROW(simulate_sort(knl7250(), SortCostParams{}, cfg),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::knlsim

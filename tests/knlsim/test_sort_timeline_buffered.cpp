// Simulated buffered MLM-sort (§6 future work): copy-in of the next
// megachunk overlapped with the current megachunk's sorting.
#include <gtest/gtest.h>

#include "mlm/knlsim/sort_timeline.h"
#include "mlm/support/error.h"

namespace mlm::knlsim {
namespace {

SortRunResult run_buffered(std::uint64_t n, std::uint64_t mega,
                           bool buffered, std::size_t copy_threads = 8) {
  SortRunConfig cfg;
  cfg.algo = SortAlgo::MlmSort;
  cfg.elements = n;
  cfg.megachunk_elements = mega;
  cfg.buffered_megachunks = buffered;
  cfg.copy_threads = copy_threads;
  return simulate_sort(knl7250(), SortCostParams{}, cfg);
}

constexpr std::uint64_t k6B = 6'000'000'000ull;

TEST(BufferedSortTimeline, HidesCopyInLatencyWithSmallCopyPool) {
  // Same megachunk size (small enough for two buffers): with a SMALL
  // copy pool the buffered variant is faster — all but the first
  // copy-in are hidden and only 2 threads leave the compute pool.
  const double plain =
      run_buffered(k6B, 500'000'000ull, false, 2).seconds;
  const double buffered =
      run_buffered(k6B, 500'000'000ull, true, 2).seconds;
  EXPECT_LT(buffered, plain);
  // The savings are bounded by the total copy time (48 GB over DDR).
  EXPECT_GT(buffered, plain - 48.0 / 90.0 - 0.1);
}

TEST(BufferedSortTimeline, BigCopyPoolCostsMoreThanItHides) {
  // The flip side: donating 32 threads to the copy pool slows the
  // compute-bound sort phases by more than the hidden copies save.
  const double small = run_buffered(k6B, 500'000'000ull, true, 2).seconds;
  const double big = run_buffered(k6B, 500'000'000ull, true, 32).seconds;
  EXPECT_LT(small, big);
}

TEST(BufferedSortTimeline, TwoBuffersMustFit) {
  // 1.5e9-element megachunks need 24 GB for two buffers: rejected.
  EXPECT_THROW(run_buffered(k6B, 1'500'000'000ull, true), Error);
  // The same size unbuffered fits.
  EXPECT_NO_THROW(run_buffered(k6B, 1'500'000'000ull, false));
}

TEST(BufferedSortTimeline, CopyPoolMustLeaveComputeThreads) {
  SortRunConfig cfg;
  cfg.algo = SortAlgo::MlmSort;
  cfg.elements = k6B;
  cfg.megachunk_elements = 500'000'000ull;
  cfg.buffered_megachunks = true;
  cfg.threads = 8;
  cfg.copy_threads = 8;
  EXPECT_THROW(simulate_sort(knl7250(), SortCostParams{}, cfg),
               InvalidArgumentError);
}

TEST(BufferedSortTimeline, TrafficEssentiallyUnchanged) {
  // Overlap changes timing, not the bytes moved: DDR traffic (copies +
  // merges) is identical; MCDRAM traffic shifts by under 2% because the
  // smaller compute pool sorts slightly larger per-thread chunks.
  const SortRunResult plain = run_buffered(k6B, 500'000'000ull, false);
  const SortRunResult buffered = run_buffered(k6B, 500'000'000ull, true);
  EXPECT_NEAR(buffered.ddr_traffic_bytes, plain.ddr_traffic_bytes,
              plain.ddr_traffic_bytes * 1e-9);
  EXPECT_NEAR(buffered.mcdram_traffic_bytes, plain.mcdram_traffic_bytes,
              plain.mcdram_traffic_bytes * 0.02);
}

TEST(BufferedSortTimeline, BestBufferedBeatsPaperConfiguration) {
  // The point of the future-work feature: with overlap, a half-size
  // megachunk configuration can beat the paper's unbuffered best.
  const double paper_best =
      run_buffered(k6B, 0 /* paper default 1.5e9 */, false).seconds;
  const double buffered_best =
      run_buffered(k6B, 1'000'000'000ull, true).seconds;
  EXPECT_LT(buffered_best, paper_best);
}

}  // namespace
}  // namespace mlm::knlsim

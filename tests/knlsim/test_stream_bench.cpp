#include "mlm/knlsim/stream_bench.h"

#include <gtest/gtest.h>

namespace mlm::knlsim {
namespace {

TEST(StreamBench, Table2ValuesRecovered) {
  // The measured-on-substrate values must reproduce the paper's Table 2:
  // the simulator realizes exactly the configured envelope.
  const Table2Measurement m = measure_table2(knl7250());
  EXPECT_NEAR(m.ddr_max, 90e9, 90e9 * 1e-9);
  EXPECT_NEAR(m.mcdram_max, 400e9, 400e9 * 1e-9);
  EXPECT_NEAR(m.s_copy, 4.8e9, 4.8e9 * 1e-9);
  EXPECT_NEAR(m.s_comp, 6.78e9, 6.78e9 * 1e-9);
}

TEST(StreamBench, DdrBandwidthSaturates) {
  const KnlConfig c = knl7250();
  // One thread: S_comp.  272 threads: capped at DDR_max.
  EXPECT_NEAR(ddr_stream_bandwidth(c, 1), c.s_comp, 1e-3);
  EXPECT_NEAR(ddr_stream_bandwidth(c, 272), c.ddr_max_bw, 1e-3);
  // The knee: 90 / 6.78 = 13.3 threads.
  EXPECT_LT(ddr_stream_bandwidth(c, 13), c.ddr_max_bw);
  EXPECT_NEAR(ddr_stream_bandwidth(c, 14), c.ddr_max_bw, 1e-3);
}

TEST(StreamBench, McdramBandwidthSaturatesLater) {
  const KnlConfig c = knl7250();
  // 400 / 6.78 = 59 threads to saturate MCDRAM.
  EXPECT_LT(mcdram_stream_bandwidth(c, 32), c.mcdram_max_bw * 0.99);
  EXPECT_NEAR(mcdram_stream_bandwidth(c, 64), c.mcdram_max_bw, 1e-3);
}

TEST(StreamBench, CopyBandwidthBoundByDdr) {
  const KnlConfig c = knl7250();
  // Copies hit DDR (90) long before MCDRAM (400): payload caps at 90.
  EXPECT_NEAR(copy_bandwidth(c, 272), c.ddr_max_bw, 1e-3);
  EXPECT_NEAR(copy_bandwidth(c, 4), 4 * c.s_copy, 1e-3);
}

TEST(StreamBench, SweepIsMonotoneNonDecreasing) {
  const KnlConfig c = knl7250();
  for (const auto& sweep :
       {sweep_ddr_bandwidth(c, 272), sweep_mcdram_bandwidth(c, 272),
        sweep_copy_bandwidth(c, 272)}) {
    ASSERT_GE(sweep.size(), 2u);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_GE(sweep[i].bandwidth, sweep[i - 1].bandwidth * (1 - 1e-9));
      EXPECT_GT(sweep[i].threads, sweep[i - 1].threads);
    }
    // The sweep ends at the requested max thread count.
    EXPECT_EQ(sweep.back().threads, 272u);
  }
}

}  // namespace
}  // namespace mlm::knlsim

// HeatMonitor: sharded counting, epoch folding, decay, and the
// order-independence that underwrites migration determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mlm/kvstore/heat.h"

namespace mlm::kv {
namespace {

TEST(HeatMonitor, StartsCold) {
  HeatMonitor m(2);
  m.add_segment();
  m.add_segment();
  EXPECT_EQ(m.shards(), 2u);
  EXPECT_EQ(m.segments(), 2u);
  EXPECT_EQ(m.epoch(), 0u);
  EXPECT_EQ(m.heat(0), 0u);
  EXPECT_EQ(m.last_access_epoch(1), 0u);
  EXPECT_EQ(m.total_accesses(), 0u);
}

TEST(HeatMonitor, FoldSumsAcrossShards) {
  HeatMonitor m(3);
  m.add_segment();
  m.add_segment();
  m.record(0, 0);
  m.record(1, 0);
  m.record(2, 0);
  m.record(1, 1);

  const std::vector<std::uint64_t> counts = m.fold_epoch();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(m.heat(0), 3u);
  EXPECT_EQ(m.heat(1), 1u);
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.total_accesses(), 4u);

  // Shards are zeroed by the fold: an idle epoch decays heat.
  const std::vector<std::uint64_t> idle = m.fold_epoch();
  EXPECT_EQ(idle[0], 0u);
  EXPECT_EQ(m.heat(0), 1u);  // 3/2 = 1
  EXPECT_EQ(m.heat(1), 0u);
}

TEST(HeatMonitor, DecayHalvesThenAdds) {
  HeatMonitor m(1);
  m.add_segment();
  for (int i = 0; i < 8; ++i) m.record(0, 0);
  m.fold_epoch();
  EXPECT_EQ(m.heat(0), 8u);
  for (int i = 0; i < 2; ++i) m.record(0, 0);
  m.fold_epoch();
  EXPECT_EQ(m.heat(0), 6u);  // 8/2 + 2
}

TEST(HeatMonitor, LastAccessEpochTracksMostRecentActivity) {
  HeatMonitor m(1);
  m.add_segment();
  m.add_segment();
  m.record(0, 0);
  m.fold_epoch();  // epoch 1: segment 0 active
  m.record(0, 1);
  m.fold_epoch();  // epoch 2: segment 1 active
  EXPECT_EQ(m.last_access_epoch(0), 1u);
  EXPECT_EQ(m.last_access_epoch(1), 2u);
}

TEST(HeatMonitor, EnsureShardsGrowsWithoutLosingCounts) {
  HeatMonitor m(1);
  m.add_segment();
  m.record(0, 0);
  m.ensure_shards(4);
  EXPECT_EQ(m.shards(), 4u);
  m.record(3, 0);
  const std::vector<std::uint64_t> counts = m.fold_epoch();
  EXPECT_EQ(counts[0], 2u);
  // Shrinking is never done; ensure_shards with fewer is a no-op.
  m.ensure_shards(2);
  EXPECT_EQ(m.shards(), 4u);
}

TEST(HeatMonitor, SegmentsAddedMidEpochFoldCorrectly) {
  HeatMonitor m(2);
  m.add_segment();
  m.record(1, 0);
  m.add_segment();  // appears in every shard, count 0
  m.record(0, 1);
  const std::vector<std::uint64_t> counts = m.fold_epoch();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

// The determinism cornerstone: the fold is a plain sum, so any
// distribution of the same accesses across shards — i.e. any executor
// schedule — folds to the same counts.
TEST(HeatMonitor, FoldIsScheduleIndependent) {
  const std::vector<std::uint64_t> per_segment = {5, 0, 3, 12, 1};

  auto fold_with_distribution = [&](std::uint64_t salt) {
    HeatMonitor m(4);
    for (std::size_t s = 0; s < per_segment.size(); ++s) m.add_segment();
    std::uint64_t x = salt;
    for (std::size_t s = 0; s < per_segment.size(); ++s) {
      for (std::uint64_t i = 0; i < per_segment[s]; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        m.record(static_cast<std::size_t>(x >> 62), s);
      }
    }
    return m.fold_epoch();
  };

  const std::vector<std::uint64_t> a = fold_with_distribution(1);
  for (std::uint64_t salt = 2; salt < 10; ++salt) {
    EXPECT_EQ(fold_with_distribution(salt), a) << "salt " << salt;
  }
}

}  // namespace
}  // namespace mlm::kv

// The kvstore acceptance harness: a Zipfian workload with
// frequency-threshold migration runs under 100 seeded deterministic
// schedules — with and without faults armed at kvstore.migrate.step —
// and every run must produce the same record digest, the same
// epoch-by-epoch placement trace, and the same hit tallies; the same
// seed must replay tick for tick.  A real ThreadPool run must match the
// deterministic results too, and the migrating policy must beat the
// static near-first baseline at high skew with a near tier holding a
// quarter of the working set.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mlm/fault/fault.h"
#include "mlm/kvstore/kv_timeline.h"
#include "mlm/kvstore/store.h"
#include "mlm/kvstore/trace.h"
#include "mlm/kvstore/workload.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/support/units.h"

namespace mlm::kv {
namespace {

constexpr std::uint64_t kSeeds = 100;

// 1024 keys * 64-byte records in 16-record segments = 64 segments of
// 1 KiB; the near tier holds 16 of them — a quarter of the working set.
constexpr std::size_t kKeys = 1024;
constexpr std::uint64_t kNearBytes = KiB(16);

HierarchyConfig hier_config() {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"ddr", MemKind::DDR, 0},
               TierConfig{"mcdram", MemKind::MCDRAM, kNearBytes}};
  return cfg;
}

KvConfig store_config() {
  KvConfig cfg;
  cfg.value_bytes = 56;
  cfg.records_per_segment = 16;
  cfg.index_prefers_near = false;  // near tier is for segments here
  return cfg;
}

TraceConfig trace_config() {
  TraceConfig cfg;
  cfg.kind = TraceKind::Zipfian;
  cfg.keys = kKeys;
  cfg.ops = 16384;
  cfg.skew = 0.99;
  cfg.seed = 2024;
  return cfg;
}

WorkloadConfig workload_config(PlacementPolicy policy) {
  WorkloadConfig cfg;
  cfg.epoch_ops = 2048;  // 8 epochs
  cfg.policy.policy = policy;
  cfg.degrade.max_retries = 1;
  cfg.degrade.allow_tier_fallback = true;
  return cfg;
}

void populate(TieredKvStore& store) {
  std::vector<std::uint8_t> value(store.config().value_bytes);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    for (std::size_t i = 0; i < value.size(); ++i) {
      value[i] = static_cast<std::uint8_t>(k * 131 + i);
    }
    store.put(k, value.data());
  }
}

struct RunResult {
  std::uint64_t digest = 0;
  WorkloadStats stats;
  std::string schedule_trace;
};

RunResult run_deterministic(std::uint64_t seed, PlacementPolicy policy,
                            const fault::FaultTrigger* trigger = nullptr) {
  MemoryHierarchy hier(hier_config());
  TieredKvStore store(hier, store_config());
  populate(store);
  const std::vector<std::uint64_t> trace = generate_trace(trace_config());

  DeterministicScheduler sched(seed);
  DeterministicExecutor exec(sched, 2, "kv");

  RunResult result;
  if (trigger != nullptr) {
    fault::FaultPlan plan;
    plan.arm(fault::sites::kKvMigrateStep, *trigger);
    fault::ScopedFaultInjector inject(plan);
    result.stats = run_workload(store, exec, trace, workload_config(policy));
  } else {
    result.stats = run_workload(store, exec, trace, workload_config(policy));
  }
  result.digest = store.contents_digest();
  result.schedule_trace = sched.format_trace();
  return result;
}

void expect_same_outcome(const RunResult& a, const RunResult& b,
                         std::uint64_t seed) {
  EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
  EXPECT_EQ(a.stats.placement_trace, b.stats.placement_trace)
      << "seed " << seed;
  EXPECT_EQ(a.stats.near_hits, b.stats.near_hits) << "seed " << seed;
  EXPECT_EQ(a.stats.far_hits, b.stats.far_hits) << "seed " << seed;
  EXPECT_EQ(a.stats.misses, b.stats.misses) << "seed " << seed;
  EXPECT_EQ(a.stats.migration.promoted, b.stats.migration.promoted)
      << "seed " << seed;
  EXPECT_EQ(a.stats.migration.abandoned, b.stats.migration.abandoned)
      << "seed " << seed;
}

TEST(KvScheduleSweep, HundredSeedsIdenticalOutcome) {
  const RunResult reference =
      run_deterministic(1, PlacementPolicy::FreqThreshold);
  EXPECT_EQ(reference.stats.ops, trace_config().ops);
  EXPECT_EQ(reference.stats.epochs, 8u);
  EXPECT_GT(reference.stats.migration.promoted, 0u);

  for (std::uint64_t seed = 2; seed <= kSeeds; ++seed) {
    const RunResult run =
        run_deterministic(seed, PlacementPolicy::FreqThreshold);
    expect_same_outcome(reference, run, seed);
    if (HasFailure()) break;  // one seed's dump is enough
  }
}

TEST(KvScheduleSweep, SameSeedReplaysTickForTick) {
  for (const std::uint64_t seed : {3ull, 41ull, 97ull}) {
    const RunResult a = run_deterministic(seed, PlacementPolicy::FreqThreshold);
    const RunResult b = run_deterministic(seed, PlacementPolicy::FreqThreshold);
    EXPECT_EQ(a.schedule_trace, b.schedule_trace) << "seed " << seed;
    expect_same_outcome(a, b, seed);
  }
}

TEST(KvScheduleSweep, HundredSeedsIdenticalUnderFaults) {
  // A seeded probability trigger at kvstore.migrate.step: the fault
  // stream is a function of the *fault* seed and the per-site call
  // count, both schedule-independent, so faulted runs must agree
  // across executor seeds too — and abandoning moves must never touch
  // record contents.
  const fault::FaultTrigger trigger =
      fault::FaultTrigger::probability(0.3, 777);
  const RunResult clean =
      run_deterministic(1, PlacementPolicy::FreqThreshold);
  const RunResult reference =
      run_deterministic(1, PlacementPolicy::FreqThreshold, &trigger);

  // The plan actually bit (some retries/abandonments happened), and
  // contents still digest identically to the unfaulted run.  Placement
  // *plans* legitimately diverge after the first abandoned move — an
  // abandonment changes the placement later epochs plan against — but
  // the first epoch is planned before any fault can land.
  EXPECT_GT(reference.stats.migration.abandoned, 0u);
  EXPECT_EQ(reference.digest, clean.digest);
  ASSERT_FALSE(reference.stats.placement_trace.empty());
  EXPECT_EQ(reference.stats.placement_trace.front(),
            clean.stats.placement_trace.front());

  for (std::uint64_t seed = 2; seed <= kSeeds; ++seed) {
    const RunResult run =
        run_deterministic(seed, PlacementPolicy::FreqThreshold, &trigger);
    expect_same_outcome(reference, run, seed);
    EXPECT_EQ(run.stats.migration.retries, reference.stats.migration.retries)
        << "seed " << seed;
    if (HasFailure()) break;
  }
}

TEST(KvScheduleSweep, ThreadPoolMatchesDeterministicRuns) {
  // Worker w serves trace indices with index % workers == w and heat
  // folds are plain sums, so a real two-thread pool must land on the
  // deterministic outcome exactly.
  MemoryHierarchy hier(hier_config());
  TieredKvStore store(hier, store_config());
  populate(store);
  const std::vector<std::uint64_t> trace = generate_trace(trace_config());
  ThreadPool pool(2, "kv");
  const WorkloadStats stats = run_workload(
      store, pool, trace, workload_config(PlacementPolicy::FreqThreshold));

  const RunResult det = run_deterministic(1, PlacementPolicy::FreqThreshold);
  EXPECT_EQ(store.contents_digest(), det.digest);
  EXPECT_EQ(stats.placement_trace, det.stats.placement_trace);
  EXPECT_EQ(stats.near_hits, det.stats.near_hits);
  EXPECT_EQ(stats.far_hits, det.stats.far_hits);
  EXPECT_EQ(stats.misses, det.stats.misses);
}

TEST(KvScheduleSweep, MigrationBeatsStaticAtHighSkew) {
  const RunResult migrating =
      run_deterministic(1, PlacementPolicy::FreqThreshold);
  const RunResult static_run =
      run_deterministic(1, PlacementPolicy::StaticNearFirst);

  // Static near-first keeps the first 16 of 64 segments near; the
  // scrambled hot set mostly lives elsewhere.  Migration must capture
  // it: materially better near-hit rate...
  EXPECT_EQ(static_run.stats.migration.steps, 0u);
  EXPECT_GT(migrating.stats.near_hit_rate(),
            static_run.stats.near_hit_rate() + 0.2);

  // ...and better *simulated service time* even after paying for the
  // migrated bytes (the acceptance criterion: near tier = 1/4 of the
  // working set, zipf 0.99).
  MemoryHierarchy hier(hier_config());
  TieredKvStore store(hier, store_config());
  populate(store);
  const KvTimelineResult t_migrating =
      simulate_service_time(store, migrating.stats);
  const KvTimelineResult t_static =
      simulate_service_time(store, static_run.stats);
  EXPECT_LT(t_migrating.seconds, t_static.seconds);
  EXPECT_GT(t_migrating.migrate_seconds, 0.0);
  EXPECT_EQ(t_static.migrate_seconds, 0.0);
}

}  // namespace
}  // namespace mlm::kv

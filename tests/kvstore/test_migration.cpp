// MigrationEngine: plan execution step by step, the degradation ladder
// at kvstore.migrate.step (retry, abandon, structured error), and the
// MigrationJob adapter interleaving with sort jobs under the service
// scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "mlm/core/external_sort.h"
#include "mlm/fault/fault.h"
#include "mlm/kvstore/migration.h"
#include "mlm/kvstore/migration_job.h"
#include "mlm/kvstore/store.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/service/job_scheduler.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::kv {
namespace {

using service::JobConfig;
using service::JobScheduler;
using service::JobSchedulerConfig;
using service::JobState;
using service::ServiceStats;

HierarchyConfig two_tier(std::uint64_t mcdram_bytes) {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"ddr", MemKind::DDR, 0},
               TierConfig{"mcdram", MemKind::MCDRAM, mcdram_bytes}};
  return cfg;
}

KvConfig small_config() {
  KvConfig cfg;
  cfg.value_bytes = 56;
  cfg.records_per_segment = 16;  // 1 KiB segments
  cfg.index_prefers_near = false;
  return cfg;
}

/// 8 segments over a 2-segment near tier (0-1 near), plus a plan that
/// swaps them for {5, 6}.
struct Fixture {
  Fixture() : hier(two_tier(KiB(2))), store(hier, small_config()) {
    std::vector<std::uint8_t> value(56, 0x5A);
    for (std::uint64_t k = 0; k < 8 * 16; ++k) store.put(k, value.data());
    plan.demote = {0, 1};
    plan.promote = {5, 6};
    digest = store.contents_digest();
  }

  MemoryHierarchy hier;
  TieredKvStore store;
  MigrationPlan plan;
  std::uint64_t digest = 0;
};

TEST(MigrationEngine, RunExecutesPlanAndPreservesDigest) {
  Fixture f;
  MigrationEngine engine(f.store);
  const MigrationStats stats = engine.run(f.plan);
  EXPECT_EQ(stats.steps, 4u);
  EXPECT_EQ(stats.demoted, 2u);
  EXPECT_EQ(stats.promoted, 2u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.abandoned, 0u);
  EXPECT_EQ(stats.moved_bytes, 4 * f.store.segment_bytes());
  EXPECT_TRUE(stats.degradations.empty());

  EXPECT_FALSE(f.store.segment_near(0));
  EXPECT_FALSE(f.store.segment_near(1));
  EXPECT_TRUE(f.store.segment_near(5));
  EXPECT_TRUE(f.store.segment_near(6));
  EXPECT_EQ(f.store.near_segment_count(), 2u);
  EXPECT_EQ(f.store.contents_digest(), f.digest);
}

TEST(MigrationEngine, StepperMovesOneSegmentPerStep) {
  Fixture f;
  MigrationEngine engine(f.store);
  MigrationEngine::Stepper stepper(engine, f.plan);
  EXPECT_FALSE(stepper.done());

  ASSERT_TRUE(stepper.step());  // demote 0
  EXPECT_FALSE(f.store.segment_near(0));
  EXPECT_TRUE(f.store.segment_near(1));
  ASSERT_TRUE(stepper.step());  // demote 1
  ASSERT_TRUE(stepper.step());  // promote 5
  EXPECT_TRUE(f.store.segment_near(5));
  EXPECT_FALSE(stepper.step());  // promote 6: last step
  EXPECT_TRUE(stepper.done());
  const MigrationStats stats = stepper.finish();
  EXPECT_EQ(stats.steps, 4u);
}

TEST(MigrationEngine, EmptyPlanIsANoOp) {
  Fixture f;
  MigrationEngine engine(f.store);
  const MigrationStats stats = engine.run(MigrationPlan{});
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(f.store.contents_digest(), f.digest);
}

TEST(MigrationEngine, InjectedFaultRetriesThenSucceeds) {
  Fixture f;
  core::DegradePolicy policy;
  policy.max_retries = 2;
  MigrationEngine engine(f.store, policy);

  fault::FaultPlan fp;
  fp.arm(fault::sites::kKvMigrateStep, fault::FaultTrigger::nth_call(0));
  fault::ScopedFaultInjector inject(fp);

  const MigrationStats stats = engine.run(f.plan);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.abandoned, 0u);
  EXPECT_EQ(stats.demoted, 2u);
  EXPECT_EQ(stats.promoted, 2u);
  ASSERT_EQ(stats.degradations.size(), 1u);
  EXPECT_EQ(stats.degradations[0].site, fault::sites::kKvMigrateStep);
  EXPECT_EQ(stats.degradations[0].action, "retry");
  EXPECT_EQ(stats.degradations[0].chunk, 0);  // segment 0, first move
  EXPECT_EQ(f.store.contents_digest(), f.digest);
}

TEST(MigrationEngine, PermanentFaultAbandonsMoveUnderTierFallback) {
  Fixture f;
  core::DegradePolicy policy;
  policy.max_retries = 1;
  policy.allow_tier_fallback = true;
  MigrationEngine engine(f.store, policy);

  fault::FaultPlan fp;
  fp.arm(fault::sites::kKvMigrateStep, fault::FaultTrigger::always());
  fault::ScopedFaultInjector inject(fp);

  const MigrationStats stats = engine.run(f.plan);
  // Every move: one retry, then abandoned; placement is untouched but
  // the run completes and the records survive.
  EXPECT_EQ(stats.steps, 4u);
  EXPECT_EQ(stats.abandoned, 4u);
  EXPECT_EQ(stats.retries, 4u);
  EXPECT_EQ(stats.demoted, 0u);
  EXPECT_EQ(stats.promoted, 0u);
  EXPECT_TRUE(f.store.segment_near(0));
  EXPECT_FALSE(f.store.segment_near(5));
  EXPECT_EQ(f.store.contents_digest(), f.digest);
  const auto abandoned = std::count_if(
      stats.degradations.begin(), stats.degradations.end(),
      [](const core::DegradationEvent& e) {
        return e.action == "tier_fallback";
      });
  EXPECT_EQ(abandoned, 4);
}

TEST(MigrationEngine, FaultWithoutLadderThrowsStructuredError) {
  Fixture f;
  MigrationEngine engine(f.store);  // default policy: ladder off

  fault::FaultPlan fp;
  fp.arm(fault::sites::kKvMigrateStep, fault::FaultTrigger::always());
  fault::ScopedFaultInjector inject(fp);

  try {
    engine.run(f.plan);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    ASSERT_FALSE(e.chain().empty());
    const ErrorFrame& frame = e.chain().front();
    EXPECT_EQ(frame.op, "kv_migrate_step");
    EXPECT_EQ(frame.chunk, 0);  // first move: demote segment 0
    EXPECT_EQ(frame.tier, "far");
    EXPECT_NE(frame.detail.find("demote"), std::string::npos);
  }
  EXPECT_EQ(f.store.contents_digest(), f.digest);
}

TEST(MigrationEngine, RealNearExhaustionRidesTheLadder) {
  Fixture f;
  core::DegradePolicy policy;
  policy.allow_tier_fallback = true;
  MigrationEngine engine(f.store, policy);

  // Empty the near tier, then squat on the whole budget so the promote
  // hits a real OutOfMemoryError (no injected fault involved).
  MigrationPlan clear;
  clear.demote = {0, 1};
  engine.run(clear);
  Allocation squatter(*f.store.near_space(), KiB(2));

  MigrationPlan promote_only;
  promote_only.promote = {5};
  const MigrationStats stats = engine.run(promote_only);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_FALSE(f.store.segment_near(5));
  EXPECT_EQ(f.store.contents_digest(), f.digest);
}

TEST(MigrationJob, RunsThroughTheServiceSchedulerWithSorts) {
  // A migration job and two sort tenants share the scheduler; the
  // migration's segment moves interleave with sort steps at the
  // suspension points, and everything still completes and verifies.
  // (Three tiers: the external sorter stages across adjacent pairs.)
  HierarchyConfig service_cfg;
  service_cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
                       TierConfig{"ddr", MemKind::DDR, MiB(2)},
                       TierConfig{"mcdram", MemKind::MCDRAM, KiB(64)}};
  MemoryHierarchy service_hier(service_cfg);

  // The store lives in its own budgeted tenant view: near-tier use is
  // capped at the grant, not at the whole arena.
  MemoryHierarchy kv_view(service_hier, {0, 0, KiB(2)}, "kv");
  TieredKvStore store(kv_view, small_config());
  std::vector<std::uint8_t> value(56, 0x5A);
  for (std::uint64_t k = 0; k < 8 * 16; ++k) store.put(k, value.data());
  const std::uint64_t digest = store.contents_digest();

  MigrationPlan plan;
  plan.demote = {0, 1};
  plan.promote = {5, 6};
  MigrationEngine engine(store);
  MigrationStats migration_stats;

  DeterministicScheduler sched(17);
  DeterministicExecutor driver(sched, 2, "driver");
  JobSchedulerConfig cfg;
  cfg.max_concurrent = 3;
  cfg.degrade.allow_tier_fallback = true;
  JobScheduler svc(service_hier, driver, cfg);

  std::vector<std::int64_t> data_a =
      sort::make_input(1024, sort::InputOrder::Random, 7);
  std::vector<std::int64_t> data_b =
      sort::make_input(768, sort::InputOrder::Reverse, 8);
  core::ExternalSortConfig sort_cfg;
  sort_cfg.outer_chunk_elements = 256;

  JobConfig sort_job;
  sort_job.name = "sort-a";
  sort_job.near_budget_bytes = KiB(16);
  const std::uint64_t id_a = svc.submit(
      sort_job,
      service::make_sort_job(std::span<std::int64_t>(data_a), sort_cfg));
  sort_job.name = "sort-b";
  const std::uint64_t id_b = svc.submit(
      sort_job,
      service::make_sort_job(std::span<std::int64_t>(data_b), sort_cfg));

  JobConfig mig_job;
  mig_job.name = "kv-migrate";
  mig_job.near_budget_bytes = 0;  // the store's own grant caps near use
  const std::uint64_t id_m = svc.submit(
      mig_job, make_migration_job(engine, plan, &migration_stats));

  const ServiceStats metrics = svc.run_all();
  EXPECT_EQ(metrics.jobs_completed, 3u);
  EXPECT_EQ(svc.state(id_a), JobState::Completed);
  EXPECT_EQ(svc.state(id_b), JobState::Completed);
  EXPECT_EQ(svc.state(id_m), JobState::Completed);

  EXPECT_TRUE(std::is_sorted(data_a.begin(), data_a.end()));
  EXPECT_TRUE(std::is_sorted(data_b.begin(), data_b.end()));
  EXPECT_EQ(migration_stats.demoted, 2u);
  EXPECT_EQ(migration_stats.promoted, 2u);
  EXPECT_EQ(svc.job_stats(id_m).steps, 4u);
  EXPECT_TRUE(store.segment_near(5));
  EXPECT_TRUE(store.segment_near(6));
  EXPECT_EQ(store.contents_digest(), digest);
}

}  // namespace
}  // namespace mlm::kv

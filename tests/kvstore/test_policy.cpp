// Placement policies: plan_migration under static / LRU-epoch /
// frequency-threshold, budget handling, and plan determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mlm/kvstore/policy.h"
#include "mlm/kvstore/store.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::kv {
namespace {

HierarchyConfig two_tier(std::uint64_t mcdram_bytes) {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"ddr", MemKind::DDR, 0},
               TierConfig{"mcdram", MemKind::MCDRAM, mcdram_bytes}};
  return cfg;
}

KvConfig small_config() {
  KvConfig cfg;
  cfg.value_bytes = 56;
  cfg.records_per_segment = 16;  // 1 KiB segments
  cfg.index_prefers_near = false;
  return cfg;
}

// 8 segments over a 2-segment near tier; segments 0-1 start near.
struct Fixture {
  Fixture() : hier(two_tier(KiB(2))), store(hier, small_config()) {
    std::vector<std::uint8_t> value(56, 0);
    for (std::uint64_t k = 0; k < 8 * 16; ++k) store.put(k, value.data());
    EXPECT_EQ(store.segment_count(), 8u);
    EXPECT_EQ(store.near_segment_count(), 2u);
  }

  /// Record `n` accesses to `segment` (shard 0) without folding.
  void touch(std::size_t segment, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) store.monitor().record(0, segment);
  }

  MemoryHierarchy hier;
  TieredKvStore store;
};

TEST(PlacementPolicy, Names) {
  EXPECT_STREQ(to_string(PlacementPolicy::StaticNearFirst), "static");
  EXPECT_STREQ(to_string(PlacementPolicy::LruEpoch), "lru");
  EXPECT_STREQ(to_string(PlacementPolicy::FreqThreshold), "freq");
  EXPECT_EQ(placement_policy_from_string("static"),
            PlacementPolicy::StaticNearFirst);
  EXPECT_EQ(placement_policy_from_string("lru"), PlacementPolicy::LruEpoch);
  EXPECT_EQ(placement_policy_from_string("freq"),
            PlacementPolicy::FreqThreshold);
  EXPECT_THROW(placement_policy_from_string("hot"), InvalidArgumentError);
}

TEST(PlacementPolicy, StaticNeverMigrates) {
  Fixture f;
  f.touch(7, 100);
  f.store.monitor().fold_epoch();
  PolicyConfig cfg;
  cfg.policy = PlacementPolicy::StaticNearFirst;
  const MigrationPlan plan = plan_migration(f.store, f.store.monitor(), cfg);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.to_string(), "-");
}

TEST(PlacementPolicy, FreqPromotesHottestWithinBudget) {
  Fixture f;
  f.touch(5, 50);
  f.touch(6, 40);
  f.touch(0, 30);  // already near: stays
  f.store.monitor().fold_epoch();

  PolicyConfig cfg;  // FreqThreshold, budget derived: 2 segments
  const MigrationPlan plan = plan_migration(f.store, f.store.monitor(), cfg);
  // Want-near = {5, 6}: the cold residents demote, 0 (heat 30) misses
  // the 2-segment budget.
  EXPECT_EQ(plan.demote, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.promote, (std::vector<std::size_t>{5, 6}));
  EXPECT_EQ(plan.to_string(), "D:0,1 P:5,6");
}

TEST(PlacementPolicy, FreqRespectsMinHeat) {
  Fixture f;
  f.touch(5, 2);
  f.store.monitor().fold_epoch();
  PolicyConfig cfg;
  cfg.min_heat = 10;  // nothing qualifies
  const MigrationPlan plan = plan_migration(f.store, f.store.monitor(), cfg);
  // No segment is eligible for near: both resident segments demote.
  EXPECT_EQ(plan.demote, (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(plan.promote.empty());
}

TEST(PlacementPolicy, LruKeepsMostRecentlyAccessed) {
  Fixture f;
  f.touch(3, 1);
  f.store.monitor().fold_epoch();  // epoch 1: segment 3
  f.touch(4, 1);
  f.touch(0, 1);
  f.store.monitor().fold_epoch();  // epoch 2: segments 4, 0

  PolicyConfig cfg;
  cfg.policy = PlacementPolicy::LruEpoch;
  const MigrationPlan plan = plan_migration(f.store, f.store.monitor(), cfg);
  // Most recent: {4, 0} (epoch 2), then 3 (epoch 1) over budget.
  EXPECT_EQ(plan.demote, (std::vector<std::size_t>{1}));
  EXPECT_EQ(plan.promote, (std::vector<std::size_t>{4}));
}

TEST(PlacementPolicy, ExplicitBudgetOverridesDerived) {
  Fixture f;
  f.touch(4, 10);
  f.touch(5, 9);
  f.touch(6, 8);
  f.store.monitor().fold_epoch();
  PolicyConfig cfg;
  cfg.max_near_segments = 1;
  const MigrationPlan plan = plan_migration(f.store, f.store.monitor(), cfg);
  EXPECT_EQ(plan.demote, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.promote, (std::vector<std::size_t>{4}));
}

TEST(PlacementPolicy, TieBreaksById) {
  Fixture f;
  // Equal heat everywhere eligible: lowest ids win the budget.
  for (std::size_t s = 0; s < 8; ++s) f.touch(s, 5);
  f.store.monitor().fold_epoch();
  PolicyConfig cfg;
  const MigrationPlan plan = plan_migration(f.store, f.store.monitor(), cfg);
  // Want-near = {0, 1}, which is the current placement: no moves.
  EXPECT_TRUE(plan.empty());
}

TEST(PlacementPolicy, NoNearTierMeansNoPlan) {
  HierarchyConfig cfg = two_tier(KiB(2));
  cfg.mode = McdramMode::Cache;
  MemoryHierarchy hier(cfg);
  TieredKvStore store(hier, small_config());
  std::vector<std::uint8_t> value(56, 0);
  for (std::uint64_t k = 0; k < 32; ++k) store.put(k, value.data());
  store.monitor().record(0, 1);
  store.monitor().fold_epoch();
  EXPECT_TRUE(
      plan_migration(store, store.monitor(), PolicyConfig{}).empty());
}

TEST(PlacementPolicy, PlansAreDeterministic) {
  PolicyConfig cfg;
  MigrationPlan first;
  for (int run = 0; run < 3; ++run) {
    Fixture f;
    f.touch(6, 20);
    f.touch(2, 15);
    f.touch(0, 10);
    f.store.monitor().fold_epoch();
    const MigrationPlan plan =
        plan_migration(f.store, f.store.monitor(), cfg);
    if (run == 0) {
      first = plan;
    } else {
      EXPECT_EQ(plan.demote, first.demote);
      EXPECT_EQ(plan.promote, first.promote);
    }
  }
}

}  // namespace
}  // namespace mlm::kv

// TieredKvStore: record round-trips, near-first segment placement over
// budgeted hierarchies, index growth, and digest-stable segment moves.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "mlm/kvstore/store.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::kv {
namespace {

HierarchyConfig two_tier(std::uint64_t mcdram_bytes) {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"ddr", MemKind::DDR, 0},
               TierConfig{"mcdram", MemKind::MCDRAM, mcdram_bytes}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

KvConfig small_config() {
  KvConfig cfg;
  cfg.value_bytes = 56;          // 64-byte records
  cfg.records_per_segment = 16;  // 1 KiB segments
  cfg.initial_buckets = 32;
  cfg.index_prefers_near = false;  // keep near for segments in this file
  return cfg;
}

std::vector<std::uint8_t> value_for(std::uint64_t key, std::size_t bytes) {
  std::vector<std::uint8_t> v(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<std::uint8_t>(key * 31 + i);
  }
  return v;
}

TEST(TieredKvStore, PutGetRoundTrip) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());

  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(store.put(k, value_for(k, 56).data()));
  }
  EXPECT_EQ(store.size(), 100u);

  std::vector<std::uint8_t> out(56);
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(store.get(k, out.data()));
    EXPECT_EQ(out, value_for(k, 56)) << "key " << k;
  }
  EXPECT_FALSE(store.get(1000, out.data()));
  EXPECT_TRUE(store.contains(42));
  EXPECT_FALSE(store.contains(1000));
}

TEST(TieredKvStore, OverwriteKeepsSize) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  std::vector<std::uint8_t> v1(56, 0xAA);
  std::vector<std::uint8_t> v2(56, 0xBB);
  EXPECT_TRUE(store.put(7, v1.data()));
  EXPECT_FALSE(store.put(7, v2.data()));
  EXPECT_EQ(store.size(), 1u);
  std::vector<std::uint8_t> out(56);
  ASSERT_TRUE(store.get(7, out.data()));
  EXPECT_EQ(out, v2);
}

TEST(TieredKvStore, SegmentsFillNearFirstThenSpill) {
  // 4 KiB near tier, 1 KiB segments: segments 0-3 near, rest far.
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  for (std::uint64_t k = 0; k < 8 * 16; ++k) {
    store.put(k, value_for(k, 56).data());
  }
  ASSERT_EQ(store.segment_count(), 8u);
  EXPECT_EQ(store.near_segment_count(), 4u);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(store.segment_near(s), s < 4) << "segment " << s;
  }
  const KvStoreStats stats = store.stats();
  EXPECT_EQ(stats.near_segment_bytes, KiB(4));
  EXPECT_EQ(stats.far_segment_bytes, KiB(4));
  EXPECT_EQ(stats.near_capacity_bytes, KiB(4));
}

TEST(TieredKvStore, BudgetedTenantViewCapsNearTier) {
  // The parent arena has 16 KiB of MCDRAM but this tenant is granted 2.
  MemoryHierarchy parent(two_tier(KiB(16)));
  MemoryHierarchy view(parent, {0, KiB(2)}, "kv-tenant");
  TieredKvStore store(view, small_config());
  for (std::uint64_t k = 0; k < 6 * 16; ++k) {
    store.put(k, value_for(k, 56).data());
  }
  EXPECT_EQ(store.near_segment_count(), 2u);
  EXPECT_EQ(store.stats().near_capacity_bytes, KiB(2));
}

TEST(TieredKvStore, IndexGrowthPreservesLookups) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  KvConfig cfg = small_config();
  cfg.initial_buckets = 16;  // forces several growth rounds
  TieredKvStore store(hier, cfg);
  const std::size_t n = 500;
  for (std::uint64_t k = 0; k < n; ++k) {
    store.put(k * 977 + 13, value_for(k, 56).data());
  }
  std::vector<std::uint8_t> out(56);
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(store.get(k * 977 + 13, out.data()));
    EXPECT_EQ(out, value_for(k, 56));
  }
}

TEST(TieredKvStore, MoveSegmentPreservesContentsAndCounts) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  for (std::uint64_t k = 0; k < 8 * 16; ++k) {
    store.put(k, value_for(k, 56).data());
  }
  const std::uint64_t digest = store.contents_digest();

  // Demote a near segment, promote a far one into the freed budget.
  store.move_segment(0, /*to_near=*/false);
  EXPECT_FALSE(store.segment_near(0));
  EXPECT_EQ(store.near_segment_count(), 3u);
  store.move_segment(6, /*to_near=*/true);
  EXPECT_TRUE(store.segment_near(6));
  EXPECT_EQ(store.near_segment_count(), 4u);

  // Placement changed; contents and lookups did not.
  EXPECT_EQ(store.contents_digest(), digest);
  std::vector<std::uint8_t> out(56);
  bool was_near = false;
  ASSERT_TRUE(store.get(5, out.data(), 0, &was_near));
  EXPECT_EQ(out, value_for(5, 56));
  EXPECT_FALSE(was_near);
  ASSERT_TRUE(store.get(6 * 16 + 3, out.data(), 0, &was_near));
  EXPECT_TRUE(was_near);

  // Moving to the current tier is a no-op.
  store.move_segment(6, true);
  EXPECT_EQ(store.near_segment_count(), 4u);
}

TEST(TieredKvStore, MoveToFullNearTierThrowsOutOfMemory) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  for (std::uint64_t k = 0; k < 8 * 16; ++k) {
    store.put(k, value_for(k, 56).data());
  }
  ASSERT_EQ(store.near_segment_count(), 4u);  // near tier is full
  EXPECT_THROW(store.move_segment(7, true), OutOfMemoryError);
  // Failed move leaves everything in place.
  EXPECT_FALSE(store.segment_near(7));
  EXPECT_EQ(store.near_segment_count(), 4u);
}

TEST(TieredKvStore, CacheModeHierarchyHasNoNearTier) {
  HierarchyConfig cfg = two_tier(KiB(4));
  cfg.mode = McdramMode::Cache;  // MCDRAM tier not addressable
  MemoryHierarchy hier(cfg);
  TieredKvStore store(hier, small_config());
  EXPECT_FALSE(store.has_near_tier());
  for (std::uint64_t k = 0; k < 3 * 16; ++k) {
    store.put(k, value_for(k, 56).data());
  }
  EXPECT_EQ(store.near_segment_count(), 0u);
  EXPECT_EQ(store.stats().near_capacity_bytes, 0u);
  EXPECT_THROW(store.move_segment(0, true), Error);
}

TEST(TieredKvStore, GetCountsHeatInTheGivenShard) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  KvConfig cfg = small_config();
  cfg.heat_shards = 2;
  TieredKvStore store(hier, cfg);
  store.put(1, value_for(1, 56).data());
  std::vector<std::uint8_t> out(56);
  store.get(1, out.data(), /*shard=*/0);
  store.get(1, out.data(), /*shard=*/1);
  store.get(999, out.data(), /*shard=*/1);  // miss: not counted
  const std::vector<std::uint64_t> counts = store.monitor().fold_epoch();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 2u);
}

TEST(TieredKvStore, DigestIsPlacementIndependentButContentSensitive) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  for (std::uint64_t k = 0; k < 4 * 16; ++k) {
    store.put(k, value_for(k, 56).data());
  }
  const std::uint64_t digest = store.contents_digest();
  store.move_segment(1, false);
  EXPECT_EQ(store.contents_digest(), digest);
  std::vector<std::uint8_t> changed(56, 0xEE);
  store.put(3, changed.data());
  EXPECT_NE(store.contents_digest(), digest);
}

}  // namespace
}  // namespace mlm::kv

// Trace generation: seeded determinism, Zipfian skew concentration, and
// the rank->key scramble that keeps hot keys off the first segments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "mlm/kvstore/trace.h"
#include "mlm/support/error.h"

namespace mlm::kv {
namespace {

TEST(Trace, SameConfigSameTrace) {
  TraceConfig cfg;
  cfg.keys = 512;
  cfg.ops = 4096;
  cfg.seed = 42;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  EXPECT_EQ(a, b);

  cfg.seed = 43;
  EXPECT_NE(generate_trace(cfg), a);
}

TEST(Trace, UniformKeysStayInRangeAndSpread) {
  TraceConfig cfg;
  cfg.kind = TraceKind::Uniform;
  cfg.keys = 64;
  cfg.ops = 64 * 256;
  cfg.seed = 7;
  const auto trace = generate_trace(cfg);
  ASSERT_EQ(trace.size(), cfg.ops);
  std::vector<std::size_t> freq(cfg.keys, 0);
  for (const std::uint64_t key : trace) {
    ASSERT_LT(key, cfg.keys);
    ++freq[key];
  }
  // Every key appears; no key dominates (expected 256 each).
  for (std::size_t k = 0; k < cfg.keys; ++k) {
    EXPECT_GT(freq[k], 128u) << "key " << k;
    EXPECT_LT(freq[k], 512u) << "key " << k;
  }
}

TEST(Trace, ZipfianConcentratesOnFewKeys) {
  TraceConfig cfg;
  cfg.kind = TraceKind::Zipfian;
  cfg.keys = 1024;
  cfg.ops = 32768;
  cfg.skew = 0.99;
  cfg.seed = 11;
  const auto trace = generate_trace(cfg);

  std::map<std::uint64_t, std::size_t> freq;
  for (const std::uint64_t key : trace) ++freq[key];
  std::vector<std::size_t> counts;
  counts.reserve(freq.size());
  for (const auto& [key, n] : freq) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());

  // At s=0.99 the top ~10% of keys carry well over half the accesses
  // (a uniform trace would give them exactly 10%).
  std::size_t top = 0;
  for (std::size_t i = 0; i < counts.size() && i < cfg.keys / 10; ++i) {
    top += counts[i];
  }
  EXPECT_GT(top, cfg.ops / 2);
}

TEST(Trace, HigherSkewConcentratesMore) {
  TraceConfig cfg;
  cfg.keys = 1024;
  cfg.ops = 32768;
  cfg.seed = 5;

  auto top_decile_share = [&](double skew) {
    cfg.skew = skew;
    const auto trace = generate_trace(cfg);
    std::map<std::uint64_t, std::size_t> freq;
    for (const std::uint64_t key : trace) ++freq[key];
    std::vector<std::size_t> counts;
    for (const auto& [key, n] : freq) counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    std::size_t top = 0;
    for (std::size_t i = 0; i < counts.size() && i < cfg.keys / 10; ++i) {
      top += counts[i];
    }
    return top;
  };

  EXPECT_LT(top_decile_share(0.5), top_decile_share(0.99));
  EXPECT_LT(top_decile_share(0.99), top_decile_share(1.3));
}

TEST(Trace, PermutationIsABijectionStableInOps) {
  const auto perm = trace_key_permutation(256, 99);
  ASSERT_EQ(perm.size(), 256u);
  std::vector<bool> seen(256, false);
  for (const std::uint64_t key : perm) {
    ASSERT_LT(key, 256u);
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
  }

  // The hot set is a function of (keys, seed) only: changing ops must
  // not move it (epoch sweeps vary ops at fixed placement expectations).
  TraceConfig a;
  a.keys = 256;
  a.ops = 1000;
  a.seed = 99;
  TraceConfig b = a;
  b.ops = 5000;
  const auto ta = generate_trace(a);
  const auto tb = generate_trace(b);
  std::map<std::uint64_t, std::size_t> fa;
  std::map<std::uint64_t, std::size_t> fb;
  for (const auto key : ta) ++fa[key];
  for (const auto key : tb) ++fb[key];
  const auto hottest = [](const std::map<std::uint64_t, std::size_t>& f) {
    std::uint64_t best = 0;
    std::size_t n = 0;
    for (const auto& [key, c] : f) {
      if (c > n) {
        n = c;
        best = key;
      }
    }
    return best;
  };
  EXPECT_EQ(hottest(fa), hottest(fb));
  EXPECT_EQ(hottest(fa), perm[0]);  // rank 0 is the hottest key
}

TEST(Trace, ScrambleSpreadsHotKeysAcrossKeySpace) {
  // Without scrambling, ranks 0..k map to keys 0..k and the hot set
  // sits entirely in the first insertion-order segments.  With it, the
  // top 32 ranks of a 2048-key space must not cluster in the first
  // eighth of the key space.
  const auto perm = trace_key_permutation(2048, 123);
  std::size_t in_first_eighth = 0;
  for (std::size_t r = 0; r < 32; ++r) {
    if (perm[r] < 2048 / 8) ++in_first_eighth;
  }
  EXPECT_LT(in_first_eighth, 16u);
}

TEST(Trace, RejectsBadConfigs) {
  TraceConfig cfg;
  cfg.keys = 0;
  EXPECT_THROW(generate_trace(cfg), InvalidArgumentError);
  cfg.keys = 8;
  cfg.skew = -1.0;
  EXPECT_THROW(generate_trace(cfg), InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::kv

// Workload driver and service-time model unit behaviour: epoch
// accounting, tally conservation, and the timeline's tier asymmetry.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mlm/kvstore/kv_timeline.h"
#include "mlm/kvstore/store.h"
#include "mlm/kvstore/trace.h"
#include "mlm/kvstore/workload.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::kv {
namespace {

HierarchyConfig two_tier(std::uint64_t mcdram_bytes) {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"ddr", MemKind::DDR, 0},
               TierConfig{"mcdram", MemKind::MCDRAM, mcdram_bytes}};
  return cfg;
}

KvConfig small_config() {
  KvConfig cfg;
  cfg.value_bytes = 56;
  cfg.records_per_segment = 16;
  cfg.index_prefers_near = false;
  return cfg;
}

void populate(TieredKvStore& store, std::size_t keys) {
  std::vector<std::uint8_t> value(store.config().value_bytes, 1);
  for (std::uint64_t k = 0; k < keys; ++k) store.put(k, value.data());
}

TEST(Workload, TalliesConserveOpsAndEpochsCoverTrailingPartial) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  populate(store, 256);

  // 500 ops at 200 per epoch: 3 epochs, the last one short.  Every op
  // hits (keys 0..255) except the out-of-range tail we splice in.
  TraceConfig tc;
  tc.kind = TraceKind::Uniform;
  tc.keys = 256;
  tc.ops = 490;
  tc.seed = 3;
  std::vector<std::uint64_t> trace = generate_trace(tc);
  for (int i = 0; i < 10; ++i) trace.push_back(9999);  // misses

  ThreadPool pool(2, "wl");
  WorkloadConfig cfg;
  cfg.epoch_ops = 200;
  const WorkloadStats stats = run_workload(store, pool, trace, cfg);

  EXPECT_EQ(stats.ops, 500u);
  EXPECT_EQ(stats.epochs, 3u);
  EXPECT_EQ(stats.placement_trace.size(), 3u);
  EXPECT_EQ(stats.near_hits + stats.far_hits + stats.misses, 500u);
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(store.monitor().epoch(), 3u);
  // The driver resized the monitor to one shard per worker.
  EXPECT_GE(store.monitor().shards(), 2u);
}

TEST(Workload, StaticPolicyNeverMoves) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  populate(store, 256);
  TraceConfig tc;
  tc.keys = 256;
  tc.ops = 1000;
  tc.seed = 5;
  ThreadPool pool(2, "wl");
  WorkloadConfig cfg;
  cfg.epoch_ops = 250;
  cfg.policy.policy = PlacementPolicy::StaticNearFirst;
  const WorkloadStats stats =
      run_workload(store, pool, generate_trace(tc), cfg);
  EXPECT_EQ(stats.migration.steps, 0u);
  for (const std::string& epoch : stats.placement_trace) {
    EXPECT_EQ(epoch, "-");
  }
}

TEST(Workload, RejectsZeroEpochOps) {
  MemoryHierarchy hier(two_tier(KiB(4)));
  TieredKvStore store(hier, small_config());
  ThreadPool pool(1, "wl");
  WorkloadConfig cfg;
  cfg.epoch_ops = 0;
  EXPECT_THROW(run_workload(store, pool, {}, cfg), InvalidArgumentError);
}

TEST(KvTimeline, NearServiceIsFasterThanFar) {
  MemoryHierarchy hier(two_tier(KiB(64)));
  TieredKvStore store(hier, small_config());
  populate(store, 64);

  WorkloadStats near_heavy;
  near_heavy.epochs = 4;
  near_heavy.ops = 10000;
  near_heavy.near_hits = 9000;
  near_heavy.far_hits = 1000;
  WorkloadStats far_heavy;
  far_heavy.epochs = 4;
  far_heavy.ops = 10000;
  far_heavy.near_hits = 1000;
  far_heavy.far_hits = 9000;

  const KvTimelineResult near_t = simulate_service_time(store, near_heavy);
  const KvTimelineResult far_t = simulate_service_time(store, far_heavy);
  EXPECT_LT(near_t.seconds, far_t.seconds);
  EXPECT_DOUBLE_EQ(near_t.migrate_seconds, 0.0);
  // Byte accounting: each hit moves one record.
  EXPECT_DOUBLE_EQ(near_t.near_bytes, 9000.0 * store.record_bytes());
  EXPECT_DOUBLE_EQ(near_t.far_bytes, 1000.0 * store.record_bytes());
}

TEST(KvTimeline, MigrationIsPricedNotFree) {
  MemoryHierarchy hier(two_tier(KiB(64)));
  TieredKvStore store(hier, small_config());
  populate(store, 64);

  WorkloadStats base;
  base.epochs = 2;
  base.ops = 1000;
  base.near_hits = 500;
  base.far_hits = 500;
  WorkloadStats with_moves = base;
  with_moves.migration.moved_bytes = MiB(1);

  const KvTimelineResult t0 = simulate_service_time(store, base);
  const KvTimelineResult t1 = simulate_service_time(store, with_moves);
  EXPECT_GT(t1.migrate_seconds, 0.0);
  EXPECT_GT(t1.seconds, t0.seconds);
  EXPECT_DOUBLE_EQ(t1.lookup_seconds, t0.lookup_seconds);
}

TEST(KvTimeline, EmptyRunPricesToZero) {
  MemoryHierarchy hier(two_tier(KiB(64)));
  TieredKvStore store(hier, small_config());
  const KvTimelineResult t = simulate_service_time(store, WorkloadStats{});
  EXPECT_DOUBLE_EQ(t.seconds, 0.0);
}

TEST(KvTimeline, RejectsBadConfig) {
  MemoryHierarchy hier(two_tier(KiB(64)));
  TieredKvStore store(hier, small_config());
  WorkloadStats stats;
  stats.epochs = 1;
  KvTimelineConfig cfg;
  cfg.workers = 0;
  EXPECT_THROW(simulate_service_time(store, stats, cfg),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::kv

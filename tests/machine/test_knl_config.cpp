#include "mlm/machine/knl_config.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm {
namespace {

TEST(KnlConfig, Knl7250MatchesPaper) {
  const KnlConfig c = knl7250();
  // Section 1.1 topology.
  EXPECT_EQ(c.cores, 68u);
  EXPECT_EQ(c.smt_per_core, 4u);
  EXPECT_EQ(c.total_threads(), 272u);
  EXPECT_EQ(c.ddr_channels, 6u);
  EXPECT_EQ(c.mcdram_stacks, 8u);
  EXPECT_EQ(c.mcdram_bytes, GiB(16));
  EXPECT_EQ(c.cache_line_bytes, 64u);
  // Table 2 rates.
  EXPECT_DOUBLE_EQ(c.ddr_max_bw, 90e9);
  EXPECT_DOUBLE_EQ(c.mcdram_max_bw, 400e9);
  EXPECT_DOUBLE_EQ(c.s_copy, 4.8e9);
  EXPECT_DOUBLE_EQ(c.s_comp, 6.78e9);
}

TEST(KnlConfig, ValidateAcceptsDefault) {
  EXPECT_NO_THROW(knl7250().validate());
}

TEST(KnlConfig, ValidateRejectsBrokenConfigs) {
  KnlConfig c = knl7250();
  c.cores = 0;
  EXPECT_THROW(c.validate(), InvalidArgumentError);

  c = knl7250();
  c.mcdram_bytes = 0;
  EXPECT_THROW(c.validate(), InvalidArgumentError);

  c = knl7250();
  c.s_copy = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgumentError);

  c = knl7250();
  c.cache_line_bytes = 48;  // not a power of two
  EXPECT_THROW(c.validate(), InvalidArgumentError);

  c = knl7250();
  c.mcdram_max_bw = c.ddr_max_bw / 2;  // inverted hierarchy
  EXPECT_THROW(c.validate(), InvalidArgumentError);
}

TEST(ScaledKnl, PreservesBandwidthRatios) {
  const KnlConfig full = knl7250();
  const KnlConfig small = scaled_knl(1024, 8);
  EXPECT_DOUBLE_EQ(small.mcdram_max_bw / small.ddr_max_bw,
                   full.mcdram_max_bw / full.ddr_max_bw);
  EXPECT_DOUBLE_EQ(small.s_comp / small.s_copy,
                   full.s_comp / full.s_copy);
  EXPECT_EQ(small.mcdram_bytes, GiB(16) / 1024);
  EXPECT_LE(small.total_threads(), 8u);
}

TEST(ScaledKnl, FactorOneKeepsCapacities) {
  const KnlConfig c = scaled_knl(1, 0);
  EXPECT_EQ(c.mcdram_bytes, GiB(16));
  EXPECT_EQ(c.total_threads(), 272u);
}

TEST(ScaledKnl, RejectsZeroFactor) {
  EXPECT_THROW(scaled_knl(0, 4), InvalidArgumentError);
}

TEST(MakeDualSpaceConfig, CarriesModeAndCapacity) {
  const KnlConfig c = knl7250();
  const DualSpaceConfig flat = make_dual_space_config(c, McdramMode::Flat);
  EXPECT_EQ(flat.mode, McdramMode::Flat);
  EXPECT_EQ(flat.mcdram_bytes, GiB(16));
  const DualSpaceConfig hybrid =
      make_dual_space_config(c, McdramMode::Hybrid, 0.25);
  EXPECT_DOUBLE_EQ(hybrid.hybrid_flat_fraction, 0.25);
}

}  // namespace
}  // namespace mlm

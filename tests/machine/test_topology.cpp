// Topology description and affinity planning (DESIGN.md §11): synthetic
// topologies, sysfs cpulist parsing, tier->node mapping, and the pure
// per-policy cpu plans — including the graceful wrap/clamp behaviour for
// requests that exceed the machine, which must degrade with counters and
// never fail.
#include "mlm/machine/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(SyntheticTopology, NodeMajorNumbering) {
  const Topology topo = synthetic_topology(2, 4);
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_TRUE(topo.synthetic);
  EXPECT_EQ(topo.source, "synthetic");
  EXPECT_EQ(topo.total_cpus(), 8u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo.node_of_cpu(0), 0);
  EXPECT_EQ(topo.node_of_cpu(7), 1);
  EXPECT_EQ(topo.node_of_cpu(8), -1);
}

TEST(ParseCpuList, RangesSinglesAndWhitespace) {
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list(" 5 , 7 \n"), (std::vector<int>{5, 7}));
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list(" \n").empty());
}

TEST(ParseCpuList, RejectsMalformedInput) {
  EXPECT_THROW(parse_cpu_list("a-b"), InvalidArgumentError);
  EXPECT_THROW(parse_cpu_list("3-1"), InvalidArgumentError);
  EXPECT_THROW(parse_cpu_list("1,,2"), InvalidArgumentError);
  EXPECT_THROW(parse_cpu_list("1-"), InvalidArgumentError);
}

TEST(DiscoverTopology, NeverThrowsAndReportsItsSource) {
  const Topology topo = discover_topology();
  EXPECT_GE(topo.total_cpus(), 1u);
  EXPECT_TRUE(topo.source == "sysfs" || topo.source == "fallback")
      << topo.source;
  // A fallback description must say it is not the real machine.
  if (topo.source == "fallback") {
    EXPECT_TRUE(topo.synthetic);
  }
}

TEST(MapTiersToNodes, NearTierOnNodeZeroFartherTiersOutward) {
  const Topology topo = synthetic_topology(2, 4);
  EXPECT_EQ(map_tiers_to_nodes(topo, 2), (std::vector<std::size_t>{0, 1}));
  // More tiers than nodes: clamp to the last node.
  EXPECT_EQ(map_tiers_to_nodes(topo, 3),
            (std::vector<std::size_t>{0, 1, 1}));
  // Single-node machine: every tier lands on node 0.
  EXPECT_EQ(map_tiers_to_nodes(synthetic_topology(1, 4), 2),
            (std::vector<std::size_t>{0, 0}));
  EXPECT_TRUE(map_tiers_to_nodes(Topology{}, 2).empty());
}

TEST(AffinityPolicyNames, RoundTripAndAliases) {
  for (AffinityPolicy policy : kAllAffinityPolicies) {
    EXPECT_EQ(affinity_policy_from_string(to_string(policy)), policy);
  }
  EXPECT_EQ(affinity_policy_from_string("tier-local"),
            AffinityPolicy::TierLocal);
  EXPECT_THROW(affinity_policy_from_string("bogus"), InvalidArgumentError);
}

TEST(PlanAffinity, NonePlansNoPins) {
  const Topology topo = synthetic_topology(2, 4);
  const AffinityPlan plan = plan_affinity(AffinityPolicy::None, topo, 8);
  EXPECT_FALSE(plan.pins());
  EXPECT_EQ(plan.oversubscribed, 0u);
}

TEST(PlanAffinity, CompactFillsNodeMajor) {
  const Topology topo = synthetic_topology(2, 4);
  const AffinityPlan plan = plan_affinity(AffinityPolicy::Compact, topo, 6);
  EXPECT_EQ(plan.worker_cpus, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(plan.oversubscribed, 0u);
}

TEST(PlanAffinity, CompactOffsetGivesSiblingPoolsDisjointRanges) {
  const Topology topo = synthetic_topology(2, 4);
  const AffinityPlan plan =
      plan_affinity(AffinityPolicy::Compact, topo, 3, 0, 2);
  EXPECT_EQ(plan.worker_cpus, (std::vector<int>{2, 3, 4}));
}

TEST(PlanAffinity, ScatterRoundRobinsNodes) {
  const Topology topo = synthetic_topology(2, 4);
  const AffinityPlan plan = plan_affinity(AffinityPolicy::Scatter, topo, 4);
  ASSERT_EQ(plan.worker_cpus.size(), 4u);
  EXPECT_EQ(topo.node_of_cpu(plan.worker_cpus[0]), 0);
  EXPECT_EQ(topo.node_of_cpu(plan.worker_cpus[1]), 1);
  EXPECT_EQ(topo.node_of_cpu(plan.worker_cpus[2]), 0);
  EXPECT_EQ(topo.node_of_cpu(plan.worker_cpus[3]), 1);
  // Distinct cpus while supply lasts.
  const std::set<int> unique(plan.worker_cpus.begin(),
                             plan.worker_cpus.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(PlanAffinity, TierLocalKeepsEveryWorkerOnTheNode) {
  const Topology topo = synthetic_topology(2, 4);
  const AffinityPlan plan =
      plan_affinity(AffinityPolicy::TierLocal, topo, 3, 1);
  for (int cpu : plan.worker_cpus) {
    EXPECT_EQ(topo.node_of_cpu(cpu), 1);
  }
  EXPECT_EQ(plan.clamped_nodes, 0u);
}

TEST(PlanAffinity, OversizedRequestsWrapAndCount) {
  const Topology topo = synthetic_topology(2, 2);
  for (AffinityPolicy policy :
       {AffinityPolicy::Compact, AffinityPolicy::Scatter,
        AffinityPolicy::TierLocal}) {
    const AffinityPlan plan = plan_affinity(policy, topo, 10, 0);
    ASSERT_EQ(plan.worker_cpus.size(), 10u) << to_string(policy);
    // Every worker still got a real cpu (wrapped, not dropped)...
    for (int cpu : plan.worker_cpus) {
      EXPECT_NE(topo.node_of_cpu(cpu), -1) << to_string(policy);
    }
    // ...and the wrap was recorded, never thrown.
    EXPECT_GT(plan.oversubscribed, 0u) << to_string(policy);
  }
}

TEST(PlanAffinity, OutOfRangePreferredNodeClampsWithCounter) {
  const Topology topo = synthetic_topology(2, 4);
  const AffinityPlan plan =
      plan_affinity(AffinityPolicy::TierLocal, topo, 2, 7);
  EXPECT_EQ(plan.clamped_nodes, 1u);
  for (int cpu : plan.worker_cpus) {
    EXPECT_EQ(topo.node_of_cpu(cpu), 1);  // clamped to the last node
  }
}

TEST(PlanAffinity, EmptyTopologyYieldsEmptyPlanNeverThrows) {
  for (AffinityPolicy policy : kAllAffinityPolicies) {
    const AffinityPlan plan = plan_affinity(policy, Topology{}, 4);
    EXPECT_FALSE(plan.pins()) << to_string(policy);
  }
}

TEST(PlanAffinity, PlansAreDeterministic) {
  const Topology topo = synthetic_topology(4, 16);
  for (AffinityPolicy policy : kAllAffinityPolicies) {
    const AffinityPlan a = plan_affinity(policy, topo, 23, 2, 3);
    const AffinityPlan b = plan_affinity(policy, topo, 23, 2, 3);
    EXPECT_EQ(a.worker_cpus, b.worker_cpus) << to_string(policy);
    EXPECT_EQ(a.oversubscribed, b.oversubscribed);
  }
}

}  // namespace
}  // namespace mlm

#include "mlm/memory/dual_space.h"

#include <gtest/gtest.h>

#include "mlm/support/units.h"

namespace mlm {
namespace {

DualSpaceConfig cfg(McdramMode mode, std::uint64_t mcdram = GiB(1),
                    double hybrid_frac = 0.5) {
  DualSpaceConfig c;
  c.mode = mode;
  c.mcdram_bytes = mcdram;
  c.hybrid_flat_fraction = hybrid_frac;
  return c;
}

TEST(DualSpace, FlatModeExposesAllMcdram) {
  DualSpace ds(cfg(McdramMode::Flat));
  EXPECT_TRUE(ds.has_addressable_mcdram());
  EXPECT_EQ(ds.addressable_mcdram_bytes(), GiB(1));
  EXPECT_EQ(ds.cache_mcdram_bytes(), 0u);
  EXPECT_EQ(ds.mcdram().capacity_bytes(), GiB(1));
  EXPECT_EQ(&ds.near_space(), &ds.mcdram());
}

TEST(DualSpace, CacheModeHasNoAddressableMcdram) {
  DualSpace ds(cfg(McdramMode::Cache));
  EXPECT_FALSE(ds.has_addressable_mcdram());
  EXPECT_EQ(ds.addressable_mcdram_bytes(), 0u);
  EXPECT_EQ(ds.cache_mcdram_bytes(), GiB(1));
  EXPECT_THROW(ds.mcdram(), Error);
  EXPECT_EQ(&ds.near_space(), &ds.ddr());
}

TEST(DualSpace, ImplicitCacheBehavesLikeCacheForAllocation) {
  DualSpace ds(cfg(McdramMode::ImplicitCache));
  EXPECT_FALSE(ds.has_addressable_mcdram());
  EXPECT_EQ(ds.cache_mcdram_bytes(), GiB(1));
}

TEST(DualSpace, HybridSplitsMcdram) {
  DualSpace ds(cfg(McdramMode::Hybrid, GiB(1), 0.25));
  EXPECT_TRUE(ds.has_addressable_mcdram());
  EXPECT_EQ(ds.addressable_mcdram_bytes(), GiB(1) / 4);
  EXPECT_EQ(ds.cache_mcdram_bytes(), GiB(1) * 3 / 4);
  EXPECT_EQ(ds.mcdram().capacity_bytes(), GiB(1) / 4);
}

TEST(DualSpace, DdrOnlyUsesNoMcdram) {
  DualSpace ds(cfg(McdramMode::DdrOnly));
  EXPECT_FALSE(ds.has_addressable_mcdram());
  EXPECT_EQ(ds.cache_mcdram_bytes(), 0u);
  EXPECT_EQ(&ds.near_space(), &ds.ddr());
}

TEST(DualSpace, McdramCapacityEnforced) {
  DualSpace ds(cfg(McdramMode::Flat, MiB(1)));
  void* p = ds.mcdram().allocate(MiB(1) - 64);
  EXPECT_THROW(ds.mcdram().allocate(KiB(64)), OutOfMemoryError);
  ds.mcdram().deallocate(p);
}

TEST(DualSpace, DdrUnlimitedByDefault) {
  DualSpace ds(cfg(McdramMode::Flat));
  EXPECT_TRUE(ds.ddr().unlimited());
}

TEST(DualSpace, RejectsBadConfig) {
  EXPECT_THROW(DualSpace(cfg(McdramMode::Flat, 0)), InvalidArgumentError);
  EXPECT_THROW(DualSpace(cfg(McdramMode::Hybrid, GiB(1), 0.0)),
               InvalidArgumentError);
  EXPECT_THROW(DualSpace(cfg(McdramMode::Hybrid, GiB(1), 1.0)),
               InvalidArgumentError);
}

TEST(McdramMode, Names) {
  EXPECT_STREQ(to_string(McdramMode::Flat), "flat");
  EXPECT_STREQ(to_string(McdramMode::Cache), "cache");
  EXPECT_STREQ(to_string(McdramMode::Hybrid), "hybrid");
  EXPECT_STREQ(to_string(McdramMode::ImplicitCache), "implicit");
  EXPECT_STREQ(to_string(McdramMode::DdrOnly), "ddr-only");
}

TEST(McdramMode, Predicates) {
  EXPECT_TRUE(mode_has_addressable_mcdram(McdramMode::Flat));
  EXPECT_TRUE(mode_has_addressable_mcdram(McdramMode::Hybrid));
  EXPECT_FALSE(mode_has_addressable_mcdram(McdramMode::Cache));
  EXPECT_FALSE(mode_has_addressable_mcdram(McdramMode::ImplicitCache));
  EXPECT_FALSE(mode_has_addressable_mcdram(McdramMode::DdrOnly));

  EXPECT_TRUE(mode_has_hardware_cache(McdramMode::Cache));
  EXPECT_TRUE(mode_has_hardware_cache(McdramMode::Hybrid));
  EXPECT_TRUE(mode_has_hardware_cache(McdramMode::ImplicitCache));
  EXPECT_FALSE(mode_has_hardware_cache(McdramMode::Flat));
  EXPECT_FALSE(mode_has_hardware_cache(McdramMode::DdrOnly));
}

}  // namespace
}  // namespace mlm

#include "mlm/memory/memkind_shim.h"

#include <gtest/gtest.h>

#include <cstring>

#include "mlm/memory/memory_space.h"
#include "mlm/support/units.h"

namespace mlm {
namespace {

class MemkindShimTest : public ::testing::Test {
 protected:
  void TearDown() override {
    mlm_hbw_set_space(nullptr);
    mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED);
  }
};

TEST_F(MemkindShimTest, UnavailableWithoutInstalledSpace) {
  mlm_hbw_set_space(nullptr);
  EXPECT_EQ(mlm_hbw_check_available(), 0);
  // PREFERRED policy still serves from the heap.
  void* p = mlm_hbw_malloc(128);
  ASSERT_NE(p, nullptr);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, AllocatesFromInstalledSpace) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  EXPECT_EQ(mlm_hbw_check_available(), 1);
  void* p = mlm_hbw_malloc(KiB(16));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
  mlm_hbw_free(p);
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST_F(MemkindShimTest, BindPolicyFailsWhenExhausted) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  ASSERT_EQ(mlm_hbw_set_policy(MLM_HBW_POLICY_BIND), 0);
  void* p = mlm_hbw_malloc(KiB(16));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(mlm_hbw_malloc(KiB(16)), nullptr);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, PreferredPolicyFallsBackToHeap) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  ASSERT_EQ(mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED), 0);
  void* a = mlm_hbw_malloc(KiB(16));
  void* b = mlm_hbw_malloc(KiB(16));  // exceeds the space -> heap
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
  mlm_hbw_free(a);
  mlm_hbw_free(b);  // must route to the heap, not the space
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST_F(MemkindShimTest, CallocZeroesMemory) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  auto* p = static_cast<unsigned char*>(mlm_hbw_calloc(100, 4));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 400; ++i) EXPECT_EQ(p[i], 0);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, CallocOverflowReturnsNull) {
  EXPECT_EQ(mlm_hbw_calloc(static_cast<size_t>(-1), 8), nullptr);
}

TEST_F(MemkindShimTest, FreeNullIsNoop) {
  EXPECT_NO_THROW(mlm_hbw_free(nullptr));
}

TEST_F(MemkindShimTest, PosixMemalignFromSpace) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  void* p = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&p, 64, KiB(16)), 0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, PosixMemalignBadAlignment) {
  void* p = reinterpret_cast<void*>(0x1);
  EXPECT_EQ(mlm_hbw_posix_memalign(&p, 0, 64), EINVAL);
  EXPECT_EQ(mlm_hbw_posix_memalign(&p, 3, 64), EINVAL);
  EXPECT_EQ(mlm_hbw_posix_memalign(&p, 48, 64), EINVAL);
  EXPECT_EQ(p, nullptr);  // cleared on failure
  EXPECT_EQ(mlm_hbw_posix_memalign(nullptr, 64, 64), EINVAL);
}

TEST_F(MemkindShimTest, PosixMemalignBindExhaustion) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  mlm_hbw_set_policy(MLM_HBW_POLICY_BIND);
  void* a = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&a, 64, KiB(16)), 0);
  void* b = nullptr;
  EXPECT_EQ(mlm_hbw_posix_memalign(&b, 64, KiB(16)), ENOMEM);
  mlm_hbw_free(a);
}

TEST_F(MemkindShimTest, LargeAlignmentFallsBackToHeap) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  void* p = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&p, 4096, KiB(8)), 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 4096, 0u);
  // 4 KiB alignment exceeds the space's 64 B guarantee: heap-served.
  EXPECT_EQ(space.stats().used_bytes, 0u);
  EXPECT_EQ(mlm_hbw_verify(p), 0);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, VerifyDistinguishesSpaceFromHeap) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  void* hbw = mlm_hbw_malloc(KiB(8));
  void* heap = mlm_hbw_malloc(KiB(16));  // exceeds remaining -> heap
  ASSERT_NE(hbw, nullptr);
  ASSERT_NE(heap, nullptr);
  EXPECT_EQ(mlm_hbw_verify(hbw), 1);
  EXPECT_EQ(mlm_hbw_verify(heap), 0);
  EXPECT_EQ(mlm_hbw_verify(nullptr), 0);
  int local = 0;
  EXPECT_EQ(mlm_hbw_verify(&local), 0);
  mlm_hbw_free(hbw);
  mlm_hbw_free(heap);
}

TEST_F(MemkindShimTest, InvalidPolicyRejected) {
  EXPECT_EQ(mlm_hbw_set_policy(static_cast<mlm_hbw_policy>(42)), -1);
  EXPECT_EQ(mlm_hbw_get_policy(), MLM_HBW_POLICY_PREFERRED);
}

}  // namespace
}  // namespace mlm

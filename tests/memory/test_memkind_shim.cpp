#include "mlm/memory/memkind_shim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "mlm/fault/fault.h"
#include "mlm/memory/memory_space.h"
#include "mlm/support/units.h"

namespace mlm {
namespace {

class MemkindShimTest : public ::testing::Test {
 protected:
  void TearDown() override {
    mlm_hbw_set_space(nullptr);
    mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED);
  }
};

TEST_F(MemkindShimTest, UnavailableWithoutInstalledSpace) {
  mlm_hbw_set_space(nullptr);
  EXPECT_EQ(mlm_hbw_check_available(), 0);
  // PREFERRED policy still serves from the heap.
  void* p = mlm_hbw_malloc(128);
  ASSERT_NE(p, nullptr);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, AllocatesFromInstalledSpace) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  EXPECT_EQ(mlm_hbw_check_available(), 1);
  void* p = mlm_hbw_malloc(KiB(16));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
  mlm_hbw_free(p);
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST_F(MemkindShimTest, BindPolicyFailsWhenExhausted) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  ASSERT_EQ(mlm_hbw_set_policy(MLM_HBW_POLICY_BIND), 0);
  void* p = mlm_hbw_malloc(KiB(16));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(mlm_hbw_malloc(KiB(16)), nullptr);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, PreferredPolicyFallsBackToHeap) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  ASSERT_EQ(mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED), 0);
  void* a = mlm_hbw_malloc(KiB(16));
  void* b = mlm_hbw_malloc(KiB(16));  // exceeds the space -> heap
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
  mlm_hbw_free(a);
  mlm_hbw_free(b);  // must route to the heap, not the space
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST_F(MemkindShimTest, CallocZeroesMemory) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  auto* p = static_cast<unsigned char*>(mlm_hbw_calloc(100, 4));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 400; ++i) EXPECT_EQ(p[i], 0);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, CallocOverflowReturnsNull) {
  EXPECT_EQ(mlm_hbw_calloc(static_cast<size_t>(-1), 8), nullptr);
}

TEST_F(MemkindShimTest, FreeNullIsNoop) {
  EXPECT_NO_THROW(mlm_hbw_free(nullptr));
}

TEST_F(MemkindShimTest, PosixMemalignFromSpace) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  void* p = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&p, 64, KiB(16)), 0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, PosixMemalignBadAlignment) {
  void* p = reinterpret_cast<void*>(0x1);
  EXPECT_EQ(mlm_hbw_posix_memalign(&p, 0, 64), EINVAL);
  EXPECT_EQ(mlm_hbw_posix_memalign(&p, 3, 64), EINVAL);
  EXPECT_EQ(mlm_hbw_posix_memalign(&p, 48, 64), EINVAL);
  EXPECT_EQ(p, nullptr);  // cleared on failure
  EXPECT_EQ(mlm_hbw_posix_memalign(nullptr, 64, 64), EINVAL);
}

TEST_F(MemkindShimTest, PosixMemalignBindExhaustion) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  mlm_hbw_set_policy(MLM_HBW_POLICY_BIND);
  void* a = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&a, 64, KiB(16)), 0);
  void* b = nullptr;
  EXPECT_EQ(mlm_hbw_posix_memalign(&b, 64, KiB(16)), ENOMEM);
  mlm_hbw_free(a);
}

TEST_F(MemkindShimTest, LargeAlignmentFallsBackToHeap) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  void* p = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&p, 4096, KiB(8)), 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 4096, 0u);
  // 4 KiB alignment exceeds the space's 64 B guarantee: heap-served.
  EXPECT_EQ(space.stats().used_bytes, 0u);
  EXPECT_EQ(mlm_hbw_verify(p), 0);
  mlm_hbw_free(p);
}

TEST_F(MemkindShimTest, VerifyDistinguishesSpaceFromHeap) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(16));
  mlm_hbw_set_space(&space);
  void* hbw = mlm_hbw_malloc(KiB(8));
  void* heap = mlm_hbw_malloc(KiB(16));  // exceeds remaining -> heap
  ASSERT_NE(hbw, nullptr);
  ASSERT_NE(heap, nullptr);
  EXPECT_EQ(mlm_hbw_verify(hbw), 1);
  EXPECT_EQ(mlm_hbw_verify(heap), 0);
  EXPECT_EQ(mlm_hbw_verify(nullptr), 0);
  int local = 0;
  EXPECT_EQ(mlm_hbw_verify(&local), 0);
  mlm_hbw_free(hbw);
  mlm_hbw_free(heap);
}

// Transient HBW exhaustion (a co-tenant briefly holding MCDRAM): the
// armed site fires a bounded number of times, after which allocation
// succeeds again — under BIND the caller sees the failures, under
// PREFERRED it never does.
TEST_F(MemkindShimTest, InjectedTransientExhaustionClears) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  mlm_hbw_set_policy(MLM_HBW_POLICY_BIND);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kHbwMalloc,
           fault::FaultTrigger::after_n(0, 2));  // fail twice, then clear
  fault::ScopedFaultInjector inject(plan);

  EXPECT_EQ(mlm_hbw_malloc(KiB(1)), nullptr);
  EXPECT_EQ(mlm_hbw_malloc(KiB(1)), nullptr);
  void* p = mlm_hbw_malloc(KiB(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(mlm_hbw_verify(p), 1);
  mlm_hbw_free(p);
  EXPECT_EQ(plan.stats(fault::sites::kHbwMalloc).fires, 2u);
}

TEST_F(MemkindShimTest, InjectedExhaustionPreferredNeverFailsCaller) {
  MemorySpace space("hbw", MemKind::MCDRAM, KiB(64));
  mlm_hbw_set_space(&space);
  mlm_hbw_set_policy(MLM_HBW_POLICY_PREFERRED);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kHbwPosixMemalign,
           fault::FaultTrigger::after_n(0, 1));
  fault::ScopedFaultInjector inject(plan);

  void* a = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&a, 64, KiB(1)), 0);
  EXPECT_EQ(mlm_hbw_verify(a), 0);  // heap fallback, like memkind
  void* b = nullptr;
  ASSERT_EQ(mlm_hbw_posix_memalign(&b, 64, KiB(1)), 0);
  EXPECT_EQ(mlm_hbw_verify(b), 1);  // fault cleared: HBW again
  mlm_hbw_free(a);
  mlm_hbw_free(b);
}

// mlm_hbw_set_space is atomic: allocations racing a space swap see the
// old or the new space (never a torn pointer) and every pointer frees
// through the allocator that produced it (run under tsan via `race`
// suites; here we assert the accounting stays exact).
TEST_F(MemkindShimTest, ConcurrentSetSpaceAndMallocStayConsistent) {
  MemorySpace a("hbw-a", MemKind::MCDRAM, MiB(1));
  MemorySpace b("hbw-b", MemKind::MCDRAM, MiB(1));
  std::atomic<bool> stop{false};

  std::thread swapper([&] {
    for (int i = 0; i < 2000; ++i) {
      mlm_hbw_set_space(i % 2 == 0 ? &a : &b);
    }
    stop.store(true);
  });

  std::vector<std::thread> allocators;
  for (int t = 0; t < 3; ++t) {
    allocators.emplace_back([&] {
      while (!stop.load()) {
        void* p = mlm_hbw_malloc(256);
        if (p != nullptr) mlm_hbw_free(p);
      }
    });
  }
  swapper.join();
  for (auto& th : allocators) th.join();

  EXPECT_EQ(a.stats().used_bytes, 0u);
  EXPECT_EQ(b.stats().used_bytes, 0u);
}

TEST_F(MemkindShimTest, InvalidPolicyRejected) {
  EXPECT_EQ(mlm_hbw_set_policy(static_cast<mlm_hbw_policy>(42)), -1);
  EXPECT_EQ(mlm_hbw_get_policy(), MLM_HBW_POLICY_PREFERRED);
}

}  // namespace
}  // namespace mlm

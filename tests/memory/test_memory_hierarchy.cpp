#include "mlm/memory/memory_hierarchy.h"

#include <gtest/gtest.h>

#include "mlm/support/units.h"

namespace mlm {
namespace {

HierarchyConfig three_tier(McdramMode mode, double hybrid_frac = 0.5) {
  HierarchyConfig c;
  c.mode = mode;
  c.hybrid_flat_fraction = hybrid_frac;
  c.tiers = {
      TierConfig{"nvm", MemKind::NVM, 0, 0.0, 0.0, 0.0},
      TierConfig{"ddr", MemKind::DDR, MiB(2), 0.0, 0.0, 0.0},
      TierConfig{"mcdram", MemKind::MCDRAM, KiB(512), 0.0, 0.0, 0.0},
  };
  return c;
}

TEST(MemoryHierarchy, TierAndPairCounts) {
  MemoryHierarchy h(three_tier(McdramMode::Flat));
  EXPECT_EQ(h.tier_count(), 3u);
  EXPECT_EQ(h.pair_count(), 2u);
  EXPECT_EQ(h.tier_config(0).name, "nvm");
  EXPECT_EQ(h.tier_config(2).name, "mcdram");
}

TEST(MemoryHierarchy, FlatModeAllTiersAddressable) {
  MemoryHierarchy h(three_tier(McdramMode::Flat));
  EXPECT_TRUE(h.tier_addressable(0));
  EXPECT_TRUE(h.tier_addressable(1));
  EXPECT_TRUE(h.tier_addressable(2));
  EXPECT_TRUE(h.tier(0).unlimited());
  EXPECT_EQ(h.tier(1).capacity_bytes(), MiB(2));
  EXPECT_EQ(h.tier(2).capacity_bytes(), KiB(512));
  EXPECT_EQ(&h.nearest_addressable(), &h.tier(2));
  EXPECT_EQ(&h.farthest(), &h.tier(0));
}

TEST(MemoryHierarchy, CacheModeSkipsMcdramTier) {
  MemoryHierarchy h(three_tier(McdramMode::Cache));
  EXPECT_TRUE(h.tier_addressable(1));
  EXPECT_FALSE(h.tier_addressable(2));
  EXPECT_THROW(h.tier(2), Error);
  EXPECT_EQ(h.addressable_bytes(2), 0u);
  EXPECT_EQ(h.cache_bytes(2), KiB(512));
  // Chunked code stages into the last addressable tier: DDR.
  EXPECT_EQ(&h.nearest_addressable(), &h.tier(1));
}

TEST(MemoryHierarchy, HybridSplitsOnlyMcdramTiers) {
  MemoryHierarchy h(three_tier(McdramMode::Hybrid, 0.25));
  EXPECT_EQ(h.addressable_bytes(2), KiB(512) / 4);
  EXPECT_EQ(h.cache_bytes(2), KiB(512) * 3 / 4);
  EXPECT_EQ(h.tier(2).capacity_bytes(), KiB(512) / 4);
  // Non-MCDRAM tiers are unaffected by the mode.
  EXPECT_EQ(h.addressable_bytes(1), MiB(2));
  EXPECT_EQ(h.cache_bytes(1), 0u);
}

TEST(MemoryHierarchy, PairExposesAdjacentTiers) {
  MemoryHierarchy h(three_tier(McdramMode::Flat));
  TierPair outer = h.pair(0);
  EXPECT_EQ(outer.far_tier, &h.tier(0));
  EXPECT_EQ(outer.near_tier, &h.tier(1));
  EXPECT_TRUE(outer.explicit_copies());
  TierPair inner = h.pair(1);
  EXPECT_EQ(inner.far_tier, &h.tier(1));
  EXPECT_EQ(inner.near_tier, &h.tier(2));
  EXPECT_THROW(h.pair(2), InvalidArgumentError);
}

TEST(MemoryHierarchy, PairDegeneratesWithoutAddressableNearTier) {
  MemoryHierarchy h(three_tier(McdramMode::ImplicitCache));
  TierPair inner = h.pair(1);
  EXPECT_EQ(inner.far_tier, &h.tier(1));
  EXPECT_EQ(inner.near_tier, nullptr);
  EXPECT_FALSE(inner.explicit_copies());
}

TEST(MemoryHierarchy, RejectsBadConfig) {
  HierarchyConfig empty;
  EXPECT_THROW(MemoryHierarchy h(empty), InvalidArgumentError);

  HierarchyConfig zero_mcdram = three_tier(McdramMode::Flat);
  zero_mcdram.tiers[2].capacity_bytes = 0;
  EXPECT_THROW(MemoryHierarchy h(zero_mcdram), InvalidArgumentError);

  EXPECT_THROW(MemoryHierarchy h(three_tier(McdramMode::Hybrid, 0.0)),
               InvalidArgumentError);
  EXPECT_THROW(MemoryHierarchy h(three_tier(McdramMode::Hybrid, 1.0)),
               InvalidArgumentError);

  HierarchyConfig unnamed = three_tier(McdramMode::Flat);
  unnamed.tiers[0].name.clear();
  EXPECT_THROW(MemoryHierarchy h(unnamed), InvalidArgumentError);
}

TEST(BudgetedView, TiersBecomeSubArenasOfTheParent) {
  MemoryHierarchy parent(three_tier(McdramMode::Flat));
  MemoryHierarchy view(parent, {0, MiB(1), KiB(128)}, "job0");
  EXPECT_EQ(view.tier_count(), 3u);
  EXPECT_EQ(view.tier(2).name(), "job0/mcdram");
  EXPECT_EQ(view.tier(2).parent(), &parent.tier(2));
  EXPECT_EQ(view.tier(2).capacity_bytes(), KiB(128));
  EXPECT_EQ(view.tier(1).capacity_bytes(), MiB(1));
  // Budget 0 = share the parent's full (here unlimited) tier.
  EXPECT_TRUE(view.tier(0).unlimited());
  EXPECT_EQ(view.addressable_bytes(2), KiB(128));

  void* p = view.tier(2).allocate(KiB(64));
  EXPECT_EQ(parent.tier(2).stats().used_bytes, KiB(64));
  view.tier(2).deallocate(p);
  EXPECT_THROW(view.tier(2).allocate(KiB(256)), OutOfMemoryError);
}

TEST(BudgetedView, CannotGrowBeyondTheParentTier) {
  MemoryHierarchy parent(three_tier(McdramMode::Flat));
  // A budget larger than the parent tier is clamped to the parent's size.
  MemoryHierarchy view(parent, {0, 0, MiB(8)}, "greedy");
  EXPECT_EQ(view.tier(2).capacity_bytes(), KiB(512));
  EXPECT_EQ(view.tier_config(2).capacity_bytes, KiB(512));
}

TEST(BudgetedView, PreservesModeDegeneracies) {
  MemoryHierarchy parent(three_tier(McdramMode::ImplicitCache));
  MemoryHierarchy view(parent, {0, MiB(1), 0}, "job0");
  EXPECT_FALSE(view.tier_addressable(2));
  EXPECT_EQ(&view.nearest_addressable(), &view.tier(1));
  EXPECT_EQ(view.tier(1).parent(), &parent.tier(1));
  TierPair inner = view.pair(1);
  EXPECT_EQ(inner.near_tier, nullptr);
}

TEST(BudgetedView, TenantsContendForTheParentTier) {
  MemoryHierarchy parent(three_tier(McdramMode::Flat));
  MemoryHierarchy a(parent, {0, 0, KiB(384)}, "a");
  MemoryHierarchy b(parent, {0, 0, KiB(384)}, "b");
  void* pa = a.tier(2).allocate(KiB(320));
  // b's budget admits 384K but the shared mcdram tier only has 192K left.
  EXPECT_EQ(b.tier(2).try_allocate(KiB(256)), nullptr);
  void* pb = b.tier(2).allocate(KiB(128));
  EXPECT_EQ(parent.tier(2).stats().used_bytes, KiB(448));
  a.tier(2).deallocate(pa);
  b.tier(2).deallocate(pb);
}

TEST(BudgetedView, ZeroAndMissingBudgetsShareEveryParentTier) {
  // Budget 0 (or a budgets vector shorter than the tier list) means
  // "share the parent tier's full capacity": the view's finite tiers
  // report the parent's capacity, unlimited tiers stay unlimited, and
  // nothing is reserved up front.
  MemoryHierarchy parent(three_tier(McdramMode::Flat));
  MemoryHierarchy view(parent, {}, "job0");
  EXPECT_EQ(view.tier_count(), 3u);
  EXPECT_TRUE(view.tier(0).unlimited());
  EXPECT_EQ(view.tier(1).capacity_bytes(), MiB(2));
  EXPECT_EQ(view.tier(2).capacity_bytes(), KiB(512));
  EXPECT_EQ(view.addressable_bytes(2), KiB(512));

  // Pure forwarding: the view can consume the entire parent tier, and
  // the parent's capacity (not any view-side budget) is what stops it.
  void* p = view.tier(2).allocate(KiB(512));
  EXPECT_EQ(parent.tier(2).stats().used_bytes, KiB(512));
  EXPECT_EQ(view.tier(2).try_allocate(64), nullptr);
  view.tier(2).deallocate(p);
  EXPECT_EQ(parent.tier(2).stats().used_bytes, 0u);
}

TEST(BudgetedView, NestedViewOfViewChainsBudgetsAndAccounting) {
  // A view of a view: each level's budget caps the one below, an inner
  // budget larger than the outer view's capacity is clamped to it, and
  // an allocation through the innermost arena is accounted at every
  // level up to the root.
  MemoryHierarchy root(three_tier(McdramMode::Flat));
  MemoryHierarchy outer(root, {0, MiB(1), KiB(256)}, "outer");
  MemoryHierarchy inner(outer, {0, MiB(8), KiB(128)}, "inner");

  EXPECT_EQ(inner.tier(2).parent(), &outer.tier(2));
  EXPECT_EQ(outer.tier(2).parent(), &root.tier(2));
  // Labels prefix the config tier name (not the outer arena's name).
  EXPECT_EQ(inner.tier(2).name(), "inner/mcdram");
  EXPECT_EQ(inner.tier(2).capacity_bytes(), KiB(128));
  // The inner ddr budget (8M) exceeds the outer view's 1M: clamped.
  EXPECT_EQ(inner.tier(1).capacity_bytes(), MiB(1));

  void* p = inner.tier(2).allocate(KiB(64));
  EXPECT_EQ(inner.tier(2).stats().used_bytes, KiB(64));
  EXPECT_EQ(outer.tier(2).stats().used_bytes, KiB(64));
  EXPECT_EQ(root.tier(2).stats().used_bytes, KiB(64));

  // The inner budget binds before the outer one...
  EXPECT_EQ(inner.tier(2).try_allocate(KiB(128)), nullptr);
  // ...and the outer budget binds before the root capacity: a sibling
  // of the inner view sees the outer's remaining 192K, not mcdram's.
  MemoryHierarchy sibling(outer, {0, 0, 0}, "sib");
  EXPECT_EQ(sibling.tier(2).capacity_bytes(), KiB(256));
  EXPECT_EQ(sibling.tier(2).try_allocate(KiB(256)), nullptr);
  void* q = sibling.tier(2).allocate(KiB(192));
  EXPECT_EQ(root.tier(2).stats().used_bytes, KiB(256));
  sibling.tier(2).deallocate(q);
  inner.tier(2).deallocate(p);
  EXPECT_EQ(root.tier(2).stats().used_bytes, 0u);
}

TEST(BudgetedView, ReleaseAfterParentHighWaterReset) {
  // Benchmark-style reset on the parent hierarchy while a tenant view
  // still holds memory: the release must stay balanced and the
  // high-water mark re-tracks from the reset point.
  MemoryHierarchy parent(three_tier(McdramMode::Flat));
  MemoryHierarchy view(parent, {0, 0, KiB(256)}, "job0");
  void* p = view.tier(2).allocate(KiB(128));
  void* q = view.tier(2).allocate(KiB(64));
  view.tier(2).deallocate(q);
  EXPECT_EQ(parent.tier(2).stats().high_water_bytes, KiB(192));

  parent.tier(2).reset_high_water();
  EXPECT_EQ(parent.tier(2).stats().high_water_bytes, KiB(128));

  view.tier(2).deallocate(p);
  EXPECT_EQ(parent.tier(2).stats().used_bytes, 0u);
  EXPECT_EQ(view.tier(2).stats().used_bytes, 0u);
  EXPECT_EQ(parent.tier(2).stats().high_water_bytes, KiB(128));

  // The tier stays fully usable after the reset/release cycle.
  void* r = view.tier(2).allocate(KiB(256));
  ASSERT_NE(r, nullptr);
  view.tier(2).deallocate(r);
}

TEST(BudgetedView, RejectsTooManyBudgets) {
  MemoryHierarchy parent(three_tier(McdramMode::Flat));
  EXPECT_THROW(MemoryHierarchy v(parent, {0, 0, 0, 0}, "job0"),
               InvalidArgumentError);
}

TEST(MemoryHierarchy, CapacityEnforcedPerTier) {
  MemoryHierarchy h(three_tier(McdramMode::Flat));
  void* p = h.tier(2).allocate(KiB(512) - 64);
  EXPECT_THROW(h.tier(2).allocate(KiB(64)), OutOfMemoryError);
  h.tier(2).deallocate(p);
  // DDR tier enforces its own limit independently.
  void* q = h.tier(1).allocate(MiB(2));
  EXPECT_THROW(h.tier(1).allocate(64), OutOfMemoryError);
  h.tier(1).deallocate(q);
}

}  // namespace
}  // namespace mlm

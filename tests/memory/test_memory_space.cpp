#include "mlm/memory/memory_space.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "mlm/support/units.h"

namespace mlm {
namespace {

TEST(MemorySpace, AllocateWithinCapacity) {
  MemorySpace space("mcdram", MemKind::MCDRAM, KiB(64));
  void* p = space.allocate(KiB(32));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(space.stats().used_bytes, KiB(32));
  space.deallocate(p);
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST(MemorySpace, ExhaustionThrowsOutOfMemory) {
  MemorySpace space("mcdram", MemKind::MCDRAM, KiB(64));
  void* p = space.allocate(KiB(48));
  EXPECT_THROW(space.allocate(KiB(32)), OutOfMemoryError);
  space.deallocate(p);
  EXPECT_NO_THROW(space.deallocate(space.allocate(KiB(32))));
}

TEST(MemorySpace, TryAllocateReturnsNullInsteadOfThrowing) {
  MemorySpace space("mcdram", MemKind::MCDRAM, KiB(16));
  void* p = space.try_allocate(KiB(32));
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST(MemorySpace, UnlimitedCapacity) {
  MemorySpace space("ddr", MemKind::DDR, 0);
  EXPECT_TRUE(space.unlimited());
  EXPECT_TRUE(space.would_fit(GiB(1)));
  void* p = space.allocate(MiB(4));
  EXPECT_NE(p, nullptr);
  space.deallocate(p);
}

TEST(MemorySpace, AlignmentIs64Bytes) {
  MemorySpace space("s", MemKind::DDR, 0);
  for (std::size_t sz : {1u, 7u, 63u, 64u, 100u}) {
    void* p = space.allocate(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << sz;
    space.deallocate(p);
  }
}

TEST(MemorySpace, AccountingRoundsUpToAlignment) {
  MemorySpace space("s", MemKind::MCDRAM, 128);
  void* p = space.allocate(1);  // rounds to 64
  EXPECT_EQ(space.stats().used_bytes, 64u);
  void* q = space.try_allocate(65);  // would round to 128 -> exceeds
  EXPECT_EQ(q, nullptr) << "65 bytes rounds to 128, only 64 left";
  space.deallocate(p);
}

TEST(MemorySpace, ZeroByteAllocationGetsDistinctPointer) {
  MemorySpace space("s", MemKind::DDR, 0);
  void* a = space.allocate(0);
  void* b = space.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  space.deallocate(a);
  space.deallocate(b);
}

TEST(MemorySpace, HighWaterTracksPeak) {
  MemorySpace space("s", MemKind::MCDRAM, KiB(64));
  void* a = space.allocate(KiB(16));
  void* b = space.allocate(KiB(32));
  space.deallocate(b);
  EXPECT_EQ(space.stats().high_water_bytes, KiB(48));
  space.reset_high_water();
  EXPECT_EQ(space.stats().high_water_bytes, KiB(16));
  space.deallocate(a);
}

TEST(MemorySpace, DoubleFreeAndForeignFreeAreNoops) {
  MemorySpace space("s", MemKind::DDR, 0);
  void* p = space.allocate(64);
  space.deallocate(p);
  space.deallocate(p);      // double free: no crash, no accounting change
  int local = 0;
  space.deallocate(&local); // foreign pointer: no-op
  space.deallocate(nullptr);
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST(MemorySpace, StatsCountAllocations) {
  MemorySpace space("s", MemKind::DDR, 0);
  void* a = space.allocate(64);
  void* b = space.allocate(64);
  EXPECT_EQ(space.stats().allocation_count, 2u);
  EXPECT_EQ(space.stats().total_allocations, 2u);
  space.deallocate(a);
  EXPECT_EQ(space.stats().allocation_count, 1u);
  EXPECT_EQ(space.stats().total_allocations, 2u);
  space.deallocate(b);
}

TEST(MemorySpace, ConcurrentAllocateDeallocate) {
  MemorySpace space("s", MemKind::MCDRAM, MiB(64));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        void* p = space.try_allocate(KiB(16));
        if (p == nullptr) {
          ++failures;
          continue;
        }
        std::memset(p, 0xAB, KiB(16));
        space.deallocate(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(space.stats().used_bytes, 0u);
  EXPECT_EQ(failures.load(), 0);  // 4 * 16KiB << 64 MiB
}

TEST(Allocation, RaiiReleases) {
  MemorySpace space("s", MemKind::MCDRAM, KiB(64));
  {
    Allocation a(space, KiB(32));
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(space.stats().used_bytes, KiB(32));
  }
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST(Allocation, MoveTransfersOwnership) {
  MemorySpace space("s", MemKind::MCDRAM, KiB(64));
  Allocation a(space, KiB(16));
  void* p = a.get();
  Allocation b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), p);
  EXPECT_EQ(space.stats().used_bytes, KiB(16));
}

TEST(SpaceBuffer, TypedAccess) {
  MemorySpace space("s", MemKind::DDR, 0);
  SpaceBuffer<int> buf(space, 100);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.size(), 100u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<int>(i * i);
  }
  EXPECT_EQ(buf[9], 81);
  int sum = 0;
  for (int v : buf) sum += v;
  EXPECT_EQ(sum, 328350);
  buf.reset();
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(space.stats().used_bytes, 0u);
}

TEST(MemKind, Names) {
  EXPECT_STREQ(to_string(MemKind::DDR), "DDR");
  EXPECT_STREQ(to_string(MemKind::MCDRAM), "MCDRAM");
}

TEST(SubArena, ForwardsAccountingToParent) {
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  MemorySpace job("job0/mcdram", parent, KiB(32));
  EXPECT_EQ(job.parent(), &parent);
  EXPECT_EQ(parent.parent(), nullptr);
  EXPECT_EQ(job.kind(), MemKind::MCDRAM);

  void* p = job.allocate(KiB(16));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(job.owns(p));
  EXPECT_TRUE(parent.owns(p));  // backing memory lives in the parent
  EXPECT_EQ(job.stats().used_bytes, KiB(16));
  EXPECT_EQ(parent.stats().used_bytes, KiB(16));

  job.deallocate(p);
  EXPECT_EQ(job.stats().used_bytes, 0u);
  EXPECT_EQ(parent.stats().used_bytes, 0u);
  EXPECT_FALSE(parent.owns(p));
}

TEST(SubArena, BudgetCapsBelowParentCapacity) {
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  MemorySpace job("job0/mcdram", parent, KiB(16));
  EXPECT_EQ(job.try_allocate(KiB(32)), nullptr);  // over budget
  EXPECT_EQ(parent.stats().used_bytes, 0u);       // nothing leaked through
  EXPECT_THROW(job.allocate(KiB(32)), OutOfMemoryError);
  void* p = job.allocate(KiB(16));
  ASSERT_NE(p, nullptr);
  job.deallocate(p);
}

TEST(SubArena, ParentExhaustionRollsBackChildAccounting) {
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(32));
  MemorySpace greedy("a/mcdram", parent, 0);  // pure forwarding
  MemorySpace job("b/mcdram", parent, KiB(32));
  void* hog = greedy.allocate(KiB(24));
  // The job's own budget would allow this, but the shared parent can't.
  EXPECT_EQ(job.try_allocate(KiB(16)), nullptr);
  EXPECT_EQ(job.stats().used_bytes, 0u);
  EXPECT_EQ(job.stats().total_allocations, 0u);
  greedy.deallocate(hog);
  void* p = job.allocate(KiB(16));
  ASSERT_NE(p, nullptr);
  job.deallocate(p);
}

TEST(SubArena, TenantsShareTheParentArena) {
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  MemorySpace a("a/mcdram", parent, KiB(48));
  MemorySpace b("b/mcdram", parent, KiB(48));
  void* pa = a.allocate(KiB(40));
  // Each tenant's budget admits 48K, but together they are bounded by
  // the parent's 64K — the over-commit the admission controller must
  // never grant.
  EXPECT_EQ(b.try_allocate(KiB(40)), nullptr);
  void* pb = b.allocate(KiB(16));
  EXPECT_EQ(parent.stats().used_bytes, KiB(56));
  a.deallocate(pa);
  b.deallocate(pb);
  EXPECT_EQ(parent.stats().high_water_bytes, KiB(56));
}

TEST(SubArena, DestructorReturnsLeakedBytesToParent) {
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  {
    MemorySpace job("job0/mcdram", parent, KiB(32));
    (void)job.allocate(KiB(16));  // deliberately leaked by the tenant
  }
  EXPECT_EQ(parent.stats().used_bytes, 0u);
}

TEST(SubArena, ZeroBudgetIsPureForwarding) {
  // Budget 0 adds no cap of its own: the sub-arena reports unlimited
  // and the parent's capacity is the only limit it ever hits.
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  MemorySpace job("job0/mcdram", parent, 0);
  EXPECT_TRUE(job.unlimited());
  EXPECT_EQ(job.parent(), &parent);

  void* p = job.allocate(KiB(64));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(parent.stats().used_bytes, KiB(64));
  EXPECT_EQ(job.try_allocate(64), nullptr);  // parent full, not budget
  EXPECT_THROW(job.allocate(64), OutOfMemoryError);
  job.deallocate(p);
  EXPECT_EQ(parent.stats().used_bytes, 0u);

  // A zero-byte allocation through the forwarding chain still yields a
  // distinct live pointer accounted in both arenas.
  void* z = job.allocate(0);
  ASSERT_NE(z, nullptr);
  EXPECT_TRUE(job.owns(z));
  EXPECT_TRUE(parent.owns(z));
  job.deallocate(z);
}

TEST(SubArena, ReleaseAfterParentHighWaterReset) {
  // reset_high_water() between bench repetitions must not confuse the
  // forwarding accounting: releases after a parent reset still return
  // bytes, and the high-water marks re-track from the reset point.
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  MemorySpace job("job0/mcdram", parent, KiB(48));
  void* a = job.allocate(KiB(32));
  void* b = job.allocate(KiB(16));
  job.deallocate(b);
  EXPECT_EQ(parent.stats().high_water_bytes, KiB(48));

  parent.reset_high_water();
  job.reset_high_water();
  EXPECT_EQ(parent.stats().high_water_bytes, KiB(32));  // = current usage
  EXPECT_EQ(job.stats().high_water_bytes, KiB(32));

  job.deallocate(a);
  EXPECT_EQ(parent.stats().used_bytes, 0u);
  EXPECT_EQ(job.stats().used_bytes, 0u);
  // The mark keeps the post-reset peak, not the pre-reset one.
  EXPECT_EQ(parent.stats().high_water_bytes, KiB(32));

  void* c = job.allocate(KiB(16));
  EXPECT_EQ(parent.stats().high_water_bytes, KiB(32));
  job.deallocate(c);
}

TEST(SubArena, ExhaustionMessageNamesParentArena) {
  MemorySpace parent("mcdram", MemKind::MCDRAM, KiB(64));
  MemorySpace job("job0/mcdram", parent, KiB(16));
  try {
    job.allocate(KiB(32));
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job0/mcdram"), std::string::npos) << what;
    EXPECT_NE(what.find("sub-arena of 'mcdram'"), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace mlm

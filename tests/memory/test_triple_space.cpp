#include "mlm/memory/triple_space.h"

#include <gtest/gtest.h>

#include "mlm/support/units.h"

namespace mlm {
namespace {

TripleSpaceConfig cfg(McdramMode mode) {
  TripleSpaceConfig c;
  c.mode = mode;
  c.mcdram_bytes = KiB(512);
  c.ddr_bytes = MiB(2);
  c.nvm_bytes = MiB(16);
  return c;
}

TEST(TripleSpace, ExposesThreeTierHierarchy) {
  TripleSpace ts(cfg(McdramMode::Flat));
  EXPECT_EQ(ts.hierarchy().tier_count(), 3u);
  EXPECT_EQ(&ts.nvm(), &ts.hierarchy().tier(0));
  EXPECT_EQ(&ts.ddr(), &ts.hierarchy().tier(1));
  EXPECT_EQ(&ts.mcdram(), &ts.hierarchy().tier(2));
  EXPECT_EQ(ts.nvm().kind(), MemKind::NVM);
  EXPECT_EQ(ts.ddr().kind(), MemKind::DDR);
  EXPECT_EQ(ts.mcdram().kind(), MemKind::MCDRAM);
}

TEST(TripleSpace, CapacityAccountingPerTier) {
  TripleSpace ts(cfg(McdramMode::Flat));
  void* n = ts.nvm().allocate(MiB(8));
  void* d = ts.ddr().allocate(MiB(1));
  void* m = ts.mcdram().allocate(KiB(256));
  EXPECT_EQ(ts.nvm().stats().used_bytes, MiB(8));
  EXPECT_EQ(ts.ddr().stats().used_bytes, MiB(1));
  EXPECT_EQ(ts.mcdram().stats().used_bytes, KiB(256));
  // Usage in one tier does not consume another tier's capacity.
  EXPECT_EQ(ts.ddr().stats().free_bytes(), MiB(1));
  EXPECT_EQ(ts.mcdram().stats().free_bytes(), KiB(256));
  ts.nvm().deallocate(n);
  ts.ddr().deallocate(d);
  ts.mcdram().deallocate(m);
  EXPECT_EQ(ts.ddr().stats().used_bytes, 0u);
}

TEST(TripleSpace, UpperPairSharesTheHierarchyTiers) {
  TripleSpace ts(cfg(McdramMode::Flat));
  DualSpace& upper = ts.upper();
  EXPECT_EQ(&upper.ddr(), &ts.ddr());
  EXPECT_EQ(&upper.mcdram(), &ts.mcdram());
  EXPECT_EQ(&upper.hierarchy(), &ts.hierarchy());
  // Allocations through the view are visible through the owner.
  void* p = upper.mcdram().allocate(KiB(128));
  EXPECT_EQ(ts.mcdram().stats().used_bytes, KiB(128));
  upper.mcdram().deallocate(p);
}

TEST(TripleSpace, ModeGovernsMcdramAddressability) {
  for (McdramMode mode : {McdramMode::Cache, McdramMode::ImplicitCache,
                          McdramMode::DdrOnly}) {
    TripleSpace ts(cfg(mode));
    EXPECT_FALSE(ts.has_addressable_mcdram()) << to_string(mode);
    EXPECT_THROW(ts.mcdram(), Error);
    EXPECT_FALSE(ts.upper().has_addressable_mcdram());
    // The NVM and DDR tiers stay addressable regardless of mode.
    EXPECT_EQ(ts.nvm().capacity_bytes(), MiB(16));
    EXPECT_EQ(&ts.upper().near_space(), &ts.ddr());
  }
  TripleSpace hybrid(cfg(McdramMode::Hybrid));
  EXPECT_TRUE(hybrid.has_addressable_mcdram());
  EXPECT_EQ(hybrid.mcdram().capacity_bytes(), KiB(256));
}

TEST(TripleSpace, OutOfMemoryPropagatesPerTier) {
  TripleSpace ts(cfg(McdramMode::Flat));
  EXPECT_THROW(ts.mcdram().allocate(MiB(1)), OutOfMemoryError);
  EXPECT_THROW(ts.ddr().allocate(MiB(4)), OutOfMemoryError);
  EXPECT_THROW(ts.nvm().allocate(MiB(32)), OutOfMemoryError);
  // try_allocate reports the same exhaustion without throwing.
  EXPECT_EQ(ts.mcdram().try_allocate(MiB(1)), nullptr);
}

TEST(TripleSpace, RequiresDdrLimit) {
  TripleSpaceConfig c = cfg(McdramMode::Flat);
  c.ddr_bytes = 0;
  EXPECT_THROW(TripleSpace ts(c), InvalidArgumentError);
}

}  // namespace
}  // namespace mlm

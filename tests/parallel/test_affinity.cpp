// Applying affinity plans to real pools (and the deterministic no-op):
// pinning is a best-effort performance hint, so every degraded outcome —
// unpinnable cpus, oversized requests, single-node machines — must land
// in AffinityOutcome counters while the pool keeps working, and a
// DeterministicExecutor-backed TriplePools must record the request
// without ever touching a thread.
#include "mlm/parallel/affinity.h"

#include <gtest/gtest.h>

#include <atomic>

#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/parallel/triple_pools.h"

namespace mlm {
namespace {

TEST(PinCurrentThread, NegativeCpuAlwaysFails) {
  EXPECT_FALSE(pin_current_thread_to_cpu(-1));
}

TEST(PinCurrentThread, NonexistentCpuFailsGracefully) {
  // CPU_SETSIZE is 1024 on Linux; no machine this test runs on has a
  // cpu 100000, and non-Linux hosts fail every pin.  Either way: false,
  // no throw.
  EXPECT_FALSE(pin_current_thread_to_cpu(100000));
}

TEST(PinCurrentThread, RealCpuMatchesPlatformSupport) {
  if (affinity_supported()) {
    // cpu 0 exists everywhere; cgroup masks could exclude it, in which
    // case false is still the documented graceful answer.
    const bool ok = pin_current_thread_to_cpu(0);
    (void)ok;  // both outcomes are legal; the contract is "no throw"
  } else {
    EXPECT_FALSE(pin_current_thread_to_cpu(0));
  }
}

TEST(ThreadPoolAffinity, NoPlanMeansNoPinsRequested) {
  ThreadPool pool(2, "unpinned");
  const AffinityOutcome& outcome = pool.affinity_outcome();
  EXPECT_EQ(outcome.policy, AffinityPolicy::None);
  EXPECT_EQ(outcome.requested, 0u);
  EXPECT_FALSE(outcome.degraded());
}

TEST(ThreadPoolAffinity, UnpinnableCpusDegradeToCountersNotErrors) {
  // A plan full of cpus this machine does not have: every pin fails,
  // the counters say so, and the pool still runs work.
  AffinityPlan plan;
  plan.policy = AffinityPolicy::Compact;
  plan.worker_cpus = {100000, 100001, 100002};
  ThreadPool pool(3, "doomed-pins", plan);

  const AffinityOutcome& outcome = pool.affinity_outcome();
  EXPECT_EQ(outcome.policy, AffinityPolicy::Compact);
  EXPECT_EQ(outcome.requested, 3u);
  EXPECT_EQ(outcome.pinned, 0u);
  EXPECT_EQ(outcome.failed, 3u);
  EXPECT_TRUE(outcome.degraded());

  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) pool.post([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolAffinity, OversizedPlanOnTinyTopologyStillRuns) {
  // Plan for a synthetic 1x1 machine with 4 workers: the plan wraps all
  // four onto cpu 0 (oversubscribed=3) and the pool must absorb
  // whatever the real machine makes of that.
  const Topology tiny = synthetic_topology(1, 1);
  const AffinityPlan plan =
      plan_affinity(AffinityPolicy::Compact, tiny, 4);
  EXPECT_EQ(plan.oversubscribed, 3u);

  ThreadPool pool(4, "wrapped", plan);
  const AffinityOutcome& outcome = pool.affinity_outcome();
  EXPECT_EQ(outcome.requested, 4u);
  EXPECT_EQ(outcome.pinned + outcome.failed, 4u);
  EXPECT_EQ(outcome.oversubscribed, 3u);

  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.post([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolAffinity, UnpinnedSlotsAreNotCountedAsRequests) {
  AffinityPlan plan;
  plan.policy = AffinityPolicy::Scatter;
  plan.worker_cpus = {-1, -1};  // planner says: leave both unpinned
  ThreadPool pool(2, "explicit-unpinned", plan);
  EXPECT_EQ(pool.affinity_outcome().requested, 0u);
  EXPECT_EQ(pool.affinity_outcome().failed, 0u);
}

TEST(TriplePoolsAffinity, RealPoolsAggregateOutcomes) {
  PoolAffinity affinity;
  affinity.policy = AffinityPolicy::Compact;
  affinity.topology = synthetic_topology(1, 1);
  TriplePools pools(PoolSizes{1, 1, 2}, affinity);

  const AffinityOutcome outcome = pools.affinity_outcome();
  EXPECT_EQ(outcome.policy, AffinityPolicy::Compact);
  // All four workers got a (wrapped) cpu assignment from the 1-cpu
  // synthetic machine; each pin either stuck or was counted failed.
  EXPECT_EQ(outcome.requested, 4u);
  EXPECT_EQ(outcome.pinned + outcome.failed, 4u);

  std::atomic<int> ran{0};
  pools.copy_in().post([&] { ++ran; });
  pools.compute().post([&] { ++ran; });
  pools.copy_out().post([&] { ++ran; });
  pools.wait_all_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(TriplePoolsAffinity, DeterministicVariantRecordsPolicyPinsNothing) {
  DeterministicScheduler sched(42);
  PoolAffinity affinity;
  affinity.policy = AffinityPolicy::TierLocal;
  affinity.topology = synthetic_topology(2, 4);
  TriplePools pools(PoolSizes{1, 1, 2}, sched, affinity);

  const AffinityOutcome outcome = pools.affinity_outcome();
  EXPECT_EQ(outcome.policy, AffinityPolicy::TierLocal);
  EXPECT_EQ(outcome.requested, 0u);  // no real threads -> recorded no-op
  EXPECT_EQ(outcome.pinned, 0u);
  EXPECT_FALSE(outcome.degraded());
}

TEST(TriplePoolsAffinity, ResizePreservesTheAffinityRequest) {
  PoolAffinity affinity;
  affinity.policy = AffinityPolicy::Compact;
  affinity.topology = synthetic_topology(1, 2);
  TriplePools pools(PoolSizes{2, 2, 2}, affinity);
  pools.resize(PoolSizes{1, 1, 4});
  EXPECT_EQ(pools.affinity().policy, AffinityPolicy::Compact);
  const AffinityOutcome outcome = pools.affinity_outcome();
  EXPECT_EQ(outcome.policy, AffinityPolicy::Compact);
  EXPECT_EQ(outcome.requested, 6u);
}

}  // namespace
}  // namespace mlm

// Batched slice dispatch (Executor::submit_slices / post_bulk): every
// slice runs exactly once, completion and errors travel through the
// single batch future, injected parallel.task.run faults can never
// strand it, and slices stay individually schedulable units under the
// deterministic executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <stdexcept>
#include <vector>

#include "mlm/fault/fault.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/executor.h"
#include "mlm/parallel/thread_pool.h"

namespace mlm {
namespace {

TEST(SubmitSlices, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool(workers);
    constexpr std::size_t kCount = 64;
    std::vector<std::atomic<int>> hits(kCount);
    std::vector<std::future<void>> futs;
    futs.push_back(pool.submit_slices(
        kCount, [&hits](std::size_t i) { hits[i].fetch_add(1); }));
    pool.wait(futs);
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " workers=" << workers;
    }
  }
}

TEST(SubmitSlices, ZeroCountCompletesImmediately) {
  ThreadPool pool(2);
  auto fut = pool.submit_slices(0, [](std::size_t) { FAIL(); });
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_NO_THROW(fut.get());
}

TEST(SubmitSlices, CountsTowardTasksExecuted) {
  ThreadPool pool(2);
  const std::size_t before = pool.tasks_executed();
  std::vector<std::future<void>> futs;
  futs.push_back(pool.submit_slices(10, [](std::size_t) {}));
  pool.wait(futs);
  // The last slice settles the batch future from inside the task body,
  // before the worker's post-task counter increment — the future being
  // ready does not yet imply the count is visible.  wait_idle() is
  // ordered after that increment, so the assertion below is race-free.
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_executed(), before + 10);
}

TEST(SubmitSlices, FirstSliceExceptionTravelsThroughBatchFuture) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 16;
  std::atomic<std::size_t> ran{0};
  std::vector<std::future<void>> futs;
  futs.push_back(pool.submit_slices(kCount, [&ran](std::size_t i) {
    if (i == 5) throw std::runtime_error("slice 5 boom");
    ran.fetch_add(1);
  }));
  EXPECT_THROW(pool.wait(futs), std::runtime_error);
  // The future settles only after every slice finished: the failing
  // slice must not cancel its siblings.
  EXPECT_EQ(ran.load(), kCount - 1);
}

TEST(SubmitSlices, InjectedTaskFaultPropagatesAndNeverStrands) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 8;
  std::atomic<std::size_t> ran{0};

  fault::FaultPlan plan;
  plan.arm(fault::sites::kTaskRun, fault::FaultTrigger::nth_call(0));
  fault::ScopedFaultInjector inject(plan);

  std::vector<std::future<void>> futs;
  futs.push_back(pool.submit_slices(
      kCount, [&ran](std::size_t) { ran.fetch_add(1); }));
  // The fault fires inside the batch wrapper's own try, so it reaches
  // the batch future instead of skipping the completion bookkeeping
  // (which would hang this wait forever).
  EXPECT_THROW(pool.wait(futs), fault::InjectedFaultError);

  // The future settles only after remaining==0, so by now every slice
  // queried the site exactly once and all non-faulted bodies ran.
  const auto stats = plan.stats(fault::sites::kTaskRun);
  EXPECT_EQ(stats.hits, kCount);
  EXPECT_EQ(stats.fires, 1u);
  EXPECT_EQ(ran.load(), kCount - 1);
}

TEST(PostBulk, RunsAllTasksInOneTransaction) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 32;
  std::atomic<std::size_t> ran{0};
  const std::size_t before = pool.tasks_executed();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    tasks.emplace_back([&ran] { ran.fetch_add(1); });
  }
  pool.post_bulk(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kCount);
  EXPECT_EQ(pool.tasks_executed(), before + kCount);
}

TEST(SubmitSlicesDeterministic, WaitDrivesScheduleAndCoversAllSlices) {
  DeterministicScheduler sched(42);
  DeterministicExecutor exec(sched, 4, "batch");
  constexpr std::size_t kCount = 12;
  std::vector<int> hits(kCount, 0);
  std::vector<std::future<void>> futs;
  futs.push_back(exec.submit_slices(
      kCount, [&hits](std::size_t i) { ++hits[i]; }));
  // No worker threads exist: nothing may run before wait() drives the
  // schedule.
  for (const int h : hits) EXPECT_EQ(h, 0);
  exec.wait(futs);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i], 1) << "i=" << i;
  }
  EXPECT_EQ(exec.tasks_executed(), kCount);
  // Each slice was its own schedulable unit with its own trace tag.
  EXPECT_EQ(sched.trace().size(), kCount);
  EXPECT_EQ(sched.trace().front().tag.rfind("batch#", 0), 0u);
}

TEST(SubmitSlicesDeterministic, SameSeedSameOrderAcrossRuns) {
  auto run_order = [](std::uint64_t seed) {
    DeterministicScheduler sched(seed);
    DeterministicExecutor exec(sched, 4, "det");
    std::vector<std::size_t> order;
    std::vector<std::future<void>> futs;
    futs.push_back(exec.submit_slices(
        10, [&order](std::size_t i) { order.push_back(i); }));
    exec.wait(futs);
    return order;
  };
  EXPECT_EQ(run_order(7), run_order(7));
  // Slices are permuted by the seeded scheduler, not run in submission
  // order for every seed: find a seed pair with different orders.
  const auto base = run_order(7);
  bool permuted = false;
  for (std::uint64_t seed = 8; seed < 40 && !permuted; ++seed) {
    permuted = run_order(seed) != base;
  }
  EXPECT_TRUE(permuted);
}

TEST(SubmitSlicesDeterministic, InjectedFaultPropagatesViaWait) {
  DeterministicScheduler sched(5);
  DeterministicExecutor exec(sched, 2, "faulty");
  fault::FaultPlan plan;
  plan.arm(fault::sites::kTaskRun, fault::FaultTrigger::nth_call(1));
  fault::ScopedFaultInjector inject(plan);

  std::size_t ran = 0;
  std::vector<std::future<void>> futs;
  futs.push_back(exec.submit_slices(6, [&ran](std::size_t) { ++ran; }));
  EXPECT_THROW(exec.wait(futs), fault::InjectedFaultError);
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(plan.stats(fault::sites::kTaskRun).fires, 1u);
}

TEST(RunOnAll, UsesOneBatchForAllWorkers) {
  ThreadPool pool(3);
  const std::size_t before = pool.tasks_executed();
  std::vector<std::atomic<int>> hits(pool.size());
  pool.run_on_all([&hits](std::size_t w) { hits[w].fetch_add(1); });
  for (std::size_t w = 0; w < pool.size(); ++w) {
    EXPECT_EQ(hits[w].load(), 1) << "w=" << w;
  }
  EXPECT_EQ(pool.tasks_executed(), before + pool.size());
}

}  // namespace
}  // namespace mlm

// First-touch arena faulting: the touch must preserve every byte, slice
// on page boundaries, and run identically under real pools and the
// deterministic executor (it is value-neutral, so digests cannot move).
#include "mlm/parallel/first_touch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/support/proptest.h"

namespace mlm {
namespace {

std::vector<std::uint8_t> patterned(std::size_t bytes) {
  std::vector<std::uint8_t> buf(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return buf;
}

TEST(FirstTouch, PreservesEveryByte) {
  ThreadPool pool(3);
  // Deliberately not page-aligned in size: 3 pages plus a tail.
  auto buf = patterned(3 * kFirstTouchPageBytes + 123);
  const std::uint64_t before = fnv1a64(buf.data(), buf.size());
  const FirstTouchReport report = first_touch(pool, buf.data(), buf.size());
  EXPECT_EQ(fnv1a64(buf.data(), buf.size()), before);
  EXPECT_EQ(report.bytes, buf.size());
  EXPECT_EQ(report.pages, 4u);  // ceil((3p + 123) / p)
}

TEST(FirstTouch, EmptyRangeIsZeroReport) {
  ThreadPool pool(2);
  std::uint8_t dummy = 0;
  const FirstTouchReport report = first_touch(pool, &dummy, 0);
  EXPECT_EQ(report.bytes, 0u);
  EXPECT_EQ(report.pages, 0u);
  EXPECT_EQ(report.slices, 0u);
}

TEST(FirstTouch, SlicesNeverExceedPagesOrPoolSize) {
  ThreadPool pool(8);
  auto buf = patterned(2 * kFirstTouchPageBytes);
  const FirstTouchReport report = first_touch(pool, buf.data(), buf.size());
  EXPECT_EQ(report.pages, 2u);
  EXPECT_LE(report.slices, 2u);  // two workers can't split one page

  auto big = patterned(32 * kFirstTouchPageBytes);
  const FirstTouchReport wide = first_touch(pool, big.data(), big.size());
  EXPECT_EQ(wide.pages, 32u);
  EXPECT_LE(wide.slices, pool.size());
  EXPECT_GE(wide.slices, 1u);
}

TEST(FirstTouch, SubPageBufferTouchesItsOnePage) {
  ThreadPool pool(2);
  auto buf = patterned(64);
  const std::uint64_t before = fnv1a64(buf.data(), buf.size());
  const FirstTouchReport report = first_touch(pool, buf.data(), buf.size());
  EXPECT_EQ(report.pages, 1u);
  EXPECT_EQ(report.slices, 1u);
  EXPECT_EQ(fnv1a64(buf.data(), buf.size()), before);
}

TEST(FirstTouch, RunsUnderDeterministicExecutor) {
  DeterministicScheduler sched(7);
  DeterministicExecutor pool(sched, 4, "det-touch");
  auto buf = patterned(5 * kFirstTouchPageBytes + 1);
  const std::uint64_t before = fnv1a64(buf.data(), buf.size());
  const FirstTouchReport report = first_touch(pool, buf.data(), buf.size());
  EXPECT_EQ(report.pages, 6u);
  EXPECT_EQ(fnv1a64(buf.data(), buf.size()), before);
}

}  // namespace
}  // namespace mlm

#include "mlm/parallel/latch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(CountdownLatch, WaitReturnsAfterAllCountdowns) {
  CountdownLatch latch(3);
  std::atomic<int> done{0};
  std::thread waiter([&] {
    latch.wait();
    done = 1;
  });
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  latch.count_down();
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  waiter.join();
  EXPECT_EQ(done.load(), 1);
  EXPECT_TRUE(latch.try_wait());
}

TEST(CountdownLatch, BulkCountDown) {
  CountdownLatch latch(5);
  latch.count_down(5);
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // returns immediately
}

TEST(CountdownLatch, OverCountIsError) {
  CountdownLatch latch(1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), Error);
}

TEST(CountdownLatch, ZeroInitialIsAlreadyOpen) {
  CountdownLatch latch(0);
  EXPECT_TRUE(latch.try_wait());
}

TEST(CyclicBarrier, ExactlyOneSerialThreadPerGeneration) {
  constexpr std::size_t kParties = 4;
  constexpr int kGenerations = 25;
  CyclicBarrier barrier(kParties);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        if (barrier.arrive_and_wait()) ++serial_count;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(serial_count.load(), kGenerations);
}

TEST(CyclicBarrier, SinglePartyAlwaysSerial) {
  CyclicBarrier barrier(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(barrier.arrive_and_wait());
}

TEST(CyclicBarrier, RejectsZeroParties) {
  EXPECT_THROW(CyclicBarrier(0), InvalidArgumentError);
}

TEST(CyclicBarrier, SynchronizesPhases) {
  // No thread may enter phase k+1 before all have finished phase k.
  constexpr std::size_t kParties = 3;
  CyclicBarrier barrier(kParties);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 20; ++phase) {
        ++phase_counter;
        barrier.arrive_and_wait();
        // After the barrier, everyone must have incremented.
        if (phase_counter.load() < (phase + 1) * static_cast<int>(kParties)) {
          violation = true;
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace mlm

#include "mlm/parallel/parallel_for.h"

#include "mlm/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, visits.size(),
               [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::vector<int> hits(20, 0);
  parallel_for(pool, 5, 15, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { called = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [&](std::size_t i) {
                              if (i == 42) throw Error("boom");
                            }),
               Error);
}

TEST(ParallelForRanges, RangesTileTheInterval) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<IndexRange> seen;
  parallel_for_ranges(pool, 10, 110, [&](IndexRange r) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(r);
  });
  std::sort(seen.begin(), seen.end(),
            [](auto& a, auto& b) { return a.begin < b.begin; });
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front().begin, 10u);
  EXPECT_EQ(seen.back().end, 110u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].begin, seen[i - 1].end);
  }
}

TEST(ParallelForRanges, SmallRangeFewerPartsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  parallel_for_ranges(pool, 0, 3, [&](IndexRange r) {
    EXPECT_EQ(r.size(), 1u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelFor, SumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<long> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<long> sum{0};
  parallel_for(pool, 0, data.size(),
               [&](std::size_t i) { sum += data[i]; });
  EXPECT_EQ(sum.load(), 10000L * 10001 / 2);
}

}  // namespace
}  // namespace mlm

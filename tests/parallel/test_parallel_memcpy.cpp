#include "mlm/parallel/parallel_memcpy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mlm/parallel/thread_pool.h"
#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm {
namespace {

std::vector<unsigned char> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<unsigned char> v(n);
  Xoshiro256ss rng(seed);
  for (auto& b : v) b = static_cast<unsigned char>(rng.next());
  return v;
}

class ParallelMemcpySize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelMemcpySize, CopiesExactly) {
  const std::size_t n = GetParam();
  ThreadPool pool(4);
  const auto src = random_bytes(n, n + 1);
  std::vector<unsigned char> dst(n, 0xEE);
  parallel_memcpy(pool, dst.data(), src.data(), n);
  EXPECT_EQ(dst, src);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelMemcpySize,
                         ::testing::Values(1, 63, 64, 65, 4096,
                                           64 * 1024 - 1, 64 * 1024,
                                           1 << 20, (1 << 22) + 17));

TEST(ParallelMemcpy, ZeroBytesIsNoop) {
  ThreadPool pool(2);
  unsigned char a = 1, b = 2;
  parallel_memcpy(pool, &a, &b, 0);
  EXPECT_EQ(a, 1);
}

TEST(ParallelMemcpy, RejectsNullPointers) {
  ThreadPool pool(1);
  unsigned char x = 0;
  EXPECT_THROW(parallel_memcpy(pool, nullptr, &x, 1),
               InvalidArgumentError);
  EXPECT_THROW(parallel_memcpy(pool, &x, nullptr, 1),
               InvalidArgumentError);
}

TEST(ParallelMemcpy, RejectsOverlap) {
  ThreadPool pool(2);
  std::vector<unsigned char> buf(1 << 20);
  EXPECT_THROW(
      parallel_memcpy(pool, buf.data() + 1, buf.data(), buf.size() - 1),
      InvalidArgumentError);
}

TEST(ParallelMemcpy, AdjacentRegionsAllowed) {
  ThreadPool pool(2);
  std::vector<unsigned char> buf(256 * 1024, 0);
  std::iota(buf.begin(), buf.begin() + 128 * 1024, 0);
  parallel_memcpy(pool, buf.data() + 128 * 1024, buf.data(), 128 * 1024);
  EXPECT_TRUE(std::equal(buf.begin(), buf.begin() + 128 * 1024,
                         buf.begin() + 128 * 1024));
}

TEST(ParallelMemcpy, MaxWaysLimitsSlicing) {
  ThreadPool pool(4);
  const auto src = random_bytes(1 << 20, 9);
  std::vector<unsigned char> dst(src.size());
  parallel_memcpy(pool, dst.data(), src.data(), src.size(), 1);
  EXPECT_EQ(dst, src);
}

TEST(ParallelMemcpyAsync, CompletesViaFutures) {
  ThreadPool pool(3);
  const auto src = random_bytes(3 << 20, 11);
  std::vector<unsigned char> dst(src.size(), 0);
  auto futs = parallel_memcpy_async(pool, dst.data(), src.data(),
                                    src.size());
  EXPECT_FALSE(futs.empty());
  wait_all(futs);
  EXPECT_EQ(dst, src);
}

TEST(ParallelMemcpyAsync, SafeFromSingleThreadPool) {
  // The deadlock case the async variant exists for: a 1-thread pool must
  // still complete the copy while the caller waits.
  ThreadPool pool(1);
  const auto src = random_bytes(1 << 20, 13);
  std::vector<unsigned char> dst(src.size(), 0);
  auto futs = parallel_memcpy_async(pool, dst.data(), src.data(),
                                    src.size());
  wait_all(futs);
  EXPECT_EQ(dst, src);
}

TEST(WaitAll, EmptyVectorOk) {
  std::vector<std::future<void>> futs;
  EXPECT_NO_THROW(wait_all(futs));
}

TEST(ParallelMemcpySliceCount, EverySliceMeetsTheMinimum) {
  constexpr std::size_t kMin = kParallelMemcpyMinSliceBytes;
  // The old `bytes / kMin + 1` formula handed out 2 slices for
  // kMin + 1 bytes — one of them far below the minimum.  Slice counts
  // round down now: a second slice only exists once both can carry kMin.
  EXPECT_EQ(parallel_memcpy_slice_count(0, 8, 8), 0u);
  EXPECT_EQ(parallel_memcpy_slice_count(1, 8, 8), 1u);
  EXPECT_EQ(parallel_memcpy_slice_count(kMin - 1, 8, 8), 1u);
  EXPECT_EQ(parallel_memcpy_slice_count(kMin, 8, 8), 1u);
  EXPECT_EQ(parallel_memcpy_slice_count(kMin + 1, 8, 8), 1u);
  EXPECT_EQ(parallel_memcpy_slice_count(2 * kMin - 1, 8, 8), 1u);
  EXPECT_EQ(parallel_memcpy_slice_count(2 * kMin, 8, 8), 2u);
  EXPECT_EQ(parallel_memcpy_slice_count(3 * kMin, 8, 8), 3u);
  EXPECT_EQ(parallel_memcpy_slice_count(100 * kMin, 8, 8), 8u);

  // Exhaustive floor check across the boundary region: no chosen count
  // ever yields a sub-minimum slice (balanced partitioning: the
  // smallest slice is bytes / ways).
  for (std::size_t bytes = 1; bytes <= 4 * kMin; bytes += kMin / 4) {
    const std::size_t ways = parallel_memcpy_slice_count(bytes, 16, 16);
    ASSERT_GE(ways, 1u);
    if (ways > 1) {
      EXPECT_GE(bytes / ways, kMin) << "bytes=" << bytes;
    }
  }
}

TEST(ParallelMemcpySliceCount, CappedByPoolAndMaxWays) {
  constexpr std::size_t kMin = kParallelMemcpyMinSliceBytes;
  EXPECT_EQ(parallel_memcpy_slice_count(100 * kMin, 4, 8), 4u);
  EXPECT_EQ(parallel_memcpy_slice_count(100 * kMin, 8, 3), 3u);
  // Degenerate caps still produce one slice for a nonzero copy.
  EXPECT_EQ(parallel_memcpy_slice_count(100 * kMin, 1, 0), 1u);
}

TEST(ParallelMemcpy, StreamingModeCopiesExactly) {
  ThreadPool pool(3);
  for (std::size_t n :
       {std::size_t{1} << 12, (std::size_t{1} << 21) + 17}) {
    const auto src = random_bytes(n, n + 3);
    std::vector<unsigned char> dst(n, 0xEE);
    parallel_memcpy(pool, dst.data(), src.data(), n, pool.size(),
                    CopyMode::Streaming);
    EXPECT_EQ(dst, src);
  }
}

TEST(ParallelMemcpy, DefaultSliceAlignIsTheSharedCacheLineConstant) {
  // One constant drives slice joints and hot-struct padding (S1): a
  // drifting default would silently reintroduce joint false sharing.
  EXPECT_EQ(kCopySliceAlignBytes, kCacheLineBytes);
}

TEST(ParallelMemcpy, CustomSliceAlignCopiesExactly) {
  ThreadPool pool(4);
  // Sizes straddling the alignment so boundary rounding gets exercised
  // and some slices may come out empty.
  for (std::size_t align : {std::size_t{1}, std::size_t{64},
                            std::size_t{4096}}) {
    for (std::size_t n :
         {std::size_t{1}, std::size_t{4095}, (std::size_t{1} << 20) + 13}) {
      const auto src = random_bytes(n, n + align);
      std::vector<unsigned char> dst(n, 0xEE);
      parallel_memcpy(pool, dst.data(), src.data(), n, pool.size(),
                      CopyMode::Cached, align);
      EXPECT_EQ(dst, src) << "align=" << align << " n=" << n;
    }
  }
}

TEST(ParallelMemcpyAsync, CustomSliceAlignCopiesExactly) {
  ThreadPool pool(3);
  const std::size_t n = (1 << 20) + 7;
  const auto src = random_bytes(n, 99);
  std::vector<unsigned char> dst(n, 0xEE);
  auto futs = parallel_memcpy_async(pool, dst.data(), src.data(), n,
                                    CopyMode::Cached, 4096);
  wait_all(futs);
  EXPECT_EQ(dst, src);
}

TEST(ParallelMemcpy, RejectsZeroSliceAlign) {
  ThreadPool pool(2);
  std::vector<unsigned char> a(128), b(128);
  EXPECT_THROW(parallel_memcpy(pool, a.data(), b.data(), a.size(),
                               pool.size(), CopyMode::Cached, 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm

#include "mlm/parallel/partition.h"

#include <gtest/gtest.h>

#include <tuple>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(PartitionRange, EvenSplit) {
  EXPECT_EQ(partition_range(12, 4, 0), (IndexRange{0, 3}));
  EXPECT_EQ(partition_range(12, 4, 3), (IndexRange{9, 12}));
}

TEST(PartitionRange, RemainderGoesToFirstParts) {
  // 10 over 4: sizes 3,3,2,2.
  EXPECT_EQ(partition_range(10, 4, 0).size(), 3u);
  EXPECT_EQ(partition_range(10, 4, 1).size(), 3u);
  EXPECT_EQ(partition_range(10, 4, 2).size(), 2u);
  EXPECT_EQ(partition_range(10, 4, 3).size(), 2u);
}

TEST(PartitionRange, MorePartsThanElements) {
  // 2 over 5: sizes 1,1,0,0,0.
  EXPECT_EQ(partition_range(2, 5, 0).size(), 1u);
  EXPECT_EQ(partition_range(2, 5, 1).size(), 1u);
  EXPECT_EQ(partition_range(2, 5, 4).size(), 0u);
}

TEST(PartitionRange, RejectsBadArgs) {
  EXPECT_THROW(partition_range(10, 0, 0), InvalidArgumentError);
  EXPECT_THROW(partition_range(10, 4, 4), InvalidArgumentError);
}

// Property sweep: partitions tile [0, n) exactly, sizes differ by <= 1.
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PartitionProperty, TilesExactlyAndBalanced) {
  const auto [n, parts] = GetParam();
  const auto ranges = partition_all(n, parts);
  ASSERT_EQ(ranges.size(), parts);
  std::size_t expect_begin = 0;
  std::size_t min_size = n, max_size = 0;
  for (const IndexRange& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin);
    expect_begin = r.end;
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_EQ(expect_begin, n);
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 7, 64, 1000, 12345),
                       ::testing::Values(1, 2, 3, 4, 7, 16, 256)));

TEST(PartitionRangeAligned, BoundariesLandOnTheAlignment) {
  // 1000 over 3 parts at 64-byte granularity: every joint is a multiple
  // of 64, the tail absorbs the remainder, and the union tiles [0, n).
  std::size_t expect_begin = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    const IndexRange r = partition_range_aligned(1000, 3, p, 64);
    EXPECT_EQ(r.begin, expect_begin);
    if (p + 1 < 3) {
      EXPECT_EQ(r.end % 64, 0u);
    }
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, 1000u);
}

TEST(PartitionRangeAligned, AlignOneMatchesPlainPartition) {
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(partition_range_aligned(1234, 4, p, 1),
              partition_range(1234, 4, p));
  }
}

TEST(PartitionRangeAligned, TinyInputsMayYieldEmptySlices) {
  // 100 over 4 parts at 64 alignment: rounding the first joint up to 64
  // starves later parts; callers must tolerate empty slices.
  std::size_t total = 0;
  std::size_t expect_begin = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    const IndexRange r = partition_range_aligned(100, 4, p, 64);
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_LE(r.end, 100u);
    expect_begin = r.end;
    total += r.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(PartitionRangeAligned, SweepTilesExactly) {
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 1000u, 4096u, 100000u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u}) {
      for (std::size_t align : {1u, 8u, 64u, 4096u}) {
        std::size_t expect_begin = 0;
        for (std::size_t p = 0; p < parts; ++p) {
          const IndexRange r = partition_range_aligned(n, parts, p, align);
          ASSERT_EQ(r.begin, expect_begin)
              << "n=" << n << " parts=" << parts << " align=" << align;
          ASSERT_LE(r.begin, r.end);
          expect_begin = r.end;
        }
        ASSERT_EQ(expect_begin, n)
            << "n=" << n << " parts=" << parts << " align=" << align;
      }
    }
  }
}

TEST(ChunkRanges, ExactDivision) {
  const auto c = chunk_ranges(12, 4);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], (IndexRange{8, 12}));
}

TEST(ChunkRanges, TrailingPartialChunk) {
  const auto c = chunk_ranges(10, 4);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2].size(), 2u);
}

TEST(ChunkRanges, ChunkLargerThanData) {
  const auto c = chunk_ranges(5, 100);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (IndexRange{0, 5}));
}

TEST(ChunkRanges, EmptyData) {
  EXPECT_TRUE(chunk_ranges(0, 4).empty());
}

TEST(ChunkRanges, RejectsZeroChunk) {
  EXPECT_THROW(chunk_ranges(10, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace mlm

#include "mlm/parallel/stream_copy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mlm/support/rng.h"

namespace mlm {
namespace {

std::vector<unsigned char> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<unsigned char> v(n);
  Xoshiro256ss rng(seed);
  for (auto& b : v) b = static_cast<unsigned char>(rng.next());
  return v;
}

// Sizes hitting every branch of the streaming kernel: empty, shorter
// than one 64-byte group, exactly the alignment head, odd tails, and
// multi-group bodies.
const std::size_t kSizes[] = {0,  1,   15,  16,  17,   63,   64,
                              65, 127, 128, 255, 4096, 4097, (1u << 20) + 3};

TEST(MemcpyStreaming, ByteExactAcrossSizesAndAlignments) {
  for (const std::size_t n : kSizes) {
    // Offsets walk dst across a 16-byte window so the head-alignment
    // prologue sees every misalignment (src stays unaligned-tolerant by
    // construction: the kernel uses unaligned loads).
    for (std::size_t off = 0; off < 16; off += off < 4 ? 1 : 5) {
      const auto src = random_bytes(n, n * 31 + off + 1);
      std::vector<unsigned char> dst(n + off + 16, 0xEE);
      std::vector<unsigned char> expect = dst;
      std::memcpy(expect.data() + off, src.data(), n);
      memcpy_streaming(dst.data() + off, src.data(), n);
      ASSERT_EQ(dst, expect) << "n=" << n << " off=" << off;
    }
  }
}

TEST(MemcpyStreaming, ZeroBytesTouchesNothing) {
  std::vector<unsigned char> dst(64, 0xAB);
  const std::vector<unsigned char> src(64, 0xCD);
  memcpy_streaming(dst.data(), src.data(), 0);
  EXPECT_EQ(dst, std::vector<unsigned char>(64, 0xAB));
}

TEST(CopyBytes, AllModesAreByteIdentical) {
  const std::size_t kN = (1 << 21) + 17;  // above the Auto threshold
  const auto src = random_bytes(kN, 7);
  for (const CopyMode mode :
       {CopyMode::Cached, CopyMode::Streaming, CopyMode::Auto}) {
    std::vector<unsigned char> dst(kN, 0);
    copy_bytes(dst.data(), src.data(), kN, mode);
    ASSERT_EQ(dst, src) << to_string(mode);
  }
}

TEST(CopyBytes, AutoBelowThresholdStillCopiesExactly) {
  // Below the threshold Auto takes the cached path; the observable
  // contract (bytes) is identical either way, which is exactly why the
  // pipeline can flip modes without perturbing deterministic digests.
  static_assert(kStreamCopyThresholdBytes > 4096);
  const auto src = random_bytes(4096, 11);
  std::vector<unsigned char> dst(src.size(), 0);
  copy_bytes(dst.data(), src.data(), src.size(), CopyMode::Auto);
  EXPECT_EQ(dst, src);
}

TEST(CopyBytes, ZeroBytesAnyMode) {
  unsigned char sink = 9;
  const unsigned char from = 3;
  for (const CopyMode mode :
       {CopyMode::Cached, CopyMode::Streaming, CopyMode::Auto}) {
    copy_bytes(&sink, &from, 0, mode);
    EXPECT_EQ(sink, 9) << to_string(mode);
  }
}

TEST(StreamCopy, SupportMatchesCompileTarget) {
#if defined(__SSE2__)
  EXPECT_TRUE(stream_copy_supported());
#else
  EXPECT_FALSE(stream_copy_supported());
#endif
}

TEST(StreamCopy, ModeNamesAreStable) {
  EXPECT_STREQ(to_string(CopyMode::Cached), "cached");
  EXPECT_STREQ(to_string(CopyMode::Streaming), "streaming");
  EXPECT_STREQ(to_string(CopyMode::Auto), "auto");
}

}  // namespace
}  // namespace mlm

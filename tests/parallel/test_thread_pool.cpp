#include "mlm/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgumentError);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4, "test");
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
}

TEST(ThreadPool, PostAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.post([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw Error("task failed"); });
  EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPool, WaitIdleRethrowsPostedException) {
  ThreadPool pool(2);
  pool.post([] { throw Error("posted failure"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // Error is consumed; a second wait succeeds.
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, RunOnAllUsesEveryWorkerIndex) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::size_t> indices;
  pool.run_on_all([&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    indices.insert(i);
  });
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, RunOnAllPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run_on_all([](std::size_t i) {
    if (i == 1) throw Error("worker 1 failed");
  }),
               Error);
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit([&] {
      const int now = ++in_flight;
      int prev = max_in_flight.load();
      while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --in_flight;
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.post(nullptr), InvalidArgumentError);
}

TEST(ThreadPool, NameIsStored) {
  ThreadPool pool(1, "copy-in");
  EXPECT_EQ(pool.name(), "copy-in");
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, ManySmallTasksDrainCompletely) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int i = 1; i <= 1000; ++i) pool.post([&sum, i] { sum += i; });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 500500);
}

}  // namespace
}  // namespace mlm

#include "mlm/parallel/triple_pools.h"

#include <gtest/gtest.h>

#include <atomic>

#include "mlm/parallel/deterministic_executor.h"
#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(MakePoolSizes, PaperConvention) {
  // 256 threads with 8 copy threads per direction -> 240 compute.
  const PoolSizes s = make_pool_sizes(256, 8);
  EXPECT_EQ(s.copy_in, 8u);
  EXPECT_EQ(s.copy_out, 8u);
  EXPECT_EQ(s.compute, 240u);
  EXPECT_EQ(s.total(), 256u);
}

TEST(MakePoolSizes, MinimumBudget) {
  const PoolSizes s = make_pool_sizes(3, 1);
  EXPECT_EQ(s.compute, 1u);
}

TEST(MakePoolSizes, RejectsTooSmallBudget) {
  EXPECT_THROW(make_pool_sizes(2, 1), InvalidArgumentError);
  EXPECT_THROW(make_pool_sizes(16, 8), InvalidArgumentError);
  EXPECT_THROW(make_pool_sizes(16, 0), InvalidArgumentError);
}

TEST(TriplePools, PoolsHaveConfiguredSizesAndNames) {
  TriplePools pools(PoolSizes{2, 2, 3});
  EXPECT_EQ(pools.copy_in().size(), 2u);
  EXPECT_EQ(pools.copy_out().size(), 2u);
  EXPECT_EQ(pools.compute().size(), 3u);
  EXPECT_EQ(pools.copy_in().name(), "copy-in");
  EXPECT_EQ(pools.compute().name(), "compute");
  EXPECT_EQ(pools.copy_out().name(), "copy-out");
}

TEST(TriplePools, RejectsEmptyPool) {
  EXPECT_THROW(TriplePools(PoolSizes{0, 1, 1}), InvalidArgumentError);
  EXPECT_THROW(TriplePools(PoolSizes{1, 0, 1}), InvalidArgumentError);
  EXPECT_THROW(TriplePools(PoolSizes{1, 1, 0}), InvalidArgumentError);
}

TEST(TriplePools, PoolsRunIndependently) {
  TriplePools pools(PoolSizes{1, 1, 2});
  std::atomic<int> in{0}, comp{0}, out{0};
  for (int i = 0; i < 10; ++i) {
    pools.copy_in().post([&] { ++in; });
    pools.compute().post([&] { ++comp; });
    pools.copy_out().post([&] { ++out; });
  }
  pools.wait_all_idle();
  EXPECT_EQ(in.load(), 10);
  EXPECT_EQ(comp.load(), 10);
  EXPECT_EQ(out.load(), 10);
}

TEST(TriplePools, WaitAllIdleRethrowsAnyPoolError) {
  TriplePools pools(PoolSizes{1, 1, 1});
  pools.copy_out().post([] { throw Error("copy-out failed"); });
  EXPECT_THROW(pools.wait_all_idle(), Error);
}

// Degenerate resizes (the adaptive controller's edge moves): shrinking
// the copy pools to a single thread, and re-applying the current split,
// must leave working pools behind — under real threads and under the
// deterministic executor alike.
void exercise_pools(TriplePools& pools, int tasks) {
  std::atomic<int> ran{0};
  for (int i = 0; i < tasks; ++i) {
    pools.copy_in().post([&] { ++ran; });
    pools.compute().post([&] { ++ran; });
    pools.copy_out().post([&] { ++ran; });
  }
  pools.wait_all_idle();
  EXPECT_EQ(ran.load(), tasks * 3);
}

TEST(TriplePoolsResize, ShrinkToSingleCopyThread) {
  TriplePools pools(PoolSizes{4, 4, 4});
  exercise_pools(pools, 8);
  pools.resize(PoolSizes{1, 1, 10});
  EXPECT_EQ(pools.copy_in().size(), 1u);
  EXPECT_EQ(pools.copy_out().size(), 1u);
  EXPECT_EQ(pools.compute().size(), 10u);
  exercise_pools(pools, 8);
}

TEST(TriplePoolsResize, SameSplitTwiceIsIdempotent) {
  TriplePools pools(PoolSizes{2, 2, 3});
  pools.resize(PoolSizes{2, 2, 3});
  pools.resize(PoolSizes{2, 2, 3});
  EXPECT_EQ(pools.copy_in().size(), 2u);
  EXPECT_EQ(pools.compute().size(), 3u);
  exercise_pools(pools, 4);
}

TEST(TriplePoolsResize, DeterministicExecutorDegenerateResizes) {
  DeterministicScheduler sched(11);
  TriplePools pools(PoolSizes{4, 4, 4}, sched);
  exercise_pools(pools, 4);
  pools.resize(PoolSizes{1, 1, 2});
  EXPECT_EQ(pools.copy_in().size(), 1u);
  exercise_pools(pools, 4);
  pools.resize(PoolSizes{1, 1, 2});
  pools.resize(PoolSizes{1, 1, 2});
  exercise_pools(pools, 4);
}

}  // namespace
}  // namespace mlm

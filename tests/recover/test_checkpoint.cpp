// CheckpointCodec: the wire format (writer/reader primitives, flat
// Checkpoint encoding, loud failures on truncation and trailing
// garbage) and the real restore seams — an ExternalMlmSorter stepper
// and a chunk-pipeline job killed at EVERY step boundary must, when
// rebuilt from their checkpoint over the surviving far-tier data,
// finish byte-identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "mlm/core/chunk_pipeline.h"
#include "mlm/core/external_sort.h"
#include "mlm/memory/memory_hierarchy.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/service/checkpoint.h"
#include "mlm/service/pipeline_job.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::service {
namespace {

TEST(CheckpointCodec, WriterReaderRoundTripAllFieldTypes) {
  CheckpointWriter w;
  w.u64(0);
  w.u64(~0ull);
  w.i64(-123456789);
  w.boolean(true);
  w.boolean(false);
  w.str("sort.external.v1");
  w.str("");
  const std::vector<std::uint8_t> raw = {0xDE, 0xAD, 0xBE, 0xEF};
  w.blob(raw);
  w.u64_vec({0, 512, 1024, 1536});
  w.u64_vec({});

  CheckpointReader r(w.bytes());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), ~0ull);
  EXPECT_EQ(r.i64(), -123456789);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "sort.external.v1");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), raw);
  EXPECT_EQ(r.u64_vec(), (std::vector<std::size_t>{0, 512, 1024, 1536}));
  EXPECT_TRUE(r.u64_vec().empty());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(CheckpointCodec, TruncatedPayloadFailsLoudly) {
  CheckpointWriter w;
  w.u64_vec({1, 2, 3});
  std::vector<std::uint8_t> bytes = w.take();
  bytes.pop_back();  // lose one byte of the last element
  CheckpointReader r(bytes);
  try {
    (void)r.u64_vec();
    FAIL() << "expected a truncation error";
  } catch (const Error& e) {
    ASSERT_FALSE(e.chain().empty());
    EXPECT_EQ(e.chain().front().op, "checkpoint_decode");
  }
}

TEST(CheckpointCodec, TrailingGarbageFailsExpectDone) {
  CheckpointWriter w;
  w.u64(7);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.push_back(0x00);
  CheckpointReader r(bytes);
  EXPECT_EQ(r.u64(), 7u);
  EXPECT_FALSE(r.done());
  EXPECT_THROW(r.expect_done(), Error);
}

TEST(CheckpointCodec, CorruptBooleanIsRejected) {
  const std::vector<std::uint8_t> bytes = {2};
  CheckpointReader r(bytes);
  EXPECT_THROW((void)r.boolean(), Error);
}

TEST(CheckpointCodec, FlatCheckpointEncodingRoundTrips) {
  const Checkpoint c{"pipeline.chunks.v1", {1, 2, 3, 4, 5}};
  const Checkpoint back = Checkpoint::decode(c.encode());
  EXPECT_EQ(back.kind, c.kind);
  EXPECT_EQ(back.payload, c.payload);
}

TEST(CheckpointCodec, SortCheckpointRoundTripsAndChecksKind) {
  core::ExternalSortCheckpoint c;
  c.chunk_begins = {0, 512, 1024, 1536};
  c.next_chunk = 2;
  c.merge_phase = false;
  c.inner_tier_fallback = true;

  const Checkpoint wire = encode_sort_checkpoint(c);
  EXPECT_EQ(wire.kind, kSortCheckpointKind);
  const core::ExternalSortCheckpoint back = decode_sort_checkpoint(wire);
  EXPECT_EQ(back.chunk_begins, c.chunk_begins);
  EXPECT_EQ(back.next_chunk, c.next_chunk);
  EXPECT_EQ(back.merge_phase, c.merge_phase);
  EXPECT_EQ(back.inner_tier_fallback, c.inner_tier_fallback);

  EXPECT_THROW(decode_sort_checkpoint(Checkpoint{"kv.migration.v1", {}}),
               Error);
  Checkpoint truncated = wire;
  truncated.payload.pop_back();
  EXPECT_THROW(decode_sort_checkpoint(truncated), Error);
  Checkpoint bloated = wire;
  bloated.payload.push_back(0);
  EXPECT_THROW(decode_sort_checkpoint(bloated), Error);
}

// ---------------------------------------------------------------------
// Restore seams: kill at every step boundary, rebuild from the
// checkpoint over the surviving far-tier bytes, finish, compare.
// ---------------------------------------------------------------------

HierarchyConfig three_tier() {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
               TierConfig{"ddr", MemKind::DDR, MiB(2)},
               TierConfig{"mcdram", MemKind::MCDRAM, KiB(256)}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

core::ExternalSortConfig sort_config() {
  core::ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 512;
  cfg.inner.variant = core::MlmVariant::Flat;
  return cfg;
}

TEST(SortStepperRestore, KilledAtEveryStepBoundaryFinishesIdentically) {
  constexpr std::size_t kN = 2048;
  const std::vector<std::int64_t> input =
      sort::make_input(kN, sort::InputOrder::Random, 42);
  std::vector<std::int64_t> expected = input;
  std::sort(expected.begin(), expected.end());

  MemoryHierarchy hier(three_tier());
  ThreadPool pool(2, "restore");

  // Total step count of the uninterrupted run.
  std::size_t total_steps = 0;
  {
    std::vector<std::int64_t> data = input;
    core::ExternalMlmSorter<std::int64_t> sorter(hier, pool, sort_config());
    core::ExternalMlmSorter<std::int64_t>::Stepper s(
        sorter, std::span<std::int64_t>(data));
    while (s.step()) ++total_steps;
    s.finish();
    ASSERT_EQ(data, expected);
  }

  for (std::size_t kill = 0; kill <= total_steps; ++kill) {
    std::vector<std::int64_t> data = input;  // the surviving far tier
    core::ExternalSortCheckpoint ckpt;
    {
      core::ExternalMlmSorter<std::int64_t> sorter(hier, pool,
                                                   sort_config());
      core::ExternalMlmSorter<std::int64_t>::Stepper s(
          sorter, std::span<std::int64_t>(data));
      bool more = true;
      for (std::size_t i = 0; i < kill && more; ++i) more = s.step();
      ckpt = s.checkpoint();
      // Crash: stepper and sorter die; `data` survives.
    }
    // Push the checkpoint through the wire format, as the journal would.
    const core::ExternalSortCheckpoint replayed =
        decode_sort_checkpoint(Checkpoint::decode(
            encode_sort_checkpoint(ckpt).encode()));

    core::ExternalMlmSorter<std::int64_t> sorter(hier, pool, sort_config());
    core::ExternalMlmSorter<std::int64_t>::Stepper restored(
        sorter, std::span<std::int64_t>(data), replayed);
    while (restored.step()) {
    }
    restored.finish();
    EXPECT_EQ(data, expected) << "killed at step " << kill;
  }
}

TEST(PipelineJobRestore, WatermarkResumeNeverReappliesACompute) {
  constexpr std::size_t kN = 8192;  // 64 KiB of int64 over 8 KiB chunks
  std::vector<std::int64_t> input(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    input[i] = static_cast<std::int64_t>(i * 31 % 977);
  }
  // Deliberately NOT idempotent: applying it twice to any chunk moves
  // the digest, so this test also proves the retired-chunk watermark is
  // exact at step boundaries.
  const core::ComputeFn add_thousand = [](std::span<std::byte> chunk,
                                          Executor&, std::size_t) {
    auto* v = reinterpret_cast<std::int64_t*>(chunk.data());
    for (std::size_t i = 0; i < chunk.size() / sizeof(std::int64_t); ++i) {
      v[i] += 1000;
    }
  };
  std::vector<std::int64_t> expected = input;
  for (std::int64_t& v : expected) v += 1000;

  MemoryHierarchy hier(three_tier());
  ThreadPool pool(2, "restore");
  const TierPair pair = hier.pair(1);  // ddr -> mcdram
  core::PipelineConfig pcfg;
  pcfg.chunk_bytes = KiB(8);

  const auto as_bytes = [](std::vector<std::int64_t>& v) {
    return std::span<std::byte>(reinterpret_cast<std::byte*>(v.data()),
                                v.size() * sizeof(std::int64_t));
  };

  std::size_t total_steps = 0;
  {
    std::vector<std::int64_t> data = input;
    PipelineJob job(pair, as_bytes(data), pcfg, add_thousand);
    while (job.step()) ++total_steps;
    job.finish();
    ASSERT_EQ(data, expected);
  }

  JobConfig jc;
  JobContext ctx{hier, pool, false};
  for (std::size_t kill = 0; kill <= total_steps; ++kill) {
    std::vector<std::int64_t> data = input;
    std::optional<Checkpoint> ckpt;
    {
      PipelineJob job(pair, as_bytes(data), pcfg, add_thousand);
      bool more = true;
      for (std::size_t i = 0; i < kill && more; ++i) more = job.step();
      ckpt = job.checkpoint();
    }
    ASSERT_TRUE(ckpt.has_value()) << "killed at step " << kill;

    const RecoverableFactory factory = make_recoverable_pipeline_job(
        pair, as_bytes(data), pcfg, add_thousand);
    std::unique_ptr<JobStepper> resumed = factory(jc, ctx, &*ckpt);
    while (resumed->step()) {
    }
    resumed->finish();
    EXPECT_EQ(data, expected) << "killed at step " << kill;
  }
}

}  // namespace
}  // namespace mlm::service

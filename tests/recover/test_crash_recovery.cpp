// CrashHarness: the crash-consistency acceptance suite.  A scheduler
// over journaled sort tenants is killed at seeded step boundaries (and,
// in the torn-tail families, mid-journal-write via the
// service.journal.append site), restarted from the JobJournal, and
// driven to completion — the recovered run must be digest-identical to
// an uninterrupted one, across 100 DeterministicExecutor seeds and any
// number of successive crashes.
//
// Crash model (see ~JobScheduler): an in-process "crash" destroys the
// scheduler and every executor at a step boundary; the MemoryHierarchy
// (far-tier tenant data) and the journal survive, exactly like NVM and
// a WAL survive real process death.  Torn Submitted records lose the
// job with the process — the WAL acknowledgement contract makes those
// the client's to resubmit, which the harness does.
//
// The chaos family reads MLM_CHAOS_PROB / MLM_CHAOS_SEEDS /
// MLM_CHAOS_ARTIFACT_DIR so the nightly job can turn the fault
// probability up, widen the seed sweep, and keep the journal files as
// artifacts when a seed fails.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mlm/core/external_sort.h"
#include "mlm/fault/fault.h"
#include "mlm/kvstore/migration.h"
#include "mlm/kvstore/migration_job.h"
#include "mlm/kvstore/store.h"
#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/service/job_scheduler.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/rng.h"
#include "mlm/support/units.h"

namespace mlm::service {
namespace {

using sort::InputOrder;
using sort::make_input;

constexpr std::uint64_t kSeeds = 100;
constexpr std::size_t kJobs = 3;
constexpr std::size_t kMaxIncarnations = 64;

struct Tenant {
  std::size_t n;
  InputOrder order;
  int priority;
  std::uint64_t near_budget;
};

// Two contending budgets plus a token tenant, over a 256 KiB arena.
constexpr std::array<Tenant, kJobs> kTenants = {{
    {1536, InputOrder::Random, 0, KiB(160)},
    {1024, InputOrder::Reverse, 1, KiB(96)},
    {768, InputOrder::FewDistinct, 0, 0},
}};

std::uint64_t input_seed(std::size_t job) { return 500 + 31 * job; }

std::string tenant_key(std::size_t job) {
  return "sort.tenant" + std::to_string(job);
}

HierarchyConfig service_config() {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
               TierConfig{"ddr", MemKind::DDR, MiB(2)},
               TierConfig{"mcdram", MemKind::MCDRAM, KiB(256)}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

core::ExternalSortConfig sort_config() {
  core::ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 512;
  cfg.inner.variant = core::MlmVariant::Flat;
  return cfg;
}

std::uint64_t fnv1a(std::span<const std::int64_t> data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::int64_t v : data) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest each tenant must end at: sorting is multiset-preserving, so
/// the expected bytes are the sorted input regardless of interleaving,
/// crashes, or resume points.
std::array<std::uint64_t, kJobs> expected_digests() {
  std::array<std::uint64_t, kJobs> out{};
  for (std::size_t j = 0; j < kJobs; ++j) {
    std::vector<std::int64_t> data =
        make_input(kTenants[j].n, kTenants[j].order, input_seed(j));
    std::sort(data.begin(), data.end());
    out[j] = fnv1a(data);
  }
  return out;
}

/// Everything that survives a crash: the hierarchy (the tenants'
/// far-tier data lives in tier 0) and the journal.
struct World {
  explicit World(const std::string& journal_path = "")
      : hier(service_config()) {
    journal = journal_path.empty()
                  ? std::make_unique<JobJournal>()
                  : std::make_unique<JobJournal>(journal_path);
    buffers.reserve(kJobs);
    for (std::size_t j = 0; j < kJobs; ++j) {
      buffers.emplace_back(hier.tier(0), kTenants[j].n);
      const auto init =
          make_input(kTenants[j].n, kTenants[j].order, input_seed(j));
      std::copy(init.begin(), init.end(), buffers[j].data());
    }
  }

  std::span<std::int64_t> span(std::size_t j) {
    return std::span<std::int64_t>(buffers[j].data(), kTenants[j].n);
  }

  FactoryResolver resolver() {
    FactoryResolver r;
    for (std::size_t j = 0; j < kJobs; ++j) {
      r.register_factory(tenant_key(j),
                         make_recoverable_sort_job(span(j), sort_config()));
    }
    return r;
  }

  MemoryHierarchy hier;
  std::vector<SpaceBuffer<std::int64_t>> buffers;
  std::unique_ptr<JobJournal> journal;
};

/// Everything that DIES in a crash, in construction order (destruction
/// tears the scheduler down before its driver, per the crash model).
struct Incarnation {
  Incarnation(World& w, std::uint64_t seed, std::size_t ckpt_interval)
      : sched(seed), driver(sched, 2, "driver") {
    JobSchedulerConfig cfg;
    cfg.max_concurrent = 2;
    cfg.job_workers = 2;
    cfg.degrade.allow_tier_fallback = true;
    cfg.journal = w.journal.get();
    cfg.checkpoint_interval_steps = ckpt_interval;
    svc = std::make_unique<JobScheduler>(w.hier, driver, cfg);
  }

  DeterministicScheduler sched;
  DeterministicExecutor driver;
  std::unique_ptr<JobScheduler> svc;
};

bool has_job(const JobScheduler& svc, std::uint64_t id) {
  try {
    (void)svc.job_stats(id);
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::uint64_t submit_tenant(JobScheduler& svc, std::size_t j,
                            World& w) {
  JobConfig jc;
  jc.name = "tenant" + std::to_string(j);
  jc.priority = kTenants[j].priority;
  jc.near_budget_bytes = kTenants[j].near_budget;
  jc.recovery_key = tenant_key(j);
  return svc.submit_recoverable(
      jc, make_recoverable_sort_job(w.span(j), sort_config()));
}

struct CrashOutcome {
  std::size_t incarnations = 1;
  std::size_t crashes = 0;
  std::size_t recovered_jobs = 0;   ///< jobs resubmitted by recover()
  std::size_t client_resubmits = 0; ///< jobs lost to torn Submitted
  bool torn_seen = false;
  std::size_t with_checkpoint = 0;
  ServiceStats final_metrics;
};

/// Drive the three tenants to completion across crash/recover cycles.
/// `arm` (optional) installs ONE fault plan spanning the whole odyssey,
/// so nth_call triggers count journal appends cumulatively across
/// incarnations (a bounded trigger therefore always fires eventually,
/// and always stops firing, so the run still terminates).
CrashOutcome run_with_crashes(
    World& w, std::uint64_t seed, std::size_t ckpt_interval,
    const std::function<void(fault::FaultPlan&)>& arm = nullptr) {
  const FactoryResolver resolver = w.resolver();
  SplitMix64 rng(seed ^ 0x8badf00ddeadbeefull);
  CrashOutcome out;

  fault::FaultPlan plan;
  std::optional<fault::ScopedFaultInjector> inject;
  if (arm != nullptr) {
    arm(plan);
    inject.emplace(plan);
  }

  std::array<std::optional<std::uint64_t>, kJobs> ids;
  // Completions the client has already observed: a real client learns
  // of these from the response, so it never resubmits them — and
  // recover() deliberately does not resurrect terminal jobs.
  std::array<bool, kJobs> completed{};
  auto inc = std::make_unique<Incarnation>(w, seed, ckpt_interval);

  const auto submit_missing = [&] {
    for (std::size_t j = 0; j < kJobs; ++j) {
      if (completed[j]) continue;
      if (inc->svc->halted()) return;
      if (!ids[j].has_value() || !has_job(*inc->svc, *ids[j])) {
        if (ids[j].has_value()) ++out.client_resubmits;
        ids[j] = submit_tenant(*inc->svc, j, w);
      }
    }
  };

  const auto note_completions = [&] {
    for (std::size_t j = 0; j < kJobs; ++j) {
      if (completed[j] || !ids[j].has_value()) continue;
      if (has_job(*inc->svc, *ids[j]) &&
          inc->svc->state(*ids[j]) == JobState::Completed) {
        completed[j] = true;
      }
    }
  };

  bool done = false;
  for (std::size_t guard = 0; guard < kMaxIncarnations; ++guard) {
    submit_missing();
    if (!inc->svc->halted()) {
      // Grow the kill budget over incarnations so every run
      // terminates: eventually one burst outlasts the remaining work.
      const std::size_t burst = 1 + rng.next() % 23 + guard * 4;
      done = inc->svc->run_ticks(burst);
    }
    if (done) break;

    // The client observes any completions before the world dies (the
    // responses made it out; only in-flight work is lost).
    note_completions();

    // CRASH: the scheduler and its executors die at this boundary; the
    // journal and the far-tier tenant data in `w` survive.
    ++out.crashes;
    inc.reset();
    inc = std::make_unique<Incarnation>(w, seed + 1000 * (guard + 1),
                                        ckpt_interval);
    ++out.incarnations;
    const JobScheduler::RecoveryReport report = inc->svc->recover(resolver);
    out.recovered_jobs += report.jobs_resubmitted;
    out.with_checkpoint += report.with_checkpoint;
    out.torn_seen |= report.torn_tail;
  }
  EXPECT_TRUE(done) << "seed " << seed << " never completed within "
                    << kMaxIncarnations << " incarnations";
  out.final_metrics = inc->svc->metrics();

  for (std::size_t j = 0; j < kJobs; ++j) {
    if (completed[j]) continue;  // observed done in a past incarnation
    if (!ids[j].has_value()) {
      ADD_FAILURE() << "seed " << seed << " job " << j
                    << " was never submitted";
      continue;
    }
    const SortStats st = inc->svc->job_stats(*ids[j]);
    EXPECT_EQ(st.state, JobState::Completed)
        << "seed " << seed << " job " << j << ": "
        << (st.error ? st.error->what() : "no error");
  }
  // However many crashes happened, the final journal is whole: the torn
  // bytes were truncated at recovery, never replayed.
  EXPECT_FALSE(w.journal->replay().torn_tail) << "seed " << seed;
  return out;
}

void expect_digests(World& w, std::uint64_t seed) {
  static const std::array<std::uint64_t, kJobs> expected =
      expected_digests();
  for (std::size_t j = 0; j < kJobs; ++j) {
    EXPECT_EQ(fnv1a(w.span(j)), expected[j])
        << "seed " << seed << " job " << j;
  }
}

TEST(CrashRecovery, HundredSeedKillAtStepBoundariesSweep) {
  std::size_t total_crashes = 0;
  std::size_t total_recovered = 0;
  std::size_t total_with_checkpoint = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    World w;
    const CrashOutcome out = run_with_crashes(w, seed, /*interval=*/2);
    expect_digests(w, seed);
    EXPECT_EQ(out.client_resubmits, 0u) << "seed " << seed
                                        << ": no faults, no lost jobs";
    total_crashes += out.crashes;
    total_recovered += out.recovered_jobs;
    total_with_checkpoint += out.with_checkpoint;
  }
  // The sweep must actually have exercised the recovery path, hard:
  // most seeds crash at least once (small first bursts), and checkpoint
  // resume — not just restart-from-scratch — must show up broadly.
  EXPECT_GT(total_crashes, kSeeds) << "kill points were not exercised";
  EXPECT_GT(total_recovered, kSeeds);
  EXPECT_GT(total_with_checkpoint, kSeeds / 2);
}

TEST(CrashRecovery, SameSeedSameCrashSchedule) {
  // The whole crash/recover odyssey is a pure function of the seed:
  // same seed, same crash count, same recovery counts, same digests.
  for (const std::uint64_t seed : {5ull, 23ull, 77ull}) {
    World w1, w2;
    const CrashOutcome a = run_with_crashes(w1, seed, 2);
    const CrashOutcome b = run_with_crashes(w2, seed, 2);
    EXPECT_EQ(a.crashes, b.crashes) << "seed " << seed;
    EXPECT_EQ(a.recovered_jobs, b.recovered_jobs) << "seed " << seed;
    EXPECT_EQ(a.with_checkpoint, b.with_checkpoint) << "seed " << seed;
    expect_digests(w1, seed);
    expect_digests(w2, seed);
  }
}

TEST(CrashRecovery, TornSubmittedRecordLosesOnlyThatJob) {
  // Tear the m-th journal append mid-write during submission: the
  // world halts before the job is queued, recovery truncates the torn
  // record, and the client (the harness) resubmits the lost tenant.
  for (const std::uint64_t m : {0ull, 1ull, 2ull}) {
    World w;
    const CrashOutcome out = run_with_crashes(
        w, /*seed=*/11 + m, /*interval=*/2, [m](fault::FaultPlan& plan) {
          plan.arm(fault::sites::kServiceJournalAppend,
                   fault::FaultTrigger::nth_call(m));
        });
    EXPECT_TRUE(out.torn_seen) << "m=" << m;
    EXPECT_GE(out.client_resubmits + (m == 0 ? 1 : 0), 1u) << "m=" << m;
    expect_digests(w, 11 + m);
  }
}

TEST(CrashRecovery, TornCheckpointOrCompletionHealsByRedo) {
  // Tear a later append — a Checkpoint or terminal record mid-run.  The
  // job itself is durable (its Submitted record is whole), so recovery
  // resumes it; the torn record is truncated and the work redone.
  for (const std::uint64_t m : {4ull, 7ull, 11ull, 16ull}) {
    World w;
    const CrashOutcome out = run_with_crashes(
        w, /*seed=*/29 + m, /*interval=*/1, [m](fault::FaultPlan& plan) {
          plan.arm(fault::sites::kServiceJournalAppend,
                   fault::FaultTrigger::nth_call(m));
        });
    EXPECT_TRUE(out.torn_seen) << "m=" << m;
    EXPECT_EQ(out.client_resubmits, 0u)
        << "m=" << m << ": torn checkpoints must not lose jobs";
    expect_digests(w, 29 + m);
  }
}

TEST(CrashRecovery, CheckpointResumeIsExercisedNotJustRestart) {
  World w;
  const CrashOutcome out = run_with_crashes(w, /*seed=*/3, /*interval=*/1);
  expect_digests(w, 3);
  if (out.crashes > 0) {
    EXPECT_GT(out.recovered_jobs, 0u);
    EXPECT_GT(out.final_metrics.jobs_recovered, 0u);
    EXPECT_GT(out.final_metrics.checkpoints_written, 0u);
  }
}

TEST(CrashRecovery, RecoverPreconditionsAreEnforced) {
  World w;
  {
    Incarnation inc(w, 1, 2);
    (void)submit_tenant(*inc.svc, 0, w);
    // recover on a scheduler that already has jobs is a usage error.
    const FactoryResolver r = w.resolver();
    EXPECT_THROW((void)inc.svc->recover(r), Error);
    inc.svc->run_all();
  }
  // recover without a configured journal is a usage error.
  DeterministicScheduler sched(1);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler bare(w.hier, driver, JobSchedulerConfig{});
  const FactoryResolver r = w.resolver();
  EXPECT_THROW((void)bare.recover(r), Error);
}

TEST(CrashRecovery, UnresolvedRecoveryKeyFailsTheJobLoudly) {
  World w;
  {
    Incarnation inc(w, 1, 2);
    (void)submit_tenant(*inc.svc, 0, w);
    (void)inc.svc->run_ticks(3);  // crash mid-run
  }
  Incarnation inc(w, 2, 2);
  FactoryResolver empty;
  const JobScheduler::RecoveryReport report = inc.svc->recover(empty);
  EXPECT_EQ(report.jobs_resubmitted, 0u);
  const SortStats st = inc.svc->job_stats(0);
  EXPECT_EQ(st.state, JobState::Failed);
  ASSERT_TRUE(st.error.has_value());
  EXPECT_NE(std::string(st.error->what()).find("no recovery factory"),
            std::string::npos);
}

TEST(CrashRecovery, TransientReplayFaultIsRetriedPermanentOnePropagates) {
  World w;
  {
    Incarnation inc(w, 1, 1);
    (void)submit_tenant(*inc.svc, 0, w);
    (void)inc.svc->run_ticks(5);
  }
  {
    // One transient read failure: recover()'s internal retry absorbs it.
    fault::FaultPlan plan;
    plan.arm(fault::sites::kServiceJournalReplay,
             fault::FaultTrigger::nth_call(0));
    fault::ScopedFaultInjector inject(plan);
    Incarnation inc(w, 2, 1);
    const FactoryResolver r = w.resolver();
    const JobScheduler::RecoveryReport report = inc.svc->recover(r);
    EXPECT_EQ(report.jobs_resubmitted, 1u);
    EXPECT_EQ(plan.stats(fault::sites::kServiceJournalReplay).fires, 1u);
    inc.svc->run_all();
    EXPECT_EQ(inc.svc->state(0), JobState::Completed);
  }
  // Only tenant 0 ever ran in this scenario.
  EXPECT_EQ(fnv1a(w.span(0)), expected_digests()[0]);
  {
    // A permanent read failure exhausts the retries and propagates with
    // the recover frame — never a silent partial recovery.
    World fresh;
    {
      Incarnation inc(fresh, 1, 1);
      (void)submit_tenant(*inc.svc, 0, fresh);
      (void)inc.svc->run_ticks(5);
    }
    fault::FaultPlan plan;
    plan.arm(fault::sites::kServiceJournalReplay,
             fault::FaultTrigger::always());
    fault::ScopedFaultInjector inject(plan);
    Incarnation inc(fresh, 2, 1);
    const FactoryResolver r = fresh.resolver();
    try {
      (void)inc.svc->recover(r);
      FAIL() << "expected the permanent replay fault to propagate";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("journal replay failed"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CrashRecovery, ChaosProbabilisticTornWritesSweep) {
  // Nightly knobs: MLM_CHAOS_PROB (per-append tear probability),
  // MLM_CHAOS_SEEDS (sweep width), MLM_CHAOS_ARTIFACT_DIR (file-backed
  // journals, kept for upload when a seed fails).  Defaults keep the
  // tier-1 run small.
  const char* p_env = std::getenv("MLM_CHAOS_PROB");
  const char* s_env = std::getenv("MLM_CHAOS_SEEDS");
  const char* dir_env = std::getenv("MLM_CHAOS_ARTIFACT_DIR");
  const double p = p_env != nullptr ? std::atof(p_env) : 0.05;
  const std::uint64_t seeds =
      s_env != nullptr ? std::strtoull(s_env, nullptr, 10) : 8;

  std::size_t torn_runs = 0;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const std::string path =
        dir_env != nullptr
            ? std::string(dir_env) + "/chaos_seed" + std::to_string(seed) +
                  ".wal"
            : "";
    if (!path.empty()) std::remove(path.c_str());
    World w(path);
    const CrashOutcome out = run_with_crashes(
        w, seed, /*interval=*/1,
        [p, seed](fault::FaultPlan& plan) {
          plan.arm(fault::sites::kServiceJournalAppend,
                   fault::FaultTrigger::probability(p, seed * 7 + 1,
                                                    /*max_fires=*/2));
        });
    expect_digests(w, seed);
    if (out.torn_seen) ++torn_runs;
    if (!path.empty() && !::testing::Test::HasFailure()) {
      std::remove(path.c_str());
    }
  }
  if (p >= 0.05 && seeds >= 8) {
    EXPECT_GT(torn_runs, 0u) << "chaos sweep tore no journal writes";
  }
}

// ------------------- migration jobs recover too ----------------------

TEST(CrashRecovery, MigrationJobResumesFromJournaledPlan) {
  // The kvstore fixture from tests/kvstore/test_migration.cpp: 8
  // segments over a 2-segment near tier, a plan swapping {0,1} for
  // {5,6}.  The store and engine survive the crash; the half-executed
  // plan is resumed from its journaled checkpoint — never re-planned.
  HierarchyConfig hcfg;
  hcfg.tiers = {TierConfig{"ddr", MemKind::DDR, 0},
                TierConfig{"mcdram", MemKind::MCDRAM, KiB(2)}};
  MemoryHierarchy hier(hcfg);
  kv::KvConfig kcfg;
  kcfg.value_bytes = 56;
  kcfg.records_per_segment = 16;
  kcfg.index_prefers_near = false;
  kv::TieredKvStore store(hier, kcfg);
  std::vector<std::uint8_t> value(56, 0x5A);
  for (std::uint64_t k = 0; k < 8 * 16; ++k) store.put(k, value.data());
  kv::MigrationPlan plan;
  plan.demote = {0, 1};
  plan.promote = {5, 6};
  const std::uint64_t digest = store.contents_digest();
  kv::MigrationEngine engine(store);

  JobJournal journal;
  const std::string kKey = "kv.migration.v1";
  std::uint64_t id = 0;
  {
    DeterministicScheduler sched(9);
    DeterministicExecutor driver(sched, 2, "driver");
    JobSchedulerConfig cfg;
    cfg.journal = &journal;
    cfg.checkpoint_interval_steps = 1;
    JobScheduler svc(hier, driver, cfg);
    JobConfig jc;
    jc.name = "migrate";
    jc.near_budget_bytes = 0;
    jc.recovery_key = kKey;
    id = svc.submit_recoverable(
        jc, kv::make_recoverable_migration_job(engine, plan));
    (void)svc.run_ticks(3);  // part of the plan executes, then CRASH
  }

  DeterministicScheduler sched(10);
  DeterministicExecutor driver(sched, 2, "driver");
  JobSchedulerConfig cfg;
  cfg.journal = &journal;
  cfg.checkpoint_interval_steps = 1;
  JobScheduler svc(hier, driver, cfg);
  FactoryResolver resolver;
  resolver.register_factory(
      kKey, kv::make_recoverable_migration_job(engine, plan));
  const JobScheduler::RecoveryReport report = svc.recover(resolver);
  EXPECT_EQ(report.jobs_resubmitted + report.jobs_already_terminal, 1u);
  svc.run_all();
  EXPECT_EQ(svc.state(id), JobState::Completed);

  EXPECT_FALSE(store.segment_near(0));
  EXPECT_FALSE(store.segment_near(1));
  EXPECT_TRUE(store.segment_near(5));
  EXPECT_TRUE(store.segment_near(6));
  EXPECT_EQ(store.near_segment_count(), 2u);
  EXPECT_EQ(store.contents_digest(), digest);
}

}  // namespace
}  // namespace mlm::service

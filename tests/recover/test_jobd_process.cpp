// Process-level crash and shutdown contract of the mlm_jobd demo:
// SIGTERM during ingestion drains in-flight jobs, ends the journal with
// a Shutdown record, and exits 0; SIGKILL leaves a dirty journal that a
// --recover rerun (same --seed/--jobs/--elements) replays, finishes,
// and closes cleanly.  Spawns the real binary (MLM_JOBD_BIN).
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mlm/service/journal.h"

namespace mlm::service {
namespace {

std::string tmp_journal(const std::string& name) {
  return ::testing::TempDir() + "mlm_jobd_" + name + ".wal";
}

/// fork+exec the jobd binary with stdout/stderr routed to /dev/null.
pid_t spawn_jobd(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::close(devnull);
  }
  std::vector<char*> argv;
  static const std::string bin = MLM_JOBD_BIN;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  ::_exit(127);  // exec failed
}

/// waitpid with a deadline; SIGKILLs and fails the test on timeout.
int wait_for_exit(pid_t pid, int timeout_sec = 60) {
  for (int waited_ms = 0; waited_ms < timeout_sec * 1000;
       waited_ms += 20) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ADD_FAILURE() << "jobd did not exit within " << timeout_sec << "s";
  return status;
}

TEST(JobdProcess, SigtermDrainsAndExitsZeroWithCleanJournal) {
  const std::string path = tmp_journal("sigterm");
  std::remove(path.c_str());

  // Slow ingestion keeps the process alive long enough for the signal
  // to land mid-run; the handler must stop ingesting, drain what was
  // admitted, write the Shutdown record, and exit 0.
  const pid_t pid = spawn_jobd({"--loadgen", "--jobs=64",
                                "--elements=2048", "--seed=11",
                                "--journal=" + path,
                                "--ingest-delay-ms=30", "--quiet"});
  ASSERT_GT(pid, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);

  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFEXITED(status)) << "terminated by signal instead";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  JobJournal j(path);
  EXPECT_TRUE(j.cleanly_shut_down())
      << "interrupted run must still end the log with Shutdown";
  EXPECT_FALSE(j.replay().torn_tail);
  std::remove(path.c_str());
}

TEST(JobdProcess, SigkillThenRecoverFinishesTheJournaledWork) {
  const std::string path = tmp_journal("sigkill");
  std::remove(path.c_str());
  const std::vector<std::string> shape = {"--loadgen", "--jobs=24",
                                          "--elements=2048", "--seed=5",
                                          "--journal=" + path, "--quiet"};

  // Run 1: killed dead mid-flight.  SIGKILL cannot be caught, so no
  // Shutdown record is written — the journal is dirty by construction.
  std::vector<std::string> slow = shape;
  slow.push_back("--ingest-delay-ms=40");
  const pid_t pid = spawn_jobd(slow);
  ASSERT_GT(pid, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  {
    JobJournal j(path);
    EXPECT_FALSE(j.cleanly_shut_down());
  }

  // Run 2: --recover with the crashed run's shape replays the journal,
  // resubmits every job without a terminal record, and closes cleanly.
  std::vector<std::string> recover = shape;
  recover.push_back("--recover");
  const pid_t rpid = spawn_jobd(recover);
  ASSERT_GT(rpid, 0);
  const int rstatus = wait_for_exit(rpid);
  ASSERT_TRUE(WIFEXITED(rstatus));
  EXPECT_EQ(WEXITSTATUS(rstatus), 0);

  JobJournal j(path);
  EXPECT_TRUE(j.cleanly_shut_down());
  EXPECT_FALSE(j.replay().torn_tail);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlm::service

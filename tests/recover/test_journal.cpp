// JobJournal: the append-only, checksummed WAL under the service
// layer's crash recovery.  Round-trips in memory and across file
// reopen, detection and truncation of torn tails (half-written final
// records are never silently replayed), the two journal fault sites
// (service.journal.append = die mid-write, service.journal.replay =
// transient read failure), and the clean-shutdown marker.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "mlm/fault/fault.h"
#include "mlm/service/journal.h"
#include "mlm/support/error.h"

namespace mlm::service {
namespace {

std::vector<std::uint8_t> payload_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "mlm_journal_" + name + ".wal";
}

TEST(JobJournal, MemoryRoundTripPreservesOrderTypesAndPayloads) {
  JobJournal j;
  j.append(JournalRecordType::Submitted, 0, payload_of("job zero"));
  j.append(JournalRecordType::Submitted, 1, payload_of("job one"));
  j.append(JournalRecordType::Checkpoint, 0, payload_of("ckpt"));
  j.append(JournalRecordType::Completed, 0);
  j.append(JournalRecordType::Failed, 1, payload_of("why"));

  const JobJournal::Replay r = j.replay();
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 5u);
  EXPECT_EQ(r.records[0].type, JournalRecordType::Submitted);
  EXPECT_EQ(r.records[0].job_id, 0u);
  EXPECT_EQ(r.records[0].payload, payload_of("job zero"));
  EXPECT_EQ(r.records[2].type, JournalRecordType::Checkpoint);
  EXPECT_EQ(r.records[3].type, JournalRecordType::Completed);
  EXPECT_TRUE(r.records[3].payload.empty());
  EXPECT_EQ(r.records[4].job_id, 1u);
  EXPECT_FALSE(j.cleanly_shut_down());
}

TEST(JobJournal, FileBackedJournalSurvivesReopen) {
  const std::string path = tmp_path("reopen");
  std::remove(path.c_str());
  {
    JobJournal j(path);
    j.append(JournalRecordType::Submitted, 7, payload_of("tenant"));
    j.append(JournalRecordType::Checkpoint, 7, payload_of("state"));
  }
  JobJournal j(path);
  const JobJournal::Replay r = j.replay();
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].job_id, 7u);
  EXPECT_EQ(r.records[1].payload, payload_of("state"));

  // And appends after reopen extend, not clobber.
  j.append(JournalRecordType::Completed, 7);
  JobJournal again(path);
  EXPECT_EQ(again.replay().records.size(), 3u);
  std::remove(path.c_str());
}

TEST(JobJournal, RejectsAForeignFile) {
  const std::string path = tmp_path("foreign");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a journal";
  }
  EXPECT_THROW(JobJournal j(path), Error);
  std::remove(path.c_str());
}

TEST(JobJournal, CorruptedRecordTruncatesFromFirstInvalidByte) {
  const std::string path = tmp_path("corrupt");
  std::remove(path.c_str());
  std::size_t first_record_end = 0;
  {
    JobJournal j(path);
    j.append(JournalRecordType::Submitted, 1, payload_of("keep me"));
    first_record_end = j.bytes();
    j.append(JournalRecordType::Checkpoint, 1, payload_of("corrupt me"));
    j.append(JournalRecordType::Completed, 1);
  }
  {
    // Flip one byte inside the second record's payload on disk.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(first_record_end + 20));
    char b = 0;
    f.seekg(static_cast<std::streamoff>(first_record_end + 20));
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(first_record_end + 20));
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  JobJournal j(path);
  const JobJournal::Replay r = j.replay();
  // The checksum catches the flip; the record and EVERYTHING after it
  // (even the well-formed Completed) is the torn tail — a log is only
  // trustworthy up to its first invalid byte.
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, payload_of("keep me"));

  const std::size_t dropped = j.truncate_to_valid();
  EXPECT_GT(dropped, 0u);
  EXPECT_FALSE(j.replay().torn_tail);
  // The truncation is durable: a reopen sees the clean prefix only.
  JobJournal again(path);
  EXPECT_FALSE(again.replay().torn_tail);
  EXPECT_EQ(again.replay().records.size(), 1u);
  std::remove(path.c_str());
}

TEST(JobJournal, AppendFaultSiteTearsTheTailMidWrite) {
  JobJournal j;
  j.append(JournalRecordType::Submitted, 3, payload_of("safe"));

  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceJournalAppend,
           fault::FaultTrigger::nth_call(0));
  {
    fault::ScopedFaultInjector inject(plan);
    EXPECT_THROW(
        j.append(JournalRecordType::Checkpoint, 3, payload_of("torn")),
        fault::InjectedFaultError);
  }
  EXPECT_EQ(plan.stats(fault::sites::kServiceJournalAppend).fires, 1u);

  // Only a prefix of the record reached the log: replay keeps the safe
  // record, flags the torn tail, and never surfaces the half record.
  const JobJournal::Replay torn = j.replay();
  EXPECT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.records[0].payload, payload_of("safe"));

  // The next append first truncates the torn bytes, so the log heals
  // rather than accreting garbage.
  j.append(JournalRecordType::Completed, 3);
  const JobJournal::Replay healed = j.replay();
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.records.size(), 2u);
  EXPECT_EQ(healed.records[1].type, JournalRecordType::Completed);
}

TEST(JobJournal, ReplayFaultSiteSurfacesStructuredTransientError) {
  JobJournal j;
  j.append(JournalRecordType::Submitted, 9);
  j.append(JournalRecordType::Completed, 9);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceJournalReplay,
           fault::FaultTrigger::nth_call(1));
  fault::ScopedFaultInjector inject(plan);
  try {
    (void)j.replay();
    FAIL() << "expected a transient replay error";
  } catch (const Error& e) {
    ASSERT_FALSE(e.chain().empty());
    EXPECT_EQ(e.chain().front().op, "journal_replay");
    EXPECT_EQ(e.chain().front().chunk, 1);  // the failing record index
  }
  // The fault was transient: the very next replay succeeds.
  EXPECT_EQ(j.replay().records.size(), 2u);
}

TEST(JobJournal, OversizedPayloadIsRejectedNotLogged) {
  JobJournal j;
  std::vector<std::uint8_t> huge((64u << 20) + 1, 0xAB);
  EXPECT_THROW(j.append(JournalRecordType::Checkpoint, 0, huge), Error);
  EXPECT_TRUE(j.replay().records.empty());
}

TEST(JobJournal, CleanShutdownMeansShutdownLastAndNoTornTail) {
  JobJournal j;
  EXPECT_FALSE(j.cleanly_shut_down());  // empty log: nothing proven
  j.append(JournalRecordType::Submitted, 0);
  j.append(JournalRecordType::Completed, 0);
  EXPECT_FALSE(j.cleanly_shut_down());
  j.append(JournalRecordType::Shutdown, 0);
  EXPECT_TRUE(j.cleanly_shut_down());
  // More work after the marker un-cleans the log again.
  j.append(JournalRecordType::Submitted, 1);
  EXPECT_FALSE(j.cleanly_shut_down());
}

}  // namespace
}  // namespace mlm::service

// Overload protection: the bounded JobQueue sheds by priority (only the
// lowest-priority, latest-arrival victim is ever evicted, and only for
// a strictly higher-priority arrival), shed jobs fail with the
// structured Overloaded error, and the client retry ladder
// (retry_backoff_us) is tick-for-tick replayable from its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/service/job_scheduler.h"
#include "mlm/service/overload.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::service {
namespace {

HierarchyConfig small_hier() {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
               TierConfig{"ddr", MemKind::DDR, MiB(2)},
               TierConfig{"mcdram", MemKind::MCDRAM, KiB(256)}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

core::ExternalSortConfig sort_config() {
  core::ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 256;
  cfg.inner.variant = core::MlmVariant::Flat;
  return cfg;
}

/// Scheduler with a bounded queue that is NOT run until the caller says
/// so — submissions pile up in the queue, which is exactly the overload
/// scenario (admission only happens inside the run paths).
struct Fixture {
  Fixture(std::size_t max_queued, std::uint64_t seed = 1)
      : hier(small_hier()), sched(seed), driver(sched, 2, "driver") {
    JobSchedulerConfig cfg;
    cfg.max_concurrent = 1;
    cfg.job_workers = 1;
    cfg.degrade.allow_tier_fallback = true;
    cfg.max_queued = max_queued;
    svc = std::make_unique<JobScheduler>(hier, driver, cfg);
    buffers.reserve(16);  // stable SpaceBuffer addresses for job spans
  }

  std::uint64_t submit(const std::string& name, int priority) {
    const std::size_t n = 512;
    buffers.emplace_back(hier.tier(0), n);
    auto& buf = buffers.back();
    const auto init =
        sort::make_input(n, sort::InputOrder::Random, buffers.size());
    std::copy(init.begin(), init.end(), buf.data());
    JobConfig jc;
    jc.name = name;
    jc.priority = priority;
    jc.near_budget_bytes = KiB(96);  // room for sort + merge staging
    return svc->submit(jc,
                       make_sort_job(std::span<std::int64_t>(buf.data(), n),
                                     sort_config()));
  }

  MemoryHierarchy hier;
  DeterministicScheduler sched;
  DeterministicExecutor driver;
  std::unique_ptr<JobScheduler> svc;
  std::vector<SpaceBuffer<std::int64_t>> buffers;
};

TEST(Overload, FullQueueRejectsEqualOrLowerPriorityArrivals) {
  Fixture f(/*max_queued=*/2);
  const std::uint64_t a = f.submit("a", 1);
  const std::uint64_t b = f.submit("b", 0);
  // Queue now at its bound.  Equal-to-lowest priority: the ARRIVAL is
  // shed, never a queued job.
  const std::uint64_t c = f.submit("c", 0);
  EXPECT_EQ(f.svc->state(c), JobState::Failed);
  EXPECT_TRUE(f.svc->job_stats(c).shed);
  EXPECT_EQ(f.svc->state(a), JobState::Queued);
  EXPECT_EQ(f.svc->state(b), JobState::Queued);
  // Strictly lower priority than the lowest victim: also rejected.
  Fixture g(/*max_queued=*/1);
  const std::uint64_t p1 = g.submit("p1", 1);
  const std::uint64_t p0 = g.submit("p0", 0);
  EXPECT_EQ(g.svc->state(p0), JobState::Failed);
  EXPECT_EQ(g.svc->state(p1), JobState::Queued);

  // The survivors complete untouched.
  f.svc->run_all();
  const auto err = [&](std::uint64_t id) {
    const SortStats st = f.svc->job_stats(id);
    return st.error ? std::string(st.error->what()) : std::string("ok");
  };
  EXPECT_EQ(f.svc->state(a), JobState::Completed) << err(a);
  EXPECT_EQ(f.svc->state(b), JobState::Completed) << err(b);
}

TEST(Overload, HigherPriorityArrivalEvictsLowestPriorityLatestArrival) {
  Fixture f(/*max_queued=*/2);
  const std::uint64_t early_p0 = f.submit("early-p0", 0);
  const std::uint64_t late_p0 = f.submit("late-p0", 0);
  const std::uint64_t vip = f.submit("vip", 2);

  // Of the two priority-0 victims the LATEST arrival is shed: the
  // earlier submission has waited longer and keeps its place.
  EXPECT_EQ(f.svc->state(late_p0), JobState::Failed);
  EXPECT_TRUE(f.svc->job_stats(late_p0).shed);
  EXPECT_EQ(f.svc->state(early_p0), JobState::Queued);
  EXPECT_EQ(f.svc->state(vip), JobState::Queued);

  const ServiceStats m = f.svc->run_all();
  EXPECT_EQ(f.svc->state(vip), JobState::Completed);
  EXPECT_EQ(f.svc->state(early_p0), JobState::Completed);
  EXPECT_EQ(m.jobs_shed, 1u);
  EXPECT_EQ(m.jobs_failed, 1u);
}

TEST(Overload, ShedJobsCarryTheStructuredOverloadedError) {
  Fixture f(/*max_queued=*/1);
  f.submit("keeper", 1);
  const std::uint64_t shed = f.submit("shed-me", 0);

  const SortStats st = f.svc->job_stats(shed);
  ASSERT_TRUE(st.error.has_value());
  const std::string what = st.error->what();
  EXPECT_NE(what.find("job shed"), std::string::npos) << what;
  ASSERT_FALSE(st.error->chain().empty());
  const ErrorFrame& frame = st.error->chain().front();
  EXPECT_EQ(frame.op, "overload");
  EXPECT_EQ(frame.thread, "service");
  EXPECT_NE(frame.detail.find("queue=1/1"), std::string::npos)
      << frame.detail;
  EXPECT_NE(frame.detail.find("shed-me"), std::string::npos);

  // The rendering round-trips (satellite contract: overload errors are
  // parseable out of logs).
  const ParsedError parsed = parse_rendered_error(what);
  ASSERT_FALSE(parsed.frames.empty());
  EXPECT_EQ(parsed.frames.front().op, "overload");
  EXPECT_EQ(parsed.frames.front().detail, frame.detail);
}

TEST(Overload, UnboundedQueueNeverSheds) {
  Fixture f(/*max_queued=*/0);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(f.submit("job" + std::to_string(i), i % 3));
  }
  const ServiceStats m = f.svc->run_all();
  EXPECT_EQ(m.jobs_shed, 0u);
  EXPECT_EQ(m.jobs_completed, 8u);
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(f.svc->state(id), JobState::Completed);
  }
}

TEST(Overload, MetricsCountShedJobsSeparately) {
  Fixture f(/*max_queued=*/1);
  f.submit("queued", 0);
  f.submit("rejected-1", 0);
  f.submit("rejected-2", 0);
  const ServiceStats m = f.svc->run_all();
  EXPECT_EQ(m.jobs_shed, 2u);
  EXPECT_EQ(m.jobs_failed, 2u);  // shed jobs are the only failures
  EXPECT_EQ(m.jobs_completed, 1u);
}

// -------------------------- retry ladder -----------------------------

TEST(RetryLadder, BackoffIsDeterministicPerSeedAndAttempt) {
  RetryPolicy p;
  p.base_us = 100;
  p.cap_us = 100'000;
  p.jitter_seed = 42;

  std::vector<std::uint64_t> first;
  for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
    first.push_back(retry_backoff_us(p, attempt));
  }
  // Tick-for-tick replay: the same policy yields the same ladder.
  for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
    EXPECT_EQ(retry_backoff_us(p, attempt), first[attempt - 1])
        << "attempt " << attempt;
  }

  // A different seed jitters differently somewhere in the ladder.
  RetryPolicy other = p;
  other.jitter_seed = 43;
  bool any_difference = false;
  for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
    if (retry_backoff_us(other, attempt) != first[attempt - 1]) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryLadder, DelayStaysWithinJitterWindowAndSaturatesAtCap) {
  RetryPolicy p;
  p.base_us = 100;
  p.cap_us = 10'000;
  p.jitter_seed = 7;

  std::uint64_t ceil = p.base_us;
  for (std::size_t attempt = 1; attempt <= 64; ++attempt) {
    const std::uint64_t delay = retry_backoff_us(p, attempt);
    EXPECT_GE(delay, ceil / 2) << "attempt " << attempt;
    EXPECT_LE(delay, ceil) << "attempt " << attempt;
    // The ceiling doubles per attempt and pins to the cap — never wraps,
    // even for attempt counts past the word size.
    ceil = std::min<std::uint64_t>(ceil * 2, p.cap_us);
  }
  EXPECT_LE(retry_backoff_us(p, 100000), p.cap_us);
  EXPECT_GE(retry_backoff_us(p, 100000), p.cap_us / 2);
}

}  // namespace
}  // namespace mlm::service

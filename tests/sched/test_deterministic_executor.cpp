#include "mlm/parallel/deterministic_executor.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "mlm/parallel/parallel_for.h"
#include "mlm/parallel/parallel_memcpy.h"
#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(DeterministicExecutor, PostDoesNotRunUntilStepped) {
  DeterministicScheduler sched(1);
  DeterministicExecutor ex(sched, 2, "ex");
  bool ran = false;
  ex.post([&] { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.step());
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.now(), 1u);
  EXPECT_FALSE(sched.step());
}

TEST(DeterministicExecutor, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    DeterministicScheduler sched(seed);
    DeterministicExecutor a(sched, 1, "a");
    DeterministicExecutor b(sched, 1, "b");
    for (int i = 0; i < 8; ++i) {
      a.post([] {});
      b.post([] {});
    }
    sched.run_all();
    return sched.trace();
  };
  EXPECT_EQ(run(42), run(42));
  // 16 tasks from two executors: two seeds agreeing on the whole
  // permutation is astronomically unlikely.
  EXPECT_NE(run(42), run(43));
}

TEST(DeterministicExecutor, SeedsPermuteAcrossExecutors) {
  // With enough seeds, both executors get to go first at least once.
  bool a_first = false;
  bool b_first = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    DeterministicScheduler sched(seed);
    DeterministicExecutor a(sched, 1, "a");
    DeterministicExecutor b(sched, 1, "b");
    a.post([] {});
    b.post([] {});
    sched.run_all();
    const std::string& first = sched.trace().front().tag;
    a_first = a_first || first == "a#0";
    b_first = b_first || first == "b#0";
  }
  EXPECT_TRUE(a_first);
  EXPECT_TRUE(b_first);
}

TEST(DeterministicExecutor, WaitDrivesFuturesToCompletion) {
  DeterministicScheduler sched(7);
  DeterministicExecutor ex(sched, 4, "ex");
  int sum = 0;
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 4; ++i) {
    futs.push_back(ex.submit([&sum, i] { sum += i; }));
  }
  ex.wait(futs);
  EXPECT_EQ(sum, 10);
  EXPECT_EQ(ex.tasks_executed(), 4u);
}

TEST(DeterministicExecutor, WaitOnForeignExecutorTasksAlsoRuns) {
  // wait() steps the shared scheduler, so another executor's tasks may
  // run while this one waits — the overlap being modeled.
  DeterministicScheduler sched(11);
  DeterministicExecutor a(sched, 1, "a");
  DeterministicExecutor b(sched, 1, "b");
  bool b_ran = false;
  b.post([&] { b_ran = true; });
  std::vector<std::future<void>> futs;
  futs.push_back(a.submit([] {}));
  a.wait(futs);
  b.wait_idle();
  EXPECT_TRUE(b_ran);
}

TEST(DeterministicExecutor, WaitOnUnfulfillableFutureThrowsWithTrace) {
  DeterministicScheduler sched(3);
  DeterministicExecutor ex(sched, 1, "ex");
  std::promise<void> never;
  std::vector<std::future<void>> futs;
  futs.push_back(never.get_future());
  ex.post([] {});
  try {
    ex.wait(futs);
    FAIL() << "expected deadlock Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("seed=3"), std::string::npos);
  }
}

TEST(DeterministicExecutor, WaitIdleRethrowsPostedTaskError) {
  DeterministicScheduler sched(5);
  DeterministicExecutor ex(sched, 1, "ex");
  ex.post([] { throw Error("boom"); });
  ex.post([] {});
  EXPECT_THROW(ex.wait_idle(), Error);
  // The error is consumed; the executor is reusable.
  ex.post([] {});
  EXPECT_NO_THROW(ex.wait_idle());
}

TEST(DeterministicExecutor, SubmitPropagatesExceptionThroughFuture) {
  DeterministicScheduler sched(5);
  DeterministicExecutor ex(sched, 1, "ex");
  std::vector<std::future<void>> futs;
  futs.push_back(ex.submit([] { throw Error("task failed"); }));
  EXPECT_THROW(ex.wait(futs), Error);
}

TEST(DeterministicExecutor, DestructorDropsPendingTasks) {
  DeterministicScheduler sched(9);
  bool ran = false;
  {
    DeterministicExecutor ex(sched, 1, "ex");
    ex.post([&] { ran = true; });
    EXPECT_EQ(sched.pending(), 1u);
  }
  EXPECT_EQ(sched.pending(), 0u);
  sched.run_all();
  EXPECT_FALSE(ran);
}

TEST(DeterministicExecutor, TasksMayEnqueueMoreTasks) {
  DeterministicScheduler sched(13);
  DeterministicExecutor ex(sched, 1, "ex");
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) ex.post(recurse);
  };
  ex.post(recurse);
  EXPECT_EQ(sched.run_all(), 5u);
  EXPECT_EQ(depth, 5);
}

TEST(DeterministicExecutor, ParallelForVisitsEveryIndex) {
  DeterministicScheduler sched(17);
  DeterministicExecutor ex(sched, 4, "ex");
  std::vector<int> visits(1000, 0);
  parallel_for(ex, 0, visits.size(),
               [&](std::size_t i) { visits[i] += 1; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i], 1) << i;
  }
}

TEST(DeterministicExecutor, ParallelMemcpyCopiesUnderSeededSchedule) {
  DeterministicScheduler sched(19);
  DeterministicExecutor ex(sched, 4, "ex");
  std::vector<std::int64_t> src(200000);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::int64_t> dst(src.size(), -1);
  parallel_memcpy(ex, dst.data(), src.data(),
                  src.size() * sizeof(std::int64_t));
  EXPECT_EQ(src, dst);
}

TEST(DeterministicExecutor, FormatTraceListsExecutedAndPending) {
  DeterministicScheduler sched(23);
  DeterministicExecutor ex(sched, 1, "ex");
  ex.post([] {});
  ex.post([] {});
  sched.step();
  const std::string trace = sched.format_trace();
  EXPECT_NE(trace.find("seed=23"), std::string::npos);
  EXPECT_NE(trace.find("executed=1"), std::string::npos);
  EXPECT_NE(trace.find("pending=1"), std::string::npos);
  EXPECT_NE(trace.find("[0] ex#"), std::string::npos);
  EXPECT_NE(trace.find("[pending] ex#"), std::string::npos);
}

}  // namespace
}  // namespace mlm

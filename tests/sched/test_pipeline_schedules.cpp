// Schedule-exploration suite: every pipeline variant runs under many
// seeded deterministic schedules with the invariant validator armed.
// Each seed is a different task interleaving; the data result, the
// validator, and the stats must hold under all of them, and a failing
// seed reproduces its exact schedule (trace equality is asserted below).
#include "mlm/core/chunk_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "mlm/core/pipeline_validator.h"
#include "mlm/fault/fault.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/support/units.h"

namespace mlm::core {
namespace {

constexpr std::uint64_t kSeedsPerVariant = 100;

DualSpace make_space(McdramMode mode, std::uint64_t mcdram = MiB(4)) {
  DualSpaceConfig cfg;
  cfg.mode = mode;
  cfg.mcdram_bytes = mcdram;
  return DualSpace(cfg);
}

PipelineConfig sched_config(Buffering buffering,
                            DeterministicScheduler& sched,
                            PipelineValidator& validator) {
  PipelineConfig cfg;
  cfg.chunk_bytes = 64 * 1024;
  cfg.pools = PoolSizes{2, 2, 2};
  cfg.buffering = buffering;
  cfg.scheduler = &sched;
  cfg.validator = &validator;
  return cfg;
}

struct Variant {
  McdramMode mode;
  Buffering buffering;
  bool write_back;
};

std::string variant_name(const Variant& v) {
  std::string name = std::string(to_string(v.mode)) + "_" +
                     to_string(v.buffering) +
                     (v.write_back ? "_wb" : "_ro");
  // gtest parameterized names must be alphanumeric/underscore only.
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

class PipelineSchedules : public ::testing::TestWithParam<Variant> {};

// The acceptance sweep: kSeedsPerVariant seeded schedules per pipeline
// variant, each checked by the validator and by the data itself.
TEST_P(PipelineSchedules, HoldsInvariantsUnderManySchedules) {
  const Variant v = GetParam();
  const std::size_t n = 5 * 64 * 1024 / sizeof(std::int64_t);  // 5 chunks
  PipelineValidator validator;

  for (std::uint64_t seed = 0; seed < kSeedsPerVariant; ++seed) {
    DualSpace space = make_space(v.mode);
    std::vector<std::int64_t> data(n);
    std::iota(data.begin(), data.end(), 0);

    DeterministicScheduler sched(seed);
    PipelineConfig cfg = sched_config(v.buffering, sched, validator);
    cfg.write_back = v.write_back;

    const PipelineStats stats = run_chunk_pipeline_typed<std::int64_t>(
        space, std::span<std::int64_t>(data), cfg,
        [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
          for (auto& x : chunk) x += 1;
        });
    ASSERT_EQ(stats.chunks, 5u) << "seed=" << seed;

    // Explicit modes write back when asked; implicit modes always
    // mutate in place.  Either way the result must be exact.
    if (v.write_back) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1)
            << "seed=" << seed << " i=" << i;
      }
    }
  }
  EXPECT_EQ(validator.runs_completed(), kSeedsPerVariant);
  EXPECT_GT(validator.events_checked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSchedules,
    ::testing::Values(
        // Explicit-copy modes x all bufferings, write-back and read-only.
        Variant{McdramMode::Flat, Buffering::Single, true},
        Variant{McdramMode::Flat, Buffering::Double, true},
        Variant{McdramMode::Flat, Buffering::Triple, true},
        Variant{McdramMode::Flat, Buffering::Triple, false},
        Variant{McdramMode::Hybrid, Buffering::Double, true},
        Variant{McdramMode::Hybrid, Buffering::Triple, true},
        // Degenerate in-place modes (no explicit copies).
        Variant{McdramMode::ImplicitCache, Buffering::Triple, true},
        Variant{McdramMode::Cache, Buffering::Triple, true},
        Variant{McdramMode::DdrOnly, Buffering::Single, true}),
    [](const ::testing::TestParamInfo<Variant>& info) {
      return variant_name(info.param);
    });

// Replaying a seed must reproduce the identical schedule, task for task.
TEST(PipelineScheduleReplay, SameSeedIdenticalTrace) {
  auto run = [](std::uint64_t seed) {
    DualSpace space = make_space(McdramMode::Flat);
    const std::size_t n = 4 * 64 * 1024 / sizeof(std::int64_t);
    std::vector<std::int64_t> data(n, 1);
    DeterministicScheduler sched(seed);
    PipelineValidator validator;
    PipelineConfig cfg =
        sched_config(Buffering::Triple, sched, validator);
    run_chunk_pipeline_typed<std::int64_t>(
        space, std::span<std::int64_t>(data), cfg,
        [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
          for (auto& x : chunk) x *= 2;
        });
    return sched.trace();
  };
  for (std::uint64_t seed : {0ULL, 1ULL, 99ULL, 0xdeadbeefULL}) {
    const auto first = run(seed);
    const auto second = run(seed);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first, second) << "seed=" << seed;
  }
  // Distinct seeds explore distinct interleavings of the same task set.
  EXPECT_NE(run(0), run(1));
}

// The deliberately-injected ordering bug: the step barrier "forgets" to
// join copy-out futures, so a buffer is reused while its copy-out is
// still (logically) in flight.  The validator must catch this under
// every seed, for every buffering depth.
TEST(PipelineFaults, SkippedCopyOutWaitIsCaughtUnderEverySchedule) {
  for (Buffering buffering :
       {Buffering::Single, Buffering::Double, Buffering::Triple}) {
    for (std::uint64_t seed = 0; seed < kSeedsPerVariant; ++seed) {
      DualSpace space = make_space(McdramMode::Flat);
      const std::size_t n = 6 * 64 * 1024 / sizeof(std::int64_t);
      std::vector<std::int64_t> data(n, 1);
      DeterministicScheduler sched(seed);
      PipelineValidator validator;
      PipelineConfig cfg = sched_config(buffering, sched, validator);
      fault::FaultPlan plan;
      plan.arm(fault::sites::kPipelineSkipCopyOutWait,
               fault::FaultTrigger::always());
      fault::ScopedFaultInjector inject(plan);
      EXPECT_THROW(
          run_chunk_pipeline_typed<std::int64_t>(
              space, std::span<std::int64_t>(data), cfg,
              [](std::span<std::int64_t>, Executor&, std::size_t) {}),
          PipelineInvariantError)
          << to_string(buffering) << " seed=" << seed;
    }
  }
}

// Same bug, but without enough chunks to force buffer reuse: the leak is
// still caught at end_run (buffer owned when the run finished).
TEST(PipelineFaults, SkippedCopyOutWaitCaughtAtEndOfRunWithoutReuse) {
  DualSpace space = make_space(McdramMode::Flat);
  const std::size_t n = 2 * 64 * 1024 / sizeof(std::int64_t);  // 2 chunks
  std::vector<std::int64_t> data(n, 1);
  DeterministicScheduler sched(0);
  PipelineValidator validator;
  PipelineConfig cfg = sched_config(Buffering::Triple, sched, validator);
  fault::FaultPlan plan;
  plan.arm(fault::sites::kPipelineSkipCopyOutWait,
           fault::FaultTrigger::always());
  fault::ScopedFaultInjector inject(plan);
  EXPECT_THROW(
      run_chunk_pipeline_typed<std::int64_t>(
          space, std::span<std::int64_t>(data), cfg,
          [](std::span<std::int64_t>, Executor&, std::size_t) {}),
      PipelineInvariantError);
}

// A compute exception under a deterministic schedule must propagate
// without executing stale tasks against freed buffers (the executors
// drop their pending tasks on teardown).
TEST(PipelineSchedules, ComputeExceptionPropagatesUnderSchedules) {
  for (std::uint64_t seed = 0; seed < kSeedsPerVariant; ++seed) {
    DualSpace space = make_space(McdramMode::Flat);
    const std::size_t n = 5 * 64 * 1024 / sizeof(std::int64_t);
    std::vector<std::int64_t> data(n, 1);
    DeterministicScheduler sched(seed);
    PipelineConfig cfg;
    cfg.chunk_bytes = 64 * 1024;
    cfg.pools = PoolSizes{2, 2, 2};
    cfg.scheduler = &sched;
    EXPECT_THROW(run_chunk_pipeline_typed<std::int64_t>(
                     space, std::span<std::int64_t>(data), cfg,
                     [](std::span<std::int64_t>, Executor&,
                        std::size_t idx) {
                       if (idx == 2) throw Error("injected compute fault");
                     }),
                 Error)
        << "seed=" << seed;
  }
}

// Double chunking: the whole two-level pipeline — outer NVM->DDR copies,
// inner DDR->MCDRAM copies, innermost compute — interleaves under one
// seeded schedule, with a validator per level.
TEST(TieredPipelineSchedules, DoubleChunkingHoldsUnderManySchedules) {
  const std::size_t n = MiB(2) / sizeof(std::int64_t);
  for (std::uint64_t seed = 0; seed < kSeedsPerVariant; ++seed) {
    HierarchyConfig hc;
    hc.mode = McdramMode::Flat;
    hc.tiers = {
        TierConfig{"nvm", MemKind::NVM, 0, 0.0, 0.0, 0.0},
        TierConfig{"ddr", MemKind::DDR, MiB(2), 0.0, 0.0, 0.0},
        TierConfig{"mcdram", MemKind::MCDRAM, KiB(512), 0.0, 0.0, 0.0},
    };
    MemoryHierarchy hier(hc);
    std::vector<std::int64_t> data(n);
    std::iota(data.begin(), data.end(), 0);

    DeterministicScheduler sched(seed);
    PipelineValidator outer_validator;
    PipelineValidator inner_validator;
    TieredPipelineConfig cfg;
    cfg.scheduler = &sched;
    cfg.levels.resize(2);
    cfg.levels[0].chunk_bytes = KiB(512);
    cfg.levels[0].pools = PoolSizes{1, 1, 1};
    cfg.levels[0].validator = &outer_validator;
    cfg.levels[1].chunk_bytes = KiB(128);
    cfg.levels[1].pools = PoolSizes{1, 1, 2};
    cfg.levels[1].validator = &inner_validator;

    const TieredPipelineStats stats =
        run_tiered_pipeline_typed<std::int64_t>(
            hier, std::span<std::int64_t>(data), cfg,
            [](std::span<std::int64_t> chunk, Executor&, std::size_t) {
              for (auto& x : chunk) x += 1;
            });

    ASSERT_EQ(stats.levels.size(), 2u);
    ASSERT_EQ(outer_validator.runs_completed(), 1u) << "seed=" << seed;
    // The inner pipeline runs once per outer chunk.
    ASSERT_EQ(inner_validator.runs_completed(),
              stats.levels[0].chunks)
        << "seed=" << seed;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 1)
          << "seed=" << seed << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace mlm::core

// AdmissionController: arbitration of a shared near-tier budget —
// admit / queue / degrade decisions, exact commit/release accounting,
// and the service.admission.admit fault site.
#include "mlm/service/admission.h"

#include <gtest/gtest.h>

#include "mlm/fault/fault.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::service {
namespace {

TEST(AdmissionController, AdmitsWithinCapacityAndCommits) {
  AdmissionController ac(KiB(256));
  const auto v = ac.decide(KiB(100));
  EXPECT_EQ(v.decision, AdmissionDecision::Admitted);
  EXPECT_EQ(v.granted_bytes, KiB(100));
  EXPECT_EQ(ac.committed(), KiB(100));
  EXPECT_EQ(ac.free_bytes(), KiB(156));
  EXPECT_EQ(ac.admitted_count(), 1u);
}

TEST(AdmissionController, QueuesWhenBudgetExhausted) {
  AdmissionController ac(KiB(256));
  EXPECT_EQ(ac.decide(KiB(200)).decision, AdmissionDecision::Admitted);
  const auto v = ac.decide(KiB(100));
  EXPECT_EQ(v.decision, AdmissionDecision::Queued);
  EXPECT_EQ(v.granted_bytes, 0u);
  EXPECT_EQ(ac.committed(), KiB(200));
  EXPECT_EQ(ac.queued_count(), 1u);
}

TEST(AdmissionController, ReleaseMakesRoomAgain) {
  AdmissionController ac(KiB(256));
  const auto first = ac.decide(KiB(200));
  EXPECT_EQ(ac.decide(KiB(100)).decision, AdmissionDecision::Queued);
  ac.release(first.granted_bytes);
  EXPECT_EQ(ac.committed(), 0u);
  EXPECT_EQ(ac.decide(KiB(100)).decision, AdmissionDecision::Admitted);
}

TEST(AdmissionController, PeakTracksHighWaterMark) {
  AdmissionController ac(KiB(256));
  ac.decide(KiB(100));
  ac.decide(KiB(100));
  ac.release(KiB(100));
  ac.decide(KiB(50));
  EXPECT_EQ(ac.committed(), KiB(150));
  EXPECT_EQ(ac.peak_committed(), KiB(200));
  EXPECT_LE(ac.peak_committed(), ac.capacity());
}

TEST(AdmissionController, DegradesRequestLargerThanTheArena) {
  AdmissionController ac(KiB(256), /*allow_degrade=*/true,
                         /*degraded_budget_bytes=*/64);
  const auto v = ac.decide(KiB(512));
  EXPECT_EQ(v.decision, AdmissionDecision::Degraded);
  EXPECT_EQ(v.granted_bytes, 64u);  // token commit, accounted like any
  EXPECT_EQ(ac.committed(), 64u);
  EXPECT_EQ(ac.degraded_count(), 1u);
}

TEST(AdmissionController, QueuesImpossibleRequestWithoutDegrade) {
  AdmissionController ac(KiB(256), /*allow_degrade=*/false);
  EXPECT_FALSE(ac.can_ever_fit(KiB(512)));
  EXPECT_EQ(ac.decide(KiB(512)).decision, AdmissionDecision::Queued);
  EXPECT_EQ(ac.committed(), 0u);
}

TEST(AdmissionController, ZeroRequestGetsTokenBudget) {
  AdmissionController ac(KiB(256), false, 64);
  const auto v = ac.decide(0);
  EXPECT_EQ(v.decision, AdmissionDecision::Admitted);
  EXPECT_EQ(v.granted_bytes, 64u);
  EXPECT_EQ(ac.committed(), 64u);
}

TEST(AdmissionController, TokenMustFitTheFreeBudget) {
  // A zero grant would mean "share the whole tier" in the tenant view,
  // so token admissions wait like everyone else when the arena is full.
  AdmissionController ac(KiB(1), true, 64);
  EXPECT_EQ(ac.decide(KiB(1)).decision, AdmissionDecision::Admitted);
  EXPECT_EQ(ac.decide(0).decision, AdmissionDecision::Queued);
  EXPECT_EQ(ac.decide(KiB(2)).decision, AdmissionDecision::Queued);
  ac.release(KiB(1));
  EXPECT_EQ(ac.decide(0).decision, AdmissionDecision::Admitted);
}

TEST(AdmissionController, UnlimitedArenaHasNothingToArbitrate) {
  AdmissionController ac(0);
  const auto v = ac.decide(MiB(100));
  EXPECT_EQ(v.decision, AdmissionDecision::Admitted);
  EXPECT_EQ(v.granted_bytes, 0u);
  EXPECT_EQ(ac.committed(), 0u);
}

TEST(AdmissionController, OverReleaseThrows) {
  AdmissionController ac(KiB(256));
  ac.decide(KiB(10));
  EXPECT_THROW(ac.release(KiB(20)), Error);
}

TEST(AdmissionController, FaultSiteDeniesTheRoundWithoutCommitting) {
  AdmissionController ac(KiB(256));
  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceAdmit,
           fault::FaultTrigger::after_n(0, /*max_fires=*/2));
  fault::ScopedFaultInjector inject(plan);
  EXPECT_EQ(ac.decide(KiB(10)).decision, AdmissionDecision::Queued);
  EXPECT_EQ(ac.decide(KiB(10)).decision, AdmissionDecision::Queued);
  EXPECT_EQ(ac.committed(), 0u);
  // Transient exhaustion clears: the third round admits.
  EXPECT_EQ(ac.decide(KiB(10)).decision, AdmissionDecision::Admitted);
  EXPECT_EQ(plan.stats(fault::sites::kServiceAdmit).fires, 2u);
}

}  // namespace
}  // namespace mlm::service

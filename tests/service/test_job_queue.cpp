// JobQueue: priority ordering with FIFO fairness within a priority.
#include "mlm/service/job_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "mlm/support/proptest.h"

namespace mlm::service {
namespace {

TEST(JobQueue, FifoWithinEqualPriority) {
  JobQueue q;
  q.push(10, 0);
  q.push(11, 0);
  q.push(12, 0);
  EXPECT_EQ(q.pop(), 10u);
  EXPECT_EQ(q.pop(), 11u);
  EXPECT_EQ(q.pop(), 12u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, HigherPriorityPopsFirst) {
  JobQueue q;
  q.push(1, 0);
  q.push(2, 5);
  q.push(3, -1);
  q.push(4, 5);
  EXPECT_EQ(q.pop(), 2u);  // priority 5, earlier than 4
  EXPECT_EQ(q.pop(), 4u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
}

TEST(JobQueue, PeekDoesNotRemove) {
  JobQueue q;
  q.push(7, 1);
  q.push(8, 2);
  EXPECT_EQ(q.peek(), 8u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 8u);
  EXPECT_EQ(q.peek(), 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(JobQueue, EmptyPeekAndPop) {
  JobQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.peek().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, EraseRemovesById) {
  JobQueue q;
  q.push(1, 0);
  q.push(2, 0);
  q.push(3, 0);
  EXPECT_TRUE(q.erase(2));
  EXPECT_FALSE(q.erase(2));
  EXPECT_FALSE(q.erase(99));
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
}

TEST(JobQueue, RepushedEntryGoesBehindItsPriorityPeers) {
  // A denied-and-repushed job loses its place; the scheduler therefore
  // peeks instead (see JobQueue::peek) — this pins why.
  JobQueue q;
  q.push(1, 0);
  q.push(2, 0);
  const auto head = q.pop();
  ASSERT_EQ(head, 1u);
  q.push(*head, 0);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 1u);
}

// ---------------------------------------------------------------------------
// Property harness: seeded random submit / peek / pop / erase
// interleavings checked against a reference model — a plain vector of
// (id, priority, arrival-seq) where the best entry is max priority
// then min seq.  Pins the fairness contract (priority order, FIFO
// within a priority, peek-don't-pop retention) over thousands of
// schedules instead of the handful of examples above.

struct RefEntry {
  std::uint64_t id;
  int priority;
  std::uint64_t seq;
};

/// The entry pop() must return: max priority, earliest arrival.
std::optional<std::size_t> ref_best(const std::vector<RefEntry>& v) {
  if (v.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].priority > v[best].priority ||
        (v[i].priority == v[best].priority && v[i].seq < v[best].seq)) {
      best = i;
    }
  }
  return best;
}

TEST(JobQueueProperties, RandomInterleavingsMatchReferenceModel) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Gen g(seed);
    JobQueue q;
    std::vector<RefEntry> model;
    std::uint64_t next_id = 1;
    std::uint64_t next_seq = 0;
    const std::size_t ops = g.size_in(50, 200);
    for (std::size_t op = 0; op < ops; ++op) {
      // peek must always agree with the model's best before any
      // mutation (and never change the size).
      const std::size_t size_before = q.size();
      const auto best = ref_best(model);
      if (best) {
        ASSERT_EQ(q.peek(), model[*best].id)
            << "seed " << seed << " op " << op;
      } else {
        ASSERT_FALSE(q.peek().has_value());
      }
      ASSERT_EQ(q.size(), size_before) << "peek must not remove";

      switch (g.below(4)) {
        case 0:
        case 1: {  // push (weighted: queues mostly grow)
          const int prio = int(g.int_in(-2, 2));
          q.push(next_id, prio);
          model.push_back({next_id, prio, next_seq++});
          ++next_id;
          break;
        }
        case 2: {  // pop
          const auto got = q.pop();
          if (best) {
            ASSERT_EQ(got, model[*best].id)
                << "seed " << seed << " op " << op;
            model.erase(model.begin() + std::ptrdiff_t(*best));
          } else {
            ASSERT_FALSE(got.has_value());
          }
          break;
        }
        case 3: {  // erase a random known id (may already be gone)
          const std::uint64_t victim = g.u64() % next_id;
          const auto it = std::find_if(
              model.begin(), model.end(),
              [victim](const RefEntry& e) { return e.id == victim; });
          ASSERT_EQ(q.erase(victim), it != model.end())
              << "seed " << seed << " op " << op;
          if (it != model.end()) model.erase(it);
          break;
        }
      }
      ASSERT_EQ(q.size(), model.size());
      ASSERT_EQ(q.empty(), model.empty());
    }
    // Drain: the remaining entries come out in exact model order —
    // priority descending, FIFO within each priority.
    while (auto best = ref_best(model)) {
      EXPECT_EQ(q.pop(), model[*best].id) << "seed " << seed;
      model.erase(model.begin() + std::ptrdiff_t(*best));
    }
    EXPECT_FALSE(q.pop().has_value());
  }
}

TEST(JobQueueProperties, DrainOrderIsAStableSortByPriority) {
  // Submitting a whole batch and draining is exactly a stable sort by
  // descending priority — arrival order is the tiebreak, never lost.
  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    Gen g(seed);
    JobQueue q;
    const std::size_t n = g.size_in(1, 64);
    std::vector<RefEntry> pushed;
    for (std::size_t i = 0; i < n; ++i) {
      const int prio = int(g.int_in(-3, 3));
      q.push(i + 1, prio);
      pushed.push_back({i + 1, prio, i});
    }
    std::stable_sort(pushed.begin(), pushed.end(),
                     [](const RefEntry& a, const RefEntry& b) {
                       return a.priority > b.priority;
                     });
    for (const RefEntry& e : pushed) {
      ASSERT_EQ(q.peek(), e.id) << "seed " << seed;
      ASSERT_EQ(q.pop(), e.id) << "seed " << seed;
    }
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace mlm::service

// JobQueue: priority ordering with FIFO fairness within a priority.
#include "mlm/service/job_queue.h"

#include <gtest/gtest.h>

namespace mlm::service {
namespace {

TEST(JobQueue, FifoWithinEqualPriority) {
  JobQueue q;
  q.push(10, 0);
  q.push(11, 0);
  q.push(12, 0);
  EXPECT_EQ(q.pop(), 10u);
  EXPECT_EQ(q.pop(), 11u);
  EXPECT_EQ(q.pop(), 12u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, HigherPriorityPopsFirst) {
  JobQueue q;
  q.push(1, 0);
  q.push(2, 5);
  q.push(3, -1);
  q.push(4, 5);
  EXPECT_EQ(q.pop(), 2u);  // priority 5, earlier than 4
  EXPECT_EQ(q.pop(), 4u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
}

TEST(JobQueue, PeekDoesNotRemove) {
  JobQueue q;
  q.push(7, 1);
  q.push(8, 2);
  EXPECT_EQ(q.peek(), 8u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 8u);
  EXPECT_EQ(q.peek(), 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(JobQueue, EmptyPeekAndPop) {
  JobQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.peek().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, EraseRemovesById) {
  JobQueue q;
  q.push(1, 0);
  q.push(2, 0);
  q.push(3, 0);
  EXPECT_TRUE(q.erase(2));
  EXPECT_FALSE(q.erase(2));
  EXPECT_FALSE(q.erase(99));
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
}

TEST(JobQueue, RepushedEntryGoesBehindItsPriorityPeers) {
  // A denied-and-repushed job loses its place; the scheduler therefore
  // peeks instead (see JobQueue::peek) — this pins why.
  JobQueue q;
  q.push(1, 0);
  q.push(2, 0);
  const auto head = q.pop();
  ASSERT_EQ(head, 1u);
  q.push(*head, 0);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 1u);
}

}  // namespace
}  // namespace mlm::service

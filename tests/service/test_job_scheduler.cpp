// JobScheduler lifecycle: admission, priority/FIFO order, budget
// contention, cancellation, deadlines, fault sites, and real sort jobs
// on both driver kinds (ThreadPool and DeterministicExecutor).
#include "mlm/service/job_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mlm/fault/fault.h"
#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/units.h"

namespace mlm::service {
namespace {

HierarchyConfig three_tier(std::uint64_t mcdram = KiB(512),
                           std::uint64_t ddr = MiB(2)) {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
               TierConfig{"ddr", MemKind::DDR, ddr},
               TierConfig{"mcdram", MemKind::MCDRAM, mcdram}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

// A job that counts its own steps; optionally records its first step
// into a shared order log (single-threaded under deterministic
// drivers, so a plain vector is safe there).
class CountingJob : public JobStepper {
 public:
  CountingJob(std::size_t steps, bool degraded,
              std::vector<std::uint64_t>* order = nullptr,
              std::uint64_t id = 0)
      : remaining_(steps), degraded_(degraded), order_(order), id_(id) {}

  bool step() override {
    if (order_ != nullptr && !logged_) {
      order_->push_back(id_);
      logged_ = true;
    }
    MLM_CHECK_MSG(remaining_ > 0, "stepped past the end");
    --remaining_;
    return remaining_ > 0;
  }
  void finish() override { finished_ = true; }

  bool degraded() const { return degraded_; }

 private:
  std::size_t remaining_;
  bool degraded_;
  std::vector<std::uint64_t>* order_;
  std::uint64_t id_;
  bool logged_ = false;
  bool finished_ = false;
};

JobFactory counting_factory(std::size_t steps,
                            std::vector<std::uint64_t>* order = nullptr,
                            std::uint64_t id = 0,
                            bool* degraded_seen = nullptr) {
  return [=](JobContext& ctx) -> std::unique_ptr<JobStepper> {
    if (degraded_seen != nullptr) *degraded_seen = ctx.degraded;
    return std::make_unique<CountingJob>(steps, ctx.degraded, order, id);
  };
}

TEST(JobScheduler, CompletesASimpleJob) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(1);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  JobConfig jc;
  jc.name = "simple";
  jc.near_budget_bytes = KiB(16);
  const auto id = svc.submit(jc, counting_factory(3));
  const ServiceStats m = svc.run_all();

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Completed);
  EXPECT_EQ(st.admission, AdmissionDecision::Admitted);
  EXPECT_EQ(st.granted_near_bytes, KiB(16));
  EXPECT_EQ(st.steps, 3u);
  EXPECT_GE(st.admit_tick, st.submit_tick);
  EXPECT_GE(st.finish_tick, st.admit_tick);
  EXPECT_EQ(m.jobs_completed, 1u);
  EXPECT_EQ(m.total_steps, 3u);
  EXPECT_EQ(svc.admission().committed(), 0u);  // released on completion
}

TEST(JobScheduler, RunsByPriorityThenFifo) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(2);
  DeterministicExecutor driver(sched, 1, "driver");
  JobSchedulerConfig cfg;
  cfg.max_concurrent = 1;  // serialize so admission order is run order
  JobScheduler svc(hier, driver, cfg);

  std::vector<std::uint64_t> order;
  JobConfig low;
  low.near_budget_bytes = KiB(1);
  JobConfig high = low;
  high.priority = 5;
  const auto a = svc.submit(low, counting_factory(2, &order, 1));
  const auto b = svc.submit(high, counting_factory(2, &order, 2));
  const auto c = svc.submit(low, counting_factory(2, &order, 3));
  svc.run_all();

  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 1, 3}));
  EXPECT_EQ(svc.state(a), JobState::Completed);
  EXPECT_EQ(svc.state(b), JobState::Completed);
  EXPECT_EQ(svc.state(c), JobState::Completed);
}

TEST(JobScheduler, BudgetContentionQueuesSecondTenant) {
  MemoryHierarchy hier(three_tier(KiB(256)));
  DeterministicScheduler sched(3);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  JobConfig big;
  big.near_budget_bytes = KiB(160);  // two cannot coexist in 256 KiB
  const auto a = svc.submit(big, counting_factory(4));
  const auto b = svc.submit(big, counting_factory(4));
  const ServiceStats m = svc.run_all();

  const SortStats sa = svc.job_stats(a);
  const SortStats sb = svc.job_stats(b);
  EXPECT_EQ(sa.state, JobState::Completed);
  EXPECT_EQ(sb.state, JobState::Completed);
  EXPECT_GE(sb.queue_rounds, 1u);  // waited for a's release
  EXPECT_GE(sb.admit_tick, sa.finish_tick);
  EXPECT_LE(m.peak_near_committed_bytes, m.near_capacity_bytes);
  EXPECT_EQ(m.queue_rounds, sa.queue_rounds + sb.queue_rounds);
}

TEST(JobScheduler, ImpossibleRequestFailsFastWithoutDegrade) {
  MemoryHierarchy hier(three_tier(KiB(256)));
  DeterministicScheduler sched(4);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  JobConfig jc;
  jc.name = "whale";
  jc.near_budget_bytes = MiB(1);
  const auto id = svc.submit(jc, counting_factory(1));
  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Failed);  // terminal before run_all
  ASSERT_TRUE(st.error.has_value());
  ASSERT_FALSE(st.error->chain().empty());
  EXPECT_EQ(st.error->chain().front().op, "admit");
  EXPECT_EQ(st.error->chain().front().tier, "mcdram");

  const ServiceStats m = svc.run_all();  // drains trivially
  EXPECT_EQ(m.jobs_failed, 1u);
}

TEST(JobScheduler, ImpossibleRequestDegradesWhenAllowed) {
  MemoryHierarchy hier(three_tier(KiB(256)));
  DeterministicScheduler sched(5);
  DeterministicExecutor driver(sched, 2, "driver");
  JobSchedulerConfig cfg;
  cfg.degrade.allow_tier_fallback = true;
  JobScheduler svc(hier, driver, cfg);

  JobConfig jc;
  jc.near_budget_bytes = MiB(1);
  bool degraded_seen = false;
  const auto id =
      svc.submit(jc, counting_factory(2, nullptr, 0, &degraded_seen));
  const ServiceStats m = svc.run_all();

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Completed);
  EXPECT_EQ(st.admission, AdmissionDecision::Degraded);
  EXPECT_EQ(st.granted_near_bytes, cfg.degraded_budget_bytes);
  EXPECT_TRUE(degraded_seen);
  EXPECT_EQ(m.jobs_degraded, 1u);
}

TEST(JobScheduler, ZeroRequestRunsDegradedWithTokenBudget) {
  MemoryHierarchy hier(three_tier(KiB(256)));
  DeterministicScheduler sched(6);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  bool degraded_seen = false;
  const auto id = svc.submit(
      JobConfig{}, counting_factory(1, nullptr, 0, &degraded_seen));
  svc.run_all();
  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Completed);
  EXPECT_EQ(st.admission, AdmissionDecision::Admitted);
  EXPECT_EQ(st.granted_near_bytes, 64u);
  EXPECT_TRUE(degraded_seen);
}

TEST(JobScheduler, CancelsQueuedJobImmediately) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(7);
  DeterministicExecutor driver(sched, 2, "driver");
  JobSchedulerConfig cfg;
  cfg.max_concurrent = 1;
  JobScheduler svc(hier, driver, cfg);

  JobConfig jc;
  jc.near_budget_bytes = KiB(1);
  const auto a = svc.submit(jc, counting_factory(2));
  const auto b = svc.submit(jc, counting_factory(2));
  svc.cancel(b);
  EXPECT_EQ(svc.state(b), JobState::Cancelled);
  const SortStats st = svc.job_stats(b);
  ASSERT_TRUE(st.error.has_value());
  EXPECT_EQ(st.error->chain().front().op, "cancel");
  EXPECT_EQ(st.steps, 0u);

  svc.run_all();
  EXPECT_EQ(svc.state(a), JobState::Completed);
}

// A job whose only purpose is to cancel another tenant mid-run.
class CancellerJob : public JobStepper {
 public:
  CancellerJob(JobScheduler& svc, std::uint64_t victim)
      : svc_(svc), victim_(victim) {}
  bool step() override {
    svc_.cancel(victim_);
    return false;
  }
  void finish() override {}

 private:
  JobScheduler& svc_;
  std::uint64_t victim_;
};

TEST(JobScheduler, CancelsRunningJobAtAStepBoundary) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(8);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  JobConfig jc;
  jc.near_budget_bytes = KiB(1);
  const auto victim = svc.submit(jc, counting_factory(1000));
  JobConfig killer = jc;
  killer.priority = 1;
  svc.submit(killer, [&svc, victim](JobContext&) {
    return std::unique_ptr<JobStepper>(
        std::make_unique<CancellerJob>(svc, victim));
  });
  svc.run_all();

  const SortStats st = svc.job_stats(victim);
  EXPECT_EQ(st.state, JobState::Cancelled);
  EXPECT_TRUE(st.cancel_requested);
  EXPECT_LT(st.steps, 1000u);  // stopped well before completion
  ASSERT_TRUE(st.error.has_value());
  EXPECT_EQ(st.error->chain().front().op, "cancel");
  EXPECT_EQ(svc.admission().committed(), 0u);
}

TEST(JobScheduler, StepDeadlineFailsTheJob) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(9);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  JobConfig jc;
  jc.name = "slow";
  jc.near_budget_bytes = KiB(1);
  jc.deadline_steps = 3;
  const auto id = svc.submit(jc, counting_factory(100));
  const ServiceStats m = svc.run_all();

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Failed);
  EXPECT_EQ(st.steps, 3u);
  ASSERT_TRUE(st.error.has_value());
  EXPECT_EQ(st.error->chain().front().op, "deadline");
  EXPECT_NE(std::string(st.error->what()).find("deadline"),
            std::string::npos);
  EXPECT_EQ(m.jobs_failed, 1u);
}

TEST(JobScheduler, StepFaultSiteProducesStructuredJobError) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(10);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceJobStep, fault::FaultTrigger::nth_call(2));
  fault::ScopedFaultInjector inject(plan);

  JobConfig jc;
  jc.name = "faulty";
  jc.near_budget_bytes = KiB(1);
  const auto id = svc.submit(jc, counting_factory(10));
  svc.run_all();

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Failed);
  EXPECT_EQ(st.steps, 2u);  // failed entering the third step
  ASSERT_TRUE(st.error.has_value());
  const std::string what = st.error->what();
  EXPECT_NE(what.find(fault::sites::kServiceJobStep), std::string::npos);
  ASSERT_FALSE(st.error->chain().empty());
  EXPECT_EQ(st.error->chain().front().op, "job_step");
  EXPECT_EQ(plan.stats(fault::sites::kServiceJobStep).fires, 1u);
  EXPECT_EQ(svc.admission().committed(), 0u);  // budget released
}

TEST(JobScheduler, AdmitFaultForcesAQueueRound) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(11);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceAdmit,
           fault::FaultTrigger::after_n(0, /*max_fires=*/3));
  fault::ScopedFaultInjector inject(plan);

  JobConfig jc;
  jc.near_budget_bytes = KiB(1);
  const auto id = svc.submit(jc, counting_factory(2));
  svc.run_all();

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Completed);
  EXPECT_GE(st.queue_rounds, 3u);
  EXPECT_EQ(plan.stats(fault::sites::kServiceAdmit).fires, 3u);
}

TEST(JobScheduler, PermanentAdmitFaultStarvesTheQueue) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(12);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceAdmit, fault::FaultTrigger::always());
  fault::ScopedFaultInjector inject(plan);

  JobConfig jc;
  jc.name = "starved";
  jc.near_budget_bytes = KiB(1);
  const auto id = svc.submit(jc, counting_factory(1));
  const ServiceStats m = svc.run_all();  // must terminate regardless

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Failed);
  ASSERT_TRUE(st.error.has_value());
  EXPECT_NE(std::string(st.error->what()).find("starved"),
            std::string::npos);
  EXPECT_EQ(m.jobs_failed, 1u);
}

TEST(JobScheduler, DelayedCancelDeliveryViaFaultSite) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(13);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  fault::FaultPlan plan;
  plan.arm(fault::sites::kServiceJobCancel,
           fault::FaultTrigger::nth_call(0));
  fault::ScopedFaultInjector inject(plan);

  JobConfig jc;
  jc.near_budget_bytes = KiB(1);
  const auto victim = svc.submit(jc, counting_factory(1000));
  svc.submit(jc, [&svc, victim](JobContext&) {
    return std::unique_ptr<JobStepper>(
        std::make_unique<CancellerJob>(svc, victim));
  });
  svc.run_all();

  EXPECT_EQ(svc.state(victim), JobState::Cancelled);
  // The first delivery attempt was swallowed by the site; the cancel
  // landed exactly one step later.
  EXPECT_EQ(plan.stats(fault::sites::kServiceJobCancel).fires, 1u);
}

TEST(JobScheduler, FactoryFailureFailsTheJobWithSetupFrame) {
  MemoryHierarchy hier(three_tier());
  DeterministicScheduler sched(14);
  DeterministicExecutor driver(sched, 2, "driver");
  JobScheduler svc(hier, driver);

  JobConfig jc;
  jc.name = "stillborn";
  jc.near_budget_bytes = KiB(1);
  const auto id = svc.submit(jc, [](JobContext&) -> std::unique_ptr<JobStepper> {
    throw Error("no stepper for you");
  });
  const ServiceStats m = svc.run_all();

  const SortStats st = svc.job_stats(id);
  EXPECT_EQ(st.state, JobState::Failed);
  ASSERT_TRUE(st.error.has_value());
  EXPECT_EQ(st.error->chain().front().op, "job_setup");
  EXPECT_EQ(m.jobs_failed, 1u);
  EXPECT_EQ(svc.admission().committed(), 0u);
}

TEST(JobScheduler, UnknownJobIdThrows) {
  MemoryHierarchy hier(three_tier());
  ThreadPool driver(2, "driver");
  JobScheduler svc(hier, driver);
  EXPECT_THROW(svc.state(42), InvalidArgumentError);
  EXPECT_THROW(svc.job_stats(42), InvalidArgumentError);
  EXPECT_THROW(svc.cancel(42), InvalidArgumentError);
}

TEST(JobScheduler, RejectsZeroConcurrency) {
  MemoryHierarchy hier(three_tier());
  ThreadPool driver(2, "driver");
  JobSchedulerConfig cfg;
  cfg.max_concurrent = 0;
  EXPECT_THROW((JobScheduler{hier, driver, cfg}), InvalidArgumentError);
}

TEST(JobScheduler, ThreadPoolDriverRunsManyTenants) {
  MemoryHierarchy hier(three_tier(KiB(256)));
  ThreadPool driver(4, "driver");
  JobSchedulerConfig cfg;
  cfg.max_concurrent = 3;
  JobScheduler svc(hier, driver, cfg);

  JobConfig jc;
  jc.near_budget_bytes = KiB(100);  // three tenants over-subscribe
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    jc.name = "tenant" + std::to_string(i);
    ids.push_back(svc.submit(jc, counting_factory(8)));
  }
  const ServiceStats m = svc.run_all();

  EXPECT_EQ(m.jobs_completed, 5u);
  EXPECT_EQ(m.total_steps, 40u);
  EXPECT_LE(m.peak_near_committed_bytes, m.near_capacity_bytes);
  EXPECT_EQ(svc.admission().committed(), 0u);
  for (const auto id : ids) {
    EXPECT_EQ(svc.state(id), JobState::Completed);
  }
}

// The acceptance scenario: two concurrent sort jobs whose combined
// working sets exceed the near tier both complete with output identical
// to the single-job path, and the admission decisions are visible in
// their stats.
TEST(JobScheduler, ConcurrentSortJobsMatchTheSingleJobPath) {
  using sort::InputOrder;
  using sort::make_input;

  const std::size_t n0 = 6000, n1 = 5000;
  const auto init0 = make_input(n0, InputOrder::Random, 101);
  const auto init1 = make_input(n1, InputOrder::FewDistinct, 202);

  // Single-job reference on a private hierarchy.
  std::vector<std::int64_t> expect0 = init0;
  std::vector<std::int64_t> expect1 = init1;
  {
    MemoryHierarchy ref_hier(three_tier(KiB(256)));
    ThreadPool pool(2, "ref");
    core::ExternalSortConfig cfg;
    cfg.outer_chunk_elements = 2048;
    cfg.inner.variant = core::MlmVariant::Flat;
    core::ExternalMlmSorter<std::int64_t> sorter(ref_hier, pool, cfg);
    sorter.sort(std::span<std::int64_t>(expect0));
    sorter.sort(std::span<std::int64_t>(expect1));
  }

  MemoryHierarchy hier(three_tier(KiB(256)));
  SpaceBuffer<std::int64_t> data0(hier.tier(0), n0);
  SpaceBuffer<std::int64_t> data1(hier.tier(0), n1);
  std::copy(init0.begin(), init0.end(), data0.data());
  std::copy(init1.begin(), init1.end(), data1.data());

  ThreadPool driver(4, "driver");
  JobScheduler svc(hier, driver);

  core::ExternalSortConfig scfg;
  scfg.outer_chunk_elements = 2048;
  scfg.inner.variant = core::MlmVariant::Flat;
  JobConfig jc;
  jc.name = "sortA";
  jc.near_budget_bytes = KiB(160);  // combined 320 KiB > 256 KiB arena
  const auto a = svc.submit(
      jc, make_sort_job(std::span<std::int64_t>(data0.data(), n0), scfg));
  jc.name = "sortB";
  const auto b = svc.submit(
      jc, make_sort_job(std::span<std::int64_t>(data1.data(), n1), scfg));
  const ServiceStats m = svc.run_all();

  const SortStats sa = svc.job_stats(a);
  const SortStats sb = svc.job_stats(b);
  ASSERT_EQ(sa.state, JobState::Completed)
      << (sa.error ? sa.error->what() : "");
  ASSERT_EQ(sb.state, JobState::Completed)
      << (sb.error ? sb.error->what() : "");
  EXPECT_TRUE(std::equal(expect0.begin(), expect0.end(), data0.data()));
  EXPECT_TRUE(std::equal(expect1.begin(), expect1.end(), data1.data()));

  // Admission decisions are visible per job: one of the two waited.
  EXPECT_EQ(sa.admission, AdmissionDecision::Admitted);
  EXPECT_EQ(sb.admission, AdmissionDecision::Admitted);
  EXPECT_GE(sb.queue_rounds, 1u);
  EXPECT_LE(m.peak_near_committed_bytes, m.near_capacity_bytes);
  ASSERT_TRUE(sa.sort.has_value());
  EXPECT_GE(sa.sort->outer_chunks, 2u);

  // All tenant arenas drained back to the parent.
  EXPECT_EQ(hier.tier(1).stats().used_bytes, 0u);
  EXPECT_EQ(hier.tier(2).stats().used_bytes, 0u);
}

}  // namespace
}  // namespace mlm::service

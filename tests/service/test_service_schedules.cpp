// Deterministic multi-job schedule sweep (the service-layer acceptance
// harness): four concurrent sort tenants whose combined near-tier
// requests over-subscribe MCDRAM run under 100 seeded deterministic
// schedules.  Under every interleaving each job's output must match its
// single-job digest, the admission controller must never over-commit
// the arena, and the whole multi-job run must replay tick-for-tick from
// its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mlm/core/external_sort.h"
#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/service/job_scheduler.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/units.h"

namespace mlm::service {
namespace {

using sort::InputOrder;
using sort::make_input;

constexpr std::uint64_t kSeeds = 100;
constexpr std::size_t kJobs = 4;

struct Tenant {
  std::size_t n;
  InputOrder order;
  int priority;
  std::uint64_t near_budget;
};

// Arena: 256 KiB MCDRAM.  Tenants 0+1 fit only one at a time
// (160 KiB each), tenant 2 declares no near working set (token budget,
// DdrOnly execution), tenant 3 asks for more than the whole arena and
// must take the Degraded path.
constexpr std::array<Tenant, kJobs> kTenants = {{
    {2048, InputOrder::Random, 0, KiB(160)},
    {1536, InputOrder::Reverse, 1, KiB(160)},
    {1024, InputOrder::FewDistinct, 0, 0},
    {2560, InputOrder::NearlySorted, 0, KiB(512)},
}};

HierarchyConfig service_config() {
  HierarchyConfig cfg;
  cfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
               TierConfig{"ddr", MemKind::DDR, MiB(2)},
               TierConfig{"mcdram", MemKind::MCDRAM, KiB(256)}};
  cfg.mode = McdramMode::Flat;
  return cfg;
}

core::ExternalSortConfig sort_config() {
  core::ExternalSortConfig cfg;
  cfg.outer_chunk_elements = 512;  // several outer chunks per tenant
  cfg.inner.variant = core::MlmVariant::Flat;
  return cfg;
}

std::uint64_t fnv1a(std::span<const std::int64_t> data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::int64_t v : data) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t input_seed(std::size_t job) { return 1000 + 17 * job; }

/// Digest of tenant `job`'s data after the single-job (non-service)
/// sort path — the byte-identity reference.
std::uint64_t single_job_digest(std::size_t job) {
  const Tenant& t = kTenants[job];
  std::vector<std::int64_t> data =
      make_input(t.n, t.order, input_seed(job));
  MemoryHierarchy hier(service_config());
  ThreadPool pool(2, "single");
  core::ExternalSortConfig cfg = sort_config();
  if (t.near_budget == 0 || t.near_budget > KiB(256)) {
    // What the service runs for degraded/token tenants.
    cfg.inner.variant = core::MlmVariant::DdrOnly;
  }
  core::ExternalMlmSorter<std::int64_t> sorter(hier, pool, cfg);
  sorter.sort(std::span<std::int64_t>(data));
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  return fnv1a(data);
}

struct SweepRun {
  std::array<SortStats, kJobs> stats;
  std::array<std::uint64_t, kJobs> digests;
  ServiceStats metrics;
  std::string trace;
};

SweepRun run_service(std::uint64_t seed) {
  MemoryHierarchy hier(service_config());
  DeterministicScheduler sched(seed);
  DeterministicExecutor driver(sched, 2, "driver");
  JobSchedulerConfig cfg;
  cfg.max_concurrent = 2;
  cfg.job_workers = 2;
  cfg.degrade.allow_tier_fallback = true;
  JobScheduler svc(hier, driver, cfg);

  std::vector<SpaceBuffer<std::int64_t>> buffers;
  buffers.reserve(kJobs);
  std::array<std::uint64_t, kJobs> ids{};
  for (std::size_t j = 0; j < kJobs; ++j) {
    const Tenant& t = kTenants[j];
    buffers.emplace_back(hier.tier(0), t.n);
    const auto init = make_input(t.n, t.order, input_seed(j));
    std::copy(init.begin(), init.end(), buffers[j].data());
    JobConfig jc;
    jc.name = "job" + std::to_string(j);
    jc.priority = t.priority;
    jc.near_budget_bytes = t.near_budget;
    ids[j] = svc.submit(
        jc, make_sort_job(std::span<std::int64_t>(buffers[j].data(), t.n),
                          sort_config()));
  }

  SweepRun run;
  run.metrics = svc.run_all();
  for (std::size_t j = 0; j < kJobs; ++j) {
    run.stats[j] = svc.job_stats(ids[j]);
    run.digests[j] =
        fnv1a(std::span<const std::int64_t>(buffers[j].data(),
                                            kTenants[j].n));
  }
  run.trace = sched.format_trace();

  // Every tenant arena fully drained back to the parent.
  EXPECT_EQ(hier.tier(1).stats().used_bytes, 0u) << "seed " << seed;
  EXPECT_EQ(hier.tier(2).stats().used_bytes, 0u) << "seed " << seed;
  return run;
}

TEST(ServiceSchedules, HundredSeedFourTenantSweep) {
  std::array<std::uint64_t, kJobs> expected{};
  for (std::size_t j = 0; j < kJobs; ++j) expected[j] = single_job_digest(j);

  std::size_t runs_with_queueing = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const SweepRun run = run_service(seed);
    std::size_t queue_rounds = 0;
    for (std::size_t j = 0; j < kJobs; ++j) {
      const SortStats& st = run.stats[j];
      ASSERT_EQ(st.state, JobState::Completed)
          << "seed " << seed << " job " << j << ": "
          << (st.error ? st.error->what() : "no error");
      // Digest-verified output, byte-identical to the single-job path.
      EXPECT_EQ(run.digests[j], expected[j])
          << "seed " << seed << " job " << j;
      EXPECT_GE(st.admit_tick, st.submit_tick) << "seed " << seed;
      EXPECT_GE(st.finish_tick, st.admit_tick) << "seed " << seed;
      queue_rounds += st.queue_rounds;
    }
    // The arena was never over-committed, under any interleaving.
    EXPECT_LE(run.metrics.peak_near_committed_bytes,
              run.metrics.near_capacity_bytes)
        << "seed " << seed;
    EXPECT_GT(run.metrics.peak_near_committed_bytes, 0u) << "seed " << seed;
    // The over-subscribed arena forced the admission ladder: the whale
    // tenant degraded every time; 160+160 KiB contention queued someone.
    EXPECT_EQ(run.stats[3].admission, AdmissionDecision::Degraded)
        << "seed " << seed;
    EXPECT_EQ(run.metrics.jobs_degraded, 1u) << "seed " << seed;
    if (queue_rounds > 0) ++runs_with_queueing;
  }
  // Two 160 KiB tenants + max_concurrent=2 make queueing the common
  // case; it must show up across the sweep (decision visibility).
  EXPECT_GT(runs_with_queueing, kSeeds / 2);
}

TEST(ServiceSchedules, SameSeedReplaysTickForTick) {
  for (const std::uint64_t seed : {3ull, 41ull, 77ull}) {
    const SweepRun a = run_service(seed);
    const SweepRun b = run_service(seed);
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    for (std::size_t j = 0; j < kJobs; ++j) {
      EXPECT_EQ(a.stats[j].admit_tick, b.stats[j].admit_tick);
      EXPECT_EQ(a.stats[j].finish_tick, b.stats[j].finish_tick);
      EXPECT_EQ(a.stats[j].queue_rounds, b.stats[j].queue_rounds);
      EXPECT_EQ(a.stats[j].steps, b.stats[j].steps);
      EXPECT_EQ(a.digests[j], b.digests[j]);
    }
  }
}

TEST(ServiceSchedules, DifferentSeedsPermuteTheSchedule) {
  // Not a strict requirement of any single pair, but across a handful
  // of seeds at least two schedules must differ — otherwise the sweep
  // above explored nothing.
  std::vector<std::string> traces;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    traces.push_back(run_service(seed).trace);
  }
  bool any_difference = false;
  for (std::size_t i = 1; i < traces.size(); ++i) {
    if (traces[i] != traces[0]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace mlm::service

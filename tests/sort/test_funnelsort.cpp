#include "mlm/sort/funnelsort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"

namespace mlm::sort {
namespace {

using Case = std::tuple<std::size_t, InputOrder>;

class FunnelsortProperty : public ::testing::TestWithParam<Case> {};

TEST_P(FunnelsortProperty, MatchesStdSort) {
  const auto [n, order] = GetParam();
  auto v = make_input(n, order, n * 11 + 3);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto cs = checksum(v);
  funnelsort(std::span<std::int64_t>(v));
  EXPECT_EQ(v, expect);
  EXPECT_EQ(checksum(v), cs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunnelsortProperty,
    ::testing::Combine(
        // Around the base case (4096) and the k-funnel recursion sizes.
        ::testing::Values(0, 1, 2, 4095, 4096, 4097, 10000, 100000,
                          500000),
        ::testing::Values(InputOrder::Random, InputOrder::Reverse,
                          InputOrder::Sorted, InputOrder::FewDistinct)));

TEST(Funnelsort, DescendingComparator) {
  auto v = make_input(50000, InputOrder::Random, 5);
  funnelsort(std::span<std::int64_t>(v), std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST(Funnelsort, ScratchTooSmallRejected) {
  std::vector<std::int64_t> v(100), scratch(50);
  EXPECT_THROW(funnelsort(std::span<std::int64_t>(v),
                          std::span<std::int64_t>(scratch)),
               InvalidArgumentError);
}

TEST(FunnelMerge, MergesSortedRuns) {
  std::vector<std::int64_t> a{1, 4, 7}, b{2, 5, 8}, c{3, 6, 9};
  std::vector<std::pair<const std::int64_t*, const std::int64_t*>> runs{
      {a.data(), a.data() + a.size()},
      {b.data(), b.data() + b.size()},
      {c.data(), c.data() + c.size()}};
  std::vector<std::int64_t> out(9);
  funnel_merge(runs, std::span<std::int64_t>(out));
  EXPECT_EQ(out, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(FunnelMerge, HandlesEmptyAndSkewedRuns) {
  std::vector<std::int64_t> a, b{5}, c;
  for (int i = 0; i < 10000; ++i) c.push_back(i);
  std::vector<std::pair<const std::int64_t*, const std::int64_t*>> runs{
      {a.data(), a.data()},
      {b.data(), b.data() + 1},
      {c.data(), c.data() + c.size()}};
  std::vector<std::int64_t> out(10001);
  funnel_merge(runs, std::span<std::int64_t>(out));
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(std::count(out.begin(), out.end(), 5), 2);
}

TEST(FunnelMerge, SingleRun) {
  std::vector<std::int64_t> a{1, 2, 3};
  std::vector<std::pair<const std::int64_t*, const std::int64_t*>> runs{
      {a.data(), a.data() + 3}};
  std::vector<std::int64_t> out(3);
  funnel_merge(runs, std::span<std::int64_t>(out));
  EXPECT_EQ(out, a);
}

TEST(FunnelMerge, OutputSizeMismatchRejected) {
  std::vector<std::int64_t> a{1};
  std::vector<std::pair<const std::int64_t*, const std::int64_t*>> runs{
      {a.data(), a.data() + 1}};
  std::vector<std::int64_t> out(2);
  EXPECT_THROW(funnel_merge(runs, std::span<std::int64_t>(out)),
               InvalidArgumentError);
}

TEST(Funnelsort, ManyDuplicatesStable) {
  // Not stability in the strict sense (funnelsort isn't stable), but
  // heavy ties must not lose or duplicate elements.
  auto v = make_input(200000, InputOrder::FewDistinct, 9);
  const auto cs = checksum(v);
  funnelsort(std::span<std::int64_t>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(checksum(v), cs);
}

}  // namespace
}  // namespace mlm::sort

#include "mlm/sort/input_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mlm/support/error.h"
#include "mlm/support/proptest.h"

namespace mlm::sort {
namespace {

TEST(InputGen, RandomIsDeterministicPerSeed) {
  const auto a = make_input(1000, InputOrder::Random, 7);
  const auto b = make_input(1000, InputOrder::Random, 7);
  const auto c = make_input(1000, InputOrder::Random, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(InputGen, ReverseIsStrictlyDecreasing) {
  const auto v = make_input(500, InputOrder::Reverse, 0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
  EXPECT_EQ(std::set<std::int64_t>(v.begin(), v.end()).size(), v.size());
}

TEST(InputGen, SortedIsIncreasing) {
  const auto v = make_input(500, InputOrder::Sorted, 0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(InputGen, NearlySortedIsMostlyOrdered) {
  const auto v = make_input(10000, InputOrder::NearlySorted, 3);
  std::size_t inversions_adjacent = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) ++inversions_adjacent;
  }
  EXPECT_GT(inversions_adjacent, 0u);
  EXPECT_LT(inversions_adjacent, v.size() / 20);
}

TEST(InputGen, FewDistinctHasAtMost16Values) {
  const auto v = make_input(5000, InputOrder::FewDistinct, 1);
  const std::set<std::int64_t> distinct(v.begin(), v.end());
  EXPECT_LE(distinct.size(), 16u);
  EXPECT_GE(distinct.size(), 8u);  // overwhelmingly likely
}

TEST(InputGen, EmptyArrayOk) {
  EXPECT_TRUE(make_input(0, InputOrder::Random, 0).empty());
}

TEST(InputGen, ParseRoundTrips) {
  for (InputOrder o :
       {InputOrder::Random, InputOrder::Reverse, InputOrder::Sorted,
        InputOrder::NearlySorted, InputOrder::FewDistinct}) {
    EXPECT_EQ(parse_input_order(to_string(o)), o);
  }
  EXPECT_THROW(parse_input_order("bogus"), InvalidArgumentError);
}

TEST(Checksum, InvariantUnderPermutation) {
  auto v = make_input(1000, InputOrder::Random, 5);
  const auto before = checksum(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(checksum(v), before);
  v[0] ^= 1;  // corruption changes the checksum
  EXPECT_NE(checksum(v), before);
}

TEST(Checksum, EmptyIsZero) {
  const InputChecksum c = checksum({});
  EXPECT_EQ(c.sum, 0u);
  EXPECT_EQ(c.xor_, 0u);
}

// Golden digests: the generator streams are part of the repo's
// reproducibility contract (benchmark inputs and property-test cases
// derive from them), so their bytes must never drift — not across runs,
// compilers, or standard libraries.  If one of these fails, a generator
// change silently invalidated every recorded benchmark baseline.
TEST(InputGen, SeedStabilityGoldenDigests) {
  struct Golden {
    InputOrder order;
    std::uint64_t digest;
  };
  const Golden goldens[] = {
      {InputOrder::Random, 0xa2add2d917036f9eULL},
      {InputOrder::Reverse, 0x06eb1cc3a8308b75ULL},
      {InputOrder::Sorted, 0x34815615f489cb25ULL},
      {InputOrder::NearlySorted, 0x064f7c98ea7a10d5ULL},
      {InputOrder::FewDistinct, 0x60c911220fa83ca2ULL},
  };
  for (const Golden& g : goldens) {
    const auto v = make_input(4096, g.order, 42);
    EXPECT_EQ(digest_of(std::span<const std::int64_t>(v)), g.digest)
        << to_string(g.order);
  }
  // A second (size, seed) point so a lucky collision cannot hide drift.
  const auto w = make_input(1000, InputOrder::Random, 7);
  EXPECT_EQ(digest_of(std::span<const std::int64_t>(w)),
            0x9d5e060481d18c7dULL);
}

TEST(InputGen, DigestIsByteIdenticalAcrossRepeatedRuns) {
  for (InputOrder order :
       {InputOrder::Random, InputOrder::NearlySorted,
        InputOrder::FewDistinct}) {
    const auto a = make_input(2048, order, 123);
    const auto b = make_input(2048, order, 123);
    EXPECT_EQ(digest_of(std::span<const std::int64_t>(a)),
              digest_of(std::span<const std::int64_t>(b)))
        << to_string(order);
  }
}

}  // namespace
}  // namespace mlm::sort

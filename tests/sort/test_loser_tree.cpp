#include "mlm/sort/loser_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm::sort {
namespace {

std::vector<std::vector<int>> random_runs(std::size_t k,
                                          std::size_t max_len,
                                          std::uint64_t seed) {
  mlm::Xoshiro256ss rng(seed);
  std::vector<std::vector<int>> runs(k);
  for (auto& r : runs) {
    r.resize(rng.bounded(max_len + 1));
    for (auto& v : r) v = static_cast<int>(rng.bounded(1000));
    std::sort(r.begin(), r.end());
  }
  return runs;
}

std::vector<int> merge_with_tree(const std::vector<std::vector<int>>& runs) {
  LoserTree<const int*> lt(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    lt.set_run(i, runs[i].data(), runs[i].data() + runs[i].size());
  }
  lt.init();
  std::vector<int> out;
  out.reserve(lt.remaining());
  while (!lt.empty()) out.push_back(lt.pop());
  return out;
}

std::vector<int> reference_merge(const std::vector<std::vector<int>>& runs) {
  std::vector<int> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  return all;
}

class LoserTreeK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LoserTreeK, MatchesReferenceMerge) {
  const std::size_t k = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto runs = random_runs(k, 200, seed * 31 + k);
    EXPECT_EQ(merge_with_tree(runs), reference_merge(runs))
        << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LoserTreeK,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 13, 16,
                                           31, 32, 33, 64, 100, 256));

TEST(LoserTree, SingleRunPassthrough) {
  std::vector<int> run{1, 2, 3};
  LoserTree<const int*> lt(1);
  lt.set_run(0, run.data(), run.data() + run.size());
  lt.init();
  EXPECT_EQ(lt.pop(), 1);
  EXPECT_EQ(lt.pop(), 2);
  EXPECT_EQ(lt.pop(), 3);
  EXPECT_TRUE(lt.empty());
}

TEST(LoserTree, AllRunsEmpty) {
  LoserTree<const int*> lt(4);
  std::vector<int> empty;
  for (std::size_t i = 0; i < 4; ++i) {
    lt.set_run(i, empty.data(), empty.data());
  }
  lt.init();
  EXPECT_TRUE(lt.empty());
  EXPECT_EQ(lt.remaining(), 0u);
  EXPECT_THROW(lt.pop(), Error);
}

TEST(LoserTree, StableAcrossRunOrderOnTies) {
  // Equal keys must come out in run order (required for stable merges of
  // consecutive array slices).
  std::vector<int> a{5, 5}, b{5}, c{5, 5, 5};
  LoserTree<const int*> lt(3);
  lt.set_run(0, a.data(), a.data() + a.size());
  lt.set_run(1, b.data(), b.data() + b.size());
  lt.set_run(2, c.data(), c.data() + c.size());
  lt.init();
  std::vector<std::size_t> origin;
  while (!lt.empty()) {
    origin.push_back(lt.top_run());
    lt.pop();
  }
  EXPECT_TRUE(std::is_sorted(origin.begin(), origin.end()));
  EXPECT_EQ(origin.size(), 6u);
}

TEST(LoserTree, TopAndTopRunConsistent) {
  std::vector<int> a{10, 30}, b{20};
  LoserTree<const int*> lt(2);
  lt.set_run(0, a.data(), a.data() + 2);
  lt.set_run(1, b.data(), b.data() + 1);
  lt.init();
  EXPECT_EQ(lt.top(), 10);
  EXPECT_EQ(lt.top_run(), 0u);
  lt.pop();
  EXPECT_EQ(lt.top(), 20);
  EXPECT_EQ(lt.top_run(), 1u);
}

TEST(LoserTree, CustomComparatorDescending) {
  std::vector<int> a{9, 5, 1}, b{8, 4};
  LoserTree<const int*, std::greater<>> lt(2, std::greater<>{});
  lt.set_run(0, a.data(), a.data() + a.size());
  lt.set_run(1, b.data(), b.data() + b.size());
  lt.init();
  std::vector<int> out;
  while (!lt.empty()) out.push_back(lt.pop());
  EXPECT_EQ(out, (std::vector<int>{9, 8, 5, 4, 1}));
}

TEST(LoserTree, RemainingCountsAllRuns) {
  std::vector<int> a{1, 2}, b{3, 4, 5};
  LoserTree<const int*> lt(2);
  lt.set_run(0, a.data(), a.data() + a.size());
  lt.set_run(1, b.data(), b.data() + b.size());
  lt.init();
  EXPECT_EQ(lt.remaining(), 5u);
  lt.pop();
  EXPECT_EQ(lt.remaining(), 4u);
}

TEST(LoserTree, RejectsBadArguments) {
  EXPECT_THROW(LoserTree<const int*>(0), InvalidArgumentError);
  LoserTree<const int*> lt(2);
  std::vector<int> run{1};
  EXPECT_THROW(lt.set_run(2, run.data(), run.data() + 1),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::sort

// Property tests for the batched merge kernels (PR 5): pop_batch /
// pop_streak against sequential pop() and std::merge references, the
// unrolled two-run merge against std::merge, with seeded dup-heavy
// inputs, byte-exact output checks, and run-order stability.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mlm/sort/loser_tree.h"
#include "mlm/sort/merge_kernels.h"
#include "mlm/sort/multiway_merge.h"
#include "mlm/support/error.h"
#include "mlm/support/proptest.h"

namespace mlm::sort {
namespace {

// Key + origin tag: comparisons see only the key, so the tag exposes
// stability violations that value comparison would miss.
struct Tagged {
  std::int64_t key = 0;
  std::uint32_t run = 0;
  std::uint32_t pos = 0;

  friend bool operator==(const Tagged&, const Tagged&) = default;
};
struct TaggedKeyLess {
  bool operator()(const Tagged& a, const Tagged& b) const {
    return a.key < b.key;
  }
};

/// Seeded sorted runs; keys drawn from [0, key_bound) — small bounds
/// produce the heavy duplicates that exercise streaks and tie-breaks.
std::vector<std::vector<Tagged>> gen_runs(Gen& g, std::size_t max_k,
                                          std::size_t max_len,
                                          std::int64_t key_bound) {
  const std::size_t k = g.size_in(1, max_k);
  std::vector<std::vector<Tagged>> runs(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    auto keys = g.int_vector(0, max_len, 0, key_bound - 1);
    std::sort(keys.begin(), keys.end());
    runs[i].resize(keys.size());
    for (std::uint32_t p = 0; p < keys.size(); ++p) {
      runs[i][p] = Tagged{keys[p], i, p};
    }
  }
  return runs;
}

template <typename T, typename Comp>
LoserTree<const T*, Comp> seated(const std::vector<std::vector<T>>& runs,
                                 Comp comp) {
  LoserTree<const T*, Comp> lt(runs.size(), comp);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    lt.set_run(i, runs[i].data(), runs[i].data() + runs[i].size());
  }
  lt.init();
  return lt;
}

/// The trusted reference: run-by-run stable merge with std::merge
/// (lower run index wins ties, matching the tree's tie-break).
std::vector<Tagged> reference_merge(
    const std::vector<std::vector<Tagged>>& runs) {
  std::vector<Tagged> out;
  for (const auto& r : runs) {
    std::vector<Tagged> next(out.size() + r.size());
    std::merge(out.begin(), out.end(), r.begin(), r.end(), next.begin(),
               TaggedKeyLess{});
    out = std::move(next);
  }
  return out;
}

TEST(PopBatchProperty, MatchesSequentialPopsAndReference) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Gen g(seed * 7919 + 1);
    // Alternate dup-heavy (8 distinct keys) and wide key spaces.
    const auto runs =
        gen_runs(g, 12, 150, seed % 2 == 0 ? 8 : 1'000'000);
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size();

    auto lt_seq = seated(runs, TaggedKeyLess{});
    std::vector<Tagged> via_pop;
    via_pop.reserve(total);
    while (!lt_seq.empty()) via_pop.push_back(lt_seq.pop());

    auto lt_batch = seated(runs, TaggedKeyLess{});
    std::vector<Tagged> via_batch(total);
    // Odd batch sizes force streaks to split across pop_batch calls.
    std::size_t off = 0;
    const std::size_t step = g.size_in(1, 7);
    while (off < total) {
      const std::size_t got =
          lt_batch.pop_batch(via_batch.data() + off, step);
      ASSERT_GT(got, 0u) << "no progress at off=" << off;
      off += got;
    }
    ASSERT_EQ(off, total);
    EXPECT_TRUE(lt_batch.empty());

    // Byte-exact: tags included, so this asserts stability too.
    EXPECT_EQ(via_batch, via_pop) << "seed=" << seed;
    EXPECT_EQ(via_batch, reference_merge(runs)) << "seed=" << seed;
  }
}

TEST(PopBatchProperty, StabilityUnderAllEqualKeys) {
  Gen g(99);
  auto runs = gen_runs(g, 6, 40, 1);  // every key identical
  auto lt = seated(runs, TaggedKeyLess{});
  std::vector<Tagged> out(lt.remaining());
  EXPECT_EQ(lt.pop_batch(out.data(), out.size()), out.size());
  // All ties: output must be runs 0..k-1 in order, each in position
  // order.
  std::size_t i = 0;
  for (std::uint32_t r = 0; r < runs.size(); ++r) {
    for (std::uint32_t p = 0; p < runs[r].size(); ++p, ++i) {
      ASSERT_EQ(out[i].run, r) << "i=" << i;
      ASSERT_EQ(out[i].pos, p) << "i=" << i;
    }
  }
}

TEST(PopBatch, NLargerThanRemainingDrainsAndStops) {
  std::vector<std::vector<int>> runs{{1, 3, 5}, {2, 4}};
  auto lt = seated(runs, std::less<>{});
  std::vector<int> out(100, -1);
  EXPECT_EQ(lt.pop_batch(out.data(), 100), 5u);
  EXPECT_TRUE(lt.empty());
  EXPECT_EQ(lt.pop_batch(out.data() + 5, 100), 0u);
  EXPECT_EQ((std::vector<int>(out.begin(), out.begin() + 5)),
            (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(out[5], -1);
}

TEST(PopBatch, ZeroBudgetPopsNothing) {
  std::vector<std::vector<int>> runs{{1, 2}};
  auto lt = seated(runs, std::less<>{});
  int sink = 0;
  EXPECT_EQ(lt.pop_batch(&sink, 0), 0u);
  EXPECT_EQ(lt.remaining(), 2u);
}

TEST(PopBatch, SingleRunTreeBulkCopies) {
  // k = 1: no challenger exists; the whole run must stream out in one
  // streak.
  std::vector<std::vector<int>> runs{{1, 1, 2, 3, 5, 8}};
  auto lt = seated(runs, std::less<>{});
  std::vector<int> out(6);
  std::size_t src = 99;
  EXPECT_EQ(lt.pop_streak(out.data(), 6, src), 6u);
  EXPECT_EQ(src, 0u);
  EXPECT_TRUE(lt.empty());
  EXPECT_EQ(out, runs[0]);
}

TEST(PopStreak, StopsAtRunSwitchAndReportsSource) {
  std::vector<std::vector<int>> runs{{1, 1, 7, 8}, {2, 3, 9}};
  auto lt = seated(runs, std::less<>{});
  std::vector<int> out(16, -1);
  std::size_t src = 99;
  // Run 0 leads with 1,1; the challenger head is 2, so the streak must
  // stop after exactly the two 1s.
  EXPECT_EQ(lt.pop_streak(out.data(), 16, src), 2u);
  EXPECT_EQ(src, 0u);
  // Then 2,3 from run 1 (stops when 7 beats it... i.e. 7 > 3 ends it).
  EXPECT_EQ(lt.pop_streak(out.data() + 2, 16, src), 2u);
  EXPECT_EQ(src, 1u);
  EXPECT_EQ(lt.pop_streak(out.data() + 4, 16, src), 2u);  // 7, 8
  EXPECT_EQ(src, 0u);
  EXPECT_EQ(lt.pop_streak(out.data() + 6, 16, src), 1u);  // 9
  EXPECT_EQ(src, 1u);
  EXPECT_TRUE(lt.empty());
  EXPECT_EQ((std::vector<int>(out.begin(), out.begin() + 7)),
            (std::vector<int>{1, 1, 2, 3, 7, 8, 9}));
}

TEST(PopStreak, RespectsSpaceCapMidStreak) {
  std::vector<std::vector<int>> runs{{1, 2, 3, 4}, {10}};
  auto lt = seated(runs, std::less<>{});
  std::vector<int> out(2, -1);
  std::size_t src = 99;
  EXPECT_EQ(lt.pop_streak(out.data(), 2, src), 2u);
  EXPECT_EQ(src, 0u);
  EXPECT_EQ(lt.top(), 3);  // cap, not run switch, ended the streak
  EXPECT_EQ(lt.remaining(), 3u);
}

TEST(MergeTwoRunsProperty, MatchesStdMerge) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Gen g(seed * 131 + 7);
    const std::int64_t bound = seed % 3 == 0 ? 4 : 100'000;
    auto a = g.int_vector(0, 200, 0, bound);
    auto b = g.int_vector(0, 200, 0, bound);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    std::vector<std::int64_t> expect(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
    std::vector<std::int64_t> got(a.size() + b.size(), -1);
    std::int64_t* end = merge_two_runs(
        a.data(), a.data() + a.size(), b.data(), b.data() + b.size(),
        got.data(), std::less<>{});
    EXPECT_EQ(end, got.data() + got.size());
    EXPECT_EQ(got, expect) << "seed=" << seed;
  }
}

TEST(MergeTwoRunsProperty, StableTiesFavorFirstRun) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Gen g(seed + 1000);
    std::vector<std::vector<Tagged>> runs =
        gen_runs(g, 2, 120, 3);  // dup-heavy
    runs.resize(2);
    std::vector<Tagged> got(runs[0].size() + runs[1].size());
    merge_two_runs(runs[0].data(), runs[0].data() + runs[0].size(),
                   runs[1].data(), runs[1].data() + runs[1].size(),
                   got.data(), TaggedKeyLess{});
    std::vector<Tagged> expect(got.size());
    std::merge(runs[0].begin(), runs[0].end(), runs[1].begin(),
               runs[1].end(), expect.begin(), TaggedKeyLess{});
    EXPECT_EQ(got, expect) << "seed=" << seed;
  }
}

TEST(MergeTwoRuns, EmptyRunsAndTails) {
  const std::vector<int> empty;
  std::vector<int> a{1, 2, 3};
  std::vector<int> out(3, -1);
  int* end = merge_two_runs(a.data(), a.data() + a.size(), empty.data(),
                            empty.data(), out.data(), std::less<>{});
  EXPECT_EQ(end, out.data() + 3);
  EXPECT_EQ(out, a);
  end = merge_two_runs(empty.data(), empty.data(), a.data(),
                       a.data() + a.size(), out.data(), std::less<>{});
  EXPECT_EQ(end, out.data() + 3);
  EXPECT_EQ(out, a);
  end = merge_two_runs(empty.data(), empty.data(), empty.data(),
                       empty.data(), out.data(), std::less<>{});
  EXPECT_EQ(end, out.data());
}

TEST(CascadeProperty, MatchesReferenceIncludingStability) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Gen g(seed * 97 + 3);
    // Odd k values included; dup-heavy every third seed.
    const auto runs =
        gen_runs(g, 11, 120, seed % 3 == 0 ? 5 : 1'000'000);
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size();
    std::vector<std::span<const Tagged>> spans(runs.begin(), runs.end());
    std::vector<Tagged> out(total), scratch(total);
    multiway_merge_cascade(std::span<const std::span<const Tagged>>(spans),
                           std::span<Tagged>(out),
                           std::span<Tagged>(scratch), TaggedKeyLess{});
    EXPECT_EQ(out, reference_merge(runs)) << "seed=" << seed;
  }
}

TEST(Cascade, RejectsUndersizedScratch) {
  std::vector<int> a{1, 2}, b{3, 4};
  std::vector<std::span<const int>> spans{a, b};
  std::vector<int> out(4), scratch(3);
  EXPECT_THROW(
      multiway_merge_cascade(std::span<const std::span<const int>>(spans),
                             std::span<int>(out), std::span<int>(scratch),
                             std::less<>{}),
      InvalidArgumentError);
}

TEST(Cascade, SingleAndEmptyRuns) {
  std::vector<int> a{1, 2, 3};
  std::vector<std::span<const int>> one{a};
  std::vector<int> out(3), scratch(3);
  multiway_merge_cascade(std::span<const std::span<const int>>(one),
                         std::span<int>(out), std::span<int>(scratch),
                         std::less<>{});
  EXPECT_EQ(out, a);

  std::vector<std::span<const int>> none;
  std::vector<int> empty_out;
  multiway_merge_cascade(std::span<const std::span<const int>>(none),
                         std::span<int>(empty_out),
                         std::span<int>(scratch), std::less<>{});
}

TEST(HybridMergeProperty, TreeAndCascadeRegimesAgreeWithReference) {
  // Big enough to cross kCascadeMinElements so the probe actually runs:
  // "random" takes the cascade handoff, "dups" stays on streaks.  The
  // output must be identical (stability included) either way.
  for (const std::int64_t bound : {std::int64_t{4}, std::int64_t{1} << 40}) {
    Gen g(static_cast<std::uint64_t>(bound) + 17);
    const std::size_t k = 7;
    std::vector<std::vector<Tagged>> runs(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      auto keys = g.int_vector(1500, 2500, 0, bound - 1);
      std::sort(keys.begin(), keys.end());
      runs[i].resize(keys.size());
      for (std::uint32_t p = 0; p < keys.size(); ++p) {
        runs[i][p] = Tagged{keys[p], i, p};
      }
    }
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size();
    ASSERT_GE(total, kCascadeMinElements);
    std::vector<std::span<const Tagged>> spans(runs.begin(), runs.end());
    std::vector<Tagged> out(total);
    multiway_merge(std::span<const std::span<const Tagged>>(spans),
                   std::span<Tagged>(out), TaggedKeyLess{});
    EXPECT_EQ(out, reference_merge(runs)) << "bound=" << bound;
  }
}

TEST(PopBatchProperty, ByteExactDigestAgainstReference) {
  // digest_of over the raw structs: any byte-level divergence (padding
  // included — Tagged is trivially copyable and fully initialized)
  // fails even if operator== were too lax.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Gen g(seed + 31337);
    const auto runs = gen_runs(g, 9, 100, 6);
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size();
    auto lt = seated(runs, TaggedKeyLess{});
    std::vector<Tagged> out(total);
    EXPECT_EQ(lt.pop_batch(out.data(), total), total);
    const auto expect = reference_merge(runs);
    EXPECT_EQ(digest_of<Tagged>(out), digest_of<Tagged>(expect))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace mlm::sort

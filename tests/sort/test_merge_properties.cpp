// Property tests for the k-way merge kernels: random sorted runs merged
// by multiway_merge / LoserTree must equal a trivially-correct serial
// reference merge.  Inputs come from seeded generators
// (mlm/support/proptest.h); on failure the case is shrunk to a
// locally-minimal run set and reported with its seed.
#include "mlm/sort/multiway_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "mlm/sort/loser_tree.h"
#include "mlm/support/proptest.h"

namespace mlm::sort {
namespace {

// Reference: concatenate and std::stable_sort.  (Merging sorted runs is
// a permutation-preserving sort, so this is the full specification.)
std::vector<std::int64_t> reference_merge(
    const std::vector<std::vector<std::int64_t>>& runs) {
  std::vector<std::int64_t> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::stable_sort(all.begin(), all.end());
  return all;
}

std::vector<std::vector<std::int64_t>> random_sorted_runs(Gen& gen) {
  const std::size_t k = gen.size_in(1, 12);
  std::vector<std::vector<std::int64_t>> runs(k);
  for (auto& r : runs) {
    // Small value range to force duplicates across runs; occasional
    // empty runs to hit the degenerate paths.
    r = gen.int_vector(0, 64, -50, 50);
    std::sort(r.begin(), r.end());
  }
  return runs;
}

std::vector<std::int64_t> merge_with_multiway(
    const std::vector<std::vector<std::int64_t>>& runs) {
  std::vector<Run<std::int64_t>> spans;
  std::size_t total = 0;
  for (const auto& r : runs) {
    spans.emplace_back(r.data(), r.size());
    total += r.size();
  }
  std::vector<std::int64_t> out(total);
  multiway_merge<std::int64_t>(spans, std::span<std::int64_t>(out));
  return out;
}

std::vector<std::int64_t> merge_with_loser_tree(
    const std::vector<std::vector<std::int64_t>>& runs) {
  LoserTree<const std::int64_t*> lt(std::max<std::size_t>(runs.size(), 1));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    lt.set_run(i, runs[i].data(), runs[i].data() + runs[i].size());
  }
  lt.init();
  std::vector<std::int64_t> out;
  while (!lt.empty()) out.push_back(lt.pop());
  return out;
}

std::string describe(const std::vector<std::vector<std::int64_t>>& runs) {
  std::ostringstream os;
  for (const auto& r : runs) {
    os << "[";
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i ? "," : "") << r[i];
    }
    os << "]";
  }
  return os.str();
}

TEST(MergeProperties, MultiwayMergeMatchesReference) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed);
    const auto runs = random_sorted_runs(gen);
    const auto expect = reference_merge(runs);
    const auto got = merge_with_multiway(runs);
    ASSERT_EQ(got, expect) << "seed=" << seed << " runs=" << describe(runs);
  }
}

TEST(MergeProperties, LoserTreeMatchesReference) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed);
    auto runs = random_sorted_runs(gen);
    // The raw LoserTree requires k >= 1; empty runs are legal.
    const auto expect = reference_merge(runs);
    const auto got = merge_with_loser_tree(runs);
    ASSERT_EQ(got, expect) << "seed=" << seed << " runs=" << describe(runs);
  }
}

// Two-run case exercised through the shrinker: if the property ever
// fails, shrink_vector reduces the failing run to a minimal
// counterexample before reporting.  (With correct kernels, the shrunk
// report path is exercised by the deliberate anti-property below.)
TEST(MergeProperties, TwoRunMergeMatchesStdMergeWithShrinking) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Gen gen(seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<std::int64_t> a = gen.int_vector(0, 128, -1000, 1000);
    std::vector<std::int64_t> b = gen.int_vector(0, 128, -1000, 1000);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    auto property_holds = [&b](const std::vector<std::int64_t>& run_a) {
      const std::vector<std::vector<std::int64_t>> runs{run_a, b};
      return merge_with_multiway(runs) == reference_merge(runs);
    };
    if (!property_holds(a)) {
      const auto minimal = shrink_vector<std::int64_t>(
          a, [&](const std::vector<std::int64_t>& cand) {
            return std::is_sorted(cand.begin(), cand.end()) &&
                   !property_holds(cand);
          });
      FAIL() << "seed=" << gen.seed()
             << " minimal failing run a=" << describe({minimal})
             << " against b=" << describe({b});
    }
  }
}

// Sanity-check the shrinker itself on a known-bad property: "no vector
// contains a value >= 100".  The minimal counterexample is {100}.
TEST(MergeProperties, ShrinkerFindsMinimalCounterexample) {
  Gen gen(1);
  std::vector<std::int64_t> failing;
  do {
    failing = gen.int_vector(50, 100, 0, 200);
  } while (std::none_of(failing.begin(), failing.end(),
                        [](std::int64_t v) { return v >= 100; }));

  const auto minimal = shrink_vector<std::int64_t>(
      failing,
      [](const std::vector<std::int64_t>& cand) {
        return std::any_of(cand.begin(), cand.end(),
                           [](std::int64_t v) { return v >= 100; });
      },
      2000);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 100);
}

}  // namespace
}  // namespace mlm::sort

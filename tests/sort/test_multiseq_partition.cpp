#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mlm/sort/multiway_merge.h"
#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm::sort {
namespace {

using Runs = std::vector<std::vector<std::int64_t>>;
// Alias avoids `Run<...>` resolving to testing::Test::Run inside TEST
// bodies.
using RunT = Run<std::int64_t>;

Runs random_runs(std::size_t k, std::size_t max_len, std::uint64_t seed,
                 std::uint64_t value_range) {
  mlm::Xoshiro256ss rng(seed);
  Runs runs(k);
  for (auto& r : runs) {
    r.resize(rng.bounded(max_len + 1));
    for (auto& v : r) {
      v = static_cast<std::int64_t>(rng.bounded(value_range));
    }
    std::sort(r.begin(), r.end());
  }
  return runs;
}

std::vector<RunT> as_spans(const Runs& runs) {
  std::vector<RunT> spans;
  for (const auto& r : runs) spans.emplace_back(r.data(), r.size());
  return spans;
}

std::size_t total_size(const Runs& runs) {
  std::size_t n = 0;
  for (const auto& r : runs) n += r.size();
  return n;
}

/// The defining property: splits sum to `rank`, and no prefix element
/// exceeds any suffix element.
void check_valid_partition(const Runs& runs,
                           const std::vector<std::size_t>& splits,
                           std::size_t rank) {
  ASSERT_EQ(splits.size(), runs.size());
  std::size_t sum = 0;
  std::int64_t max_prefix = std::numeric_limits<std::int64_t>::min();
  std::int64_t min_suffix = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_LE(splits[i], runs[i].size());
    sum += splits[i];
    if (splits[i] > 0) {
      max_prefix = std::max(max_prefix, runs[i][splits[i] - 1]);
    }
    if (splits[i] < runs[i].size()) {
      min_suffix = std::min(min_suffix, runs[i][splits[i]]);
    }
  }
  EXPECT_EQ(sum, rank);
  EXPECT_LE(max_prefix, min_suffix);
}

class MultiseqPartitionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiseqPartitionProperty, RandomRunsAllRanks) {
  const std::uint64_t seed = GetParam();
  const auto runs = random_runs(1 + seed % 9, 60, seed, 100);
  const auto spans = as_spans(runs);
  const std::size_t total = total_size(runs);
  for (std::size_t rank = 0; rank <= total;
       rank += std::max<std::size_t>(total / 17, 1)) {
    const auto splits = multiseq_partition(
        std::span<const RunT>(spans), rank);
    check_valid_partition(runs, splits, rank);
  }
}

TEST_P(MultiseqPartitionProperty, HeavyTies) {
  const std::uint64_t seed = GetParam();
  // Value range of 3 forces massive tie groups.
  const auto runs = random_runs(1 + seed % 6, 80, seed + 1000, 3);
  const auto spans = as_spans(runs);
  const std::size_t total = total_size(runs);
  for (std::size_t rank = 0; rank <= total; ++rank) {
    const auto splits = multiseq_partition(
        std::span<const RunT>(spans), rank);
    check_valid_partition(runs, splits, rank);
  }
}

TEST_P(MultiseqPartitionProperty, MonotoneInRank) {
  const std::uint64_t seed = GetParam();
  const auto runs = random_runs(4, 100, seed + 77, 50);
  const auto spans = as_spans(runs);
  const std::size_t total = total_size(runs);
  std::vector<std::size_t> prev(runs.size(), 0);
  for (std::size_t rank = 0; rank <= total; ++rank) {
    const auto splits = multiseq_partition(
        std::span<const RunT>(spans), rank);
    for (std::size_t i = 0; i < splits.size(); ++i) {
      EXPECT_GE(splits[i], prev[i]) << "rank " << rank << " run " << i;
    }
    prev = splits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiseqPartitionProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(MultiseqPartition, RankZeroAndTotal) {
  const Runs runs{{1, 2, 3}, {4, 5}};
  const auto spans = as_spans(runs);
  auto z = multiseq_partition(std::span<const RunT>(spans),
                              0);
  EXPECT_EQ(z, (std::vector<std::size_t>{0, 0}));
  auto t = multiseq_partition(std::span<const RunT>(spans),
                              5);
  EXPECT_EQ(t, (std::vector<std::size_t>{3, 2}));
}

TEST(MultiseqPartition, RankBeyondTotalRejected) {
  const Runs runs{{1}};
  const auto spans = as_spans(runs);
  EXPECT_THROW(multiseq_partition(
                   std::span<const RunT>(spans), 2),
               InvalidArgumentError);
}

TEST(MultiseqPartition, EmptyRunsHandled) {
  const Runs runs{{}, {1, 2}, {}};
  const auto spans = as_spans(runs);
  const auto s = multiseq_partition(
      std::span<const RunT>(spans), 1);
  check_valid_partition(runs, s, 1);
}

TEST(MultiseqPartition, InterleavedExactSplit) {
  const Runs runs{{0, 2, 4, 6, 8}, {1, 3, 5, 7, 9}};
  const auto spans = as_spans(runs);
  const auto s = multiseq_partition(
      std::span<const RunT>(spans), 5);
  // First five elements are 0..4: 3 from run 0 (0,2,4), 2 from run 1.
  EXPECT_EQ(s, (std::vector<std::size_t>{3, 2}));
}

}  // namespace
}  // namespace mlm::sort

#include "mlm/sort/multiway_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mlm/parallel/thread_pool.h"
#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm::sort {
namespace {

// Alias avoids `Run<...>` resolving to testing::Test::Run inside TEST
// bodies.
using RunT = Run<std::int64_t>;

std::vector<std::vector<std::int64_t>> random_runs(std::size_t k,
                                                   std::size_t max_len,
                                                   std::uint64_t seed) {
  mlm::Xoshiro256ss rng(seed);
  std::vector<std::vector<std::int64_t>> runs(k);
  for (auto& r : runs) {
    r.resize(rng.bounded(max_len + 1));
    for (auto& v : r) v = static_cast<std::int64_t>(rng.bounded(5000));
    std::sort(r.begin(), r.end());
  }
  return runs;
}

std::vector<RunT> as_spans(
    const std::vector<std::vector<std::int64_t>>& runs) {
  std::vector<RunT> spans;
  spans.reserve(runs.size());
  for (const auto& r : runs) spans.emplace_back(r.data(), r.size());
  return spans;
}

std::vector<std::int64_t> reference(
    const std::vector<std::vector<std::int64_t>>& runs) {
  std::vector<std::int64_t> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  return all;
}

class MultiwayMergeK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiwayMergeK, SequentialMatchesReference) {
  const auto runs = random_runs(GetParam(), 300, GetParam() * 7 + 1);
  const auto spans = as_spans(runs);
  const auto expect = reference(runs);
  std::vector<std::int64_t> out(expect.size());
  multiway_merge(std::span<const RunT>(spans),
                 std::span<std::int64_t>(out));
  EXPECT_EQ(out, expect);
}

TEST_P(MultiwayMergeK, ParallelMatchesReference) {
  ThreadPool pool(4);
  const auto runs = random_runs(GetParam(), 5000, GetParam() * 13 + 5);
  const auto spans = as_spans(runs);
  const auto expect = reference(runs);
  std::vector<std::int64_t> out(expect.size());
  parallel_multiway_merge(pool, std::span<const RunT>(spans),
                          std::span<std::int64_t>(out));
  EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiwayMergeK,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 33, 64,
                                           128));

TEST(MultiwayMerge, EmptyInput) {
  std::vector<RunT> spans;
  std::vector<std::int64_t> out;
  EXPECT_NO_THROW(multiway_merge(
      std::span<const RunT>(spans), std::span<std::int64_t>(out)));
}

TEST(MultiwayMerge, SomeRunsEmpty) {
  std::vector<std::int64_t> a{1, 3}, b, c{2};
  std::vector<RunT> spans{{a.data(), a.size()},
                                       {b.data(), b.size()},
                                       {c.data(), c.size()}};
  std::vector<std::int64_t> out(3);
  multiway_merge(std::span<const RunT>(spans),
                 std::span<std::int64_t>(out));
  EXPECT_EQ(out, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(MultiwayMerge, OutputSizeMismatchRejected) {
  std::vector<std::int64_t> a{1, 2};
  std::vector<RunT> spans{{a.data(), a.size()}};
  std::vector<std::int64_t> out(3);
  EXPECT_THROW(multiway_merge(std::span<const RunT>(spans),
                              std::span<std::int64_t>(out)),
               InvalidArgumentError);
}

TEST(MultiwayMerge, DescendingComparator) {
  std::vector<std::int64_t> a{9, 5}, b{8, 2};
  std::vector<RunT> spans{{a.data(), a.size()},
                                       {b.data(), b.size()}};
  std::vector<std::int64_t> out(4);
  multiway_merge(std::span<const RunT>(spans),
                 std::span<std::int64_t>(out), std::greater<>{});
  EXPECT_EQ(out, (std::vector<std::int64_t>{9, 8, 5, 2}));
}

TEST(ParallelMultiwayMerge, LargeSkewedRuns) {
  ThreadPool pool(4);
  // One huge run and several tiny ones: exercises split balancing.
  mlm::Xoshiro256ss rng(3);
  std::vector<std::vector<std::int64_t>> runs(5);
  runs[0].resize(200000);
  for (auto& v : runs[0]) v = static_cast<std::int64_t>(rng.bounded(1000));
  std::sort(runs[0].begin(), runs[0].end());
  for (std::size_t i = 1; i < 5; ++i) {
    runs[i] = {static_cast<std::int64_t>(i), 500, 999};
  }
  const auto spans = as_spans(runs);
  const auto expect = reference(runs);
  std::vector<std::int64_t> out(expect.size());
  parallel_multiway_merge(pool, std::span<const RunT>(spans),
                          std::span<std::int64_t>(out));
  EXPECT_EQ(out, expect);
}

TEST(ParallelMultiwayMerge, AllTiesSingleValue) {
  ThreadPool pool(4);
  std::vector<std::vector<std::int64_t>> runs(8,
                                              std::vector<std::int64_t>(
                                                  1000, 42));
  const auto spans = as_spans(runs);
  std::vector<std::int64_t> out(8000);
  parallel_multiway_merge(pool, std::span<const RunT>(spans),
                          std::span<std::int64_t>(out));
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](std::int64_t v) { return v == 42; }));
}

}  // namespace
}  // namespace mlm::sort

#include "mlm/sort/parallel_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "mlm/parallel/thread_pool.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"

namespace mlm::sort {
namespace {

using Case = std::tuple<std::size_t, InputOrder, std::size_t>;

class ParallelSortProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelSortProperty, GnuLikeSortMatchesStdSort) {
  const auto [n, order, threads] = GetParam();
  ThreadPool pool(threads);
  auto v = make_input(n, order, n * 3 + threads);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto cs = checksum(v);
  gnu_like_parallel_sort(pool, std::span<std::int64_t>(v));
  EXPECT_EQ(v, expect);
  EXPECT_EQ(checksum(v), cs);
}

TEST_P(ParallelSortProperty, SamplesortMatchesStdSort) {
  const auto [n, order, threads] = GetParam();
  ThreadPool pool(threads);
  auto v = make_input(n, order, n * 5 + threads);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::int64_t> scratch(v.size());
  samplesort(pool, std::span<std::int64_t>(v),
             std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortProperty,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 1000, 4096, 100001),
        ::testing::Values(InputOrder::Random, InputOrder::Reverse,
                          InputOrder::FewDistinct),
        ::testing::Values(1, 2, 4, 7)));

TEST(GnuLikeParallelSort, ScratchTooSmallRejected) {
  ThreadPool pool(2);
  std::vector<std::int64_t> v(100), scratch(50);
  EXPECT_THROW(gnu_like_parallel_sort(pool, std::span<std::int64_t>(v),
                                      std::span<std::int64_t>(scratch)),
               InvalidArgumentError);
}

TEST(GnuLikeParallelSort, CustomComparator) {
  ThreadPool pool(4);
  auto v = make_input(20000, InputOrder::Random, 9);
  gnu_like_parallel_sort(pool, std::span<std::int64_t>(v),
                         std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TEST(GnuLikeParallelSort, SmallInputFallsBackToSerial) {
  ThreadPool pool(8);
  std::vector<std::int64_t> v{5, 3, 1, 4, 2};
  gnu_like_parallel_sort(pool, std::span<std::int64_t>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Samplesort, DuplicateHeavyInput) {
  ThreadPool pool(4);
  auto v = make_input(50000, InputOrder::FewDistinct, 2);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::int64_t> scratch(v.size());
  samplesort(pool, std::span<std::int64_t>(v),
             std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
}

TEST(Samplesort, AlreadySortedStaysSorted) {
  ThreadPool pool(4);
  auto v = make_input(30000, InputOrder::Sorted, 0);
  auto expect = v;
  std::vector<std::int64_t> scratch(v.size());
  samplesort(pool, std::span<std::int64_t>(v),
             std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace mlm::sort

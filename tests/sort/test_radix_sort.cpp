#include "mlm/sort/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"

namespace mlm::sort {
namespace {

using Case = std::tuple<std::size_t, InputOrder, std::size_t>;

class RadixSortProperty : public ::testing::TestWithParam<Case> {};

TEST_P(RadixSortProperty, SerialMatchesStdSort) {
  const auto [n, order, threads] = GetParam();
  (void)threads;
  auto v = make_input(n, order, n * 17 + 1);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::int64_t> scratch(v.size());
  radix_sort(std::span<std::int64_t>(v),
             std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
}

TEST_P(RadixSortProperty, ParallelMatchesStdSort) {
  const auto [n, order, threads] = GetParam();
  ThreadPool pool(threads);
  auto v = make_input(n, order, n * 19 + 2);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  const auto cs = checksum(v);
  std::vector<std::int64_t> scratch(v.size());
  parallel_radix_sort(pool, std::span<std::int64_t>(v),
                      std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
  EXPECT_EQ(checksum(v), cs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixSortProperty,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 1000, 65536, 300001),
        ::testing::Values(InputOrder::Random, InputOrder::Reverse,
                          InputOrder::FewDistinct),
        ::testing::Values(1, 3, 4)));

TEST(RadixSort, NegativeValuesOrderCorrectly) {
  std::vector<std::int64_t> v{5,
                              -3,
                              0,
                              std::numeric_limits<std::int64_t>::min(),
                              std::numeric_limits<std::int64_t>::max(),
                              -1,
                              1};
  std::vector<std::int64_t> scratch(v.size());
  radix_sort(std::span<std::int64_t>(v),
             std::span<std::int64_t>(scratch));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v.front(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.back(), std::numeric_limits<std::int64_t>::max());
}

TEST(RadixSort, ScratchTooSmallRejected) {
  std::vector<std::int64_t> v(100), scratch(50);
  EXPECT_THROW(radix_sort(std::span<std::int64_t>(v),
                          std::span<std::int64_t>(scratch)),
               InvalidArgumentError);
  ThreadPool pool(2);
  EXPECT_THROW(parallel_radix_sort(pool, std::span<std::int64_t>(v),
                                   std::span<std::int64_t>(scratch)),
               InvalidArgumentError);
}

TEST(RadixSort, StableAcrossPasses) {
  // Radix sort is stable; keys equal in the low digits must retain
  // their relative order per pass.  With full int64 keys stability is
  // unobservable, so check via a value whose duplicates we can count.
  auto v = make_input(50000, InputOrder::FewDistinct, 5);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::int64_t> scratch(v.size());
  radix_sort(std::span<std::int64_t>(v),
             std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace mlm::sort

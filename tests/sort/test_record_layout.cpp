// AoS vs key/payload-split record layouts (DESIGN.md §11): the two
// merge paths must produce byte-identical output for every input —
// duplicate-heavy ones especially, since stability is what carries the
// identity — across both executors and every affinity policy.  The
// 100-seed digest sweep is the PR's acceptance harness.
#include "mlm/sort/record.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "mlm/core/external_sort.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/sort/split_merge.h"
#include "mlm/support/error.h"

namespace mlm::sort {
namespace {

// gtest test bodies live inside a class with a member Run(), which
// shadows sort::Run; a distinct alias sidesteps the collision.
template <typename T>
using RunView = Run<T>;

template <std::size_t N>
std::vector<Record<N>> make_records(std::size_t n, InputOrder order,
                                    std::uint64_t seed) {
  std::vector<Record<N>> recs(n);
  generate_records<N>(std::span<Record<N>>(recs), order, seed);
  return recs;
}

TEST(GenerateRecords, DeterministicForASeed) {
  const auto a = make_records<8>(256, InputOrder::Random, 7);
  const auto b = make_records<8>(256, InputOrder::Random, 7);
  EXPECT_EQ(record_digest<8>(std::span<const Record16>(a)),
            record_digest<8>(std::span<const Record16>(b)));
  const auto c = make_records<8>(256, InputOrder::Random, 8);
  EXPECT_NE(record_digest<8>(std::span<const Record16>(a)),
            record_digest<8>(std::span<const Record16>(c)));
}

TEST(GenerateRecords, EqualKeysCarryDistinctPayloads) {
  // FewDistinct draws keys from 16 values, so a 256-record input is
  // packed with duplicates; payloads mix in the position, which is what
  // makes layout-identity under duplicates a real assertion.
  const auto recs = make_records<56>(256, InputOrder::FewDistinct, 3);
  bool found_equal_keys = false;
  for (std::size_t i = 0; i + 1 < recs.size() && !found_equal_keys; ++i) {
    for (std::size_t j = i + 1; j < recs.size(); ++j) {
      if (recs[i].key == recs[j].key) {
        found_equal_keys = true;
        EXPECT_NE(recs[i].payload, recs[j].payload);
        break;
      }
    }
  }
  EXPECT_TRUE(found_equal_keys);
}

TEST(RecordLayoutNames, RoundTripAndAliases) {
  EXPECT_EQ(parse_record_layout("aos"), RecordLayout::Aos);
  EXPECT_EQ(parse_record_layout("soa"), RecordLayout::SoaSplit);
  EXPECT_EQ(parse_record_layout("soa_split"), RecordLayout::SoaSplit);
  EXPECT_EQ(parse_record_layout("split"), RecordLayout::SoaSplit);
  EXPECT_THROW(parse_record_layout("csv"), InvalidArgumentError);
  for (RecordLayout layout : kAllRecordLayouts) {
    EXPECT_EQ(parse_record_layout(to_string(layout)), layout);
  }
}

// --- multiway_merge_split vs the AoS reference ------------------------

template <std::size_t N>
std::vector<std::vector<Record<N>>> make_sorted_runs(
    std::size_t k, std::size_t per_run, InputOrder order,
    std::uint64_t seed) {
  std::vector<std::vector<Record<N>>> runs;
  for (std::size_t i = 0; i < k; ++i) {
    auto run = make_records<N>(per_run, order, seed * 31 + i);
    std::stable_sort(run.begin(), run.end());
    runs.push_back(std::move(run));
  }
  return runs;
}

template <std::size_t N>
std::vector<RunView<Record<N>>> views_of(
    const std::vector<std::vector<Record<N>>>& runs) {
  std::vector<RunView<Record<N>>> views;
  for (const auto& r : runs) views.emplace_back(r.data(), r.size());
  return views;
}

class SplitMergeProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, InputOrder>> {
};

TEST_P(SplitMergeProperty, MatchesAosMergeByteForByte) {
  const auto [k, order] = GetParam();
  const std::size_t per_run = 97;
  const auto storage = make_sorted_runs<56>(k, per_run, order, k + 11);
  const auto runs = views_of<56>(storage);

  std::vector<Record64> aos(k * per_run);
  std::vector<Record64> soa(k * per_run);
  multiway_merge(std::span<const RunView<Record64>>(runs),
                 std::span<Record64>(aos));
  multiway_merge_split<56>(std::span<const RunView<Record64>>(runs),
                           std::span<Record64>(soa));
  EXPECT_EQ(std::memcmp(aos.data(), soa.data(),
                        aos.size() * sizeof(Record64)),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitMergeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16),
                       ::testing::Values(InputOrder::Random,
                                         InputOrder::Reverse,
                                         InputOrder::FewDistinct)));

TEST(SplitMerge, HandlesEmptyAndDegenerateRuns) {
  std::vector<Record16> out;
  multiway_merge_split<8>(std::span<const RunView<Record16>>{},
                          std::span<Record16>(out));

  // Mix of empty and live runs.
  auto storage = make_sorted_runs<8>(3, 20, InputOrder::Random, 5);
  std::vector<RunView<Record16>> runs = views_of<8>(storage);
  runs.insert(runs.begin(), RunView<Record16>{});
  runs.push_back(RunView<Record16>{});
  std::vector<Record16> aos(60);
  std::vector<Record16> soa(60);
  multiway_merge(std::span<const RunView<Record16>>(runs),
                 std::span<Record16>(aos));
  multiway_merge_split<8>(std::span<const RunView<Record16>>(runs),
                          std::span<Record16>(soa));
  EXPECT_EQ(std::memcmp(aos.data(), soa.data(),
                        aos.size() * sizeof(Record16)),
            0);
}

TEST(SplitMerge, RejectsWrongOutputSize) {
  auto storage = make_sorted_runs<8>(2, 10, InputOrder::Random, 1);
  const auto runs = views_of<8>(storage);
  std::vector<Record16> out(19);
  EXPECT_THROW(multiway_merge_split<8>(std::span<const RunView<Record16>>(runs),
                                       std::span<Record16>(out)),
               InvalidArgumentError);
}

// --- sort_records: layout identity across executors -------------------

class SortRecordsProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, InputOrder>> {
};

TEST_P(SortRecordsProperty, LayoutsAgreeWithStableReference) {
  const auto [n, order] = GetParam();
  const auto input = make_records<56>(n, order, n * 7 + 3);

  auto expect = input;
  std::stable_sort(expect.begin(), expect.end());

  ThreadPool pool(4);
  std::vector<Record64> scratch(n);
  for (RecordLayout layout : kAllRecordLayouts) {
    auto data = input;
    sort_records<56>(pool, std::span<Record64>(data),
                     std::span<Record64>(scratch), layout);
    ASSERT_EQ(data.size(), expect.size());
    EXPECT_EQ(std::memcmp(data.data(), expect.data(),
                          n * sizeof(Record64)),
              0)
        << "layout " << to_string(layout) << " diverged from the stable "
        << "reference on " << to_string(order) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortRecordsProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 100, 1024, 5000),
                       ::testing::Values(InputOrder::Random,
                                         InputOrder::Reverse,
                                         InputOrder::Sorted,
                                         InputOrder::NearlySorted,
                                         InputOrder::FewDistinct)));

// The PR's acceptance harness: 100 seeds, both layouts, both executors,
// every affinity policy — one digest per seed, no exceptions.
TEST(SortRecordsSweep, HundredSeedsDigestIdenticalEverywhere) {
  constexpr std::size_t kN = 512;
  const Topology topo = synthetic_topology(2, 2);
  ThreadPool plain_pool(4);
  std::vector<Record16> scratch(kN);

  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    // Duplicate-heavy on every third seed: stability does real work.
    const InputOrder order = seed % 3 == 0 ? InputOrder::FewDistinct
                                           : InputOrder::Random;
    const auto input = make_records<8>(kN, order, seed);

    auto reference = input;
    sort_records<8>(plain_pool, std::span<Record16>(reference),
                    std::span<Record16>(scratch), RecordLayout::Aos);
    const std::uint64_t want =
        record_digest<8>(std::span<const Record16>(reference));

    for (RecordLayout layout : kAllRecordLayouts) {
      // Deterministic executor (seeded schedule, no real threads).
      {
        DeterministicScheduler sched(seed);
        DeterministicExecutor det(sched, 4, "det-sort");
        auto data = input;
        sort_records<8>(det, std::span<Record16>(data),
                        std::span<Record16>(scratch), layout);
        EXPECT_EQ(record_digest<8>(std::span<const Record16>(data)), want)
            << "det seed " << seed << " layout " << to_string(layout);
      }
      // Real pools under every pinning policy: placement is a hint and
      // must never show up in the bytes.
      for (AffinityPolicy policy : kAllAffinityPolicies) {
        const AffinityPlan plan = plan_affinity(policy, topo, 4);
        ThreadPool pool(4, "sweep", plan);
        auto data = input;
        sort_records<8>(pool, std::span<Record16>(data),
                        std::span<Record16>(scratch), layout);
        EXPECT_EQ(record_digest<8>(std::span<const Record16>(data)), want)
            << "seed " << seed << " layout " << to_string(layout)
            << " policy " << to_string(policy);
      }
    }
  }
}

// --- the external (out-of-core) merge and sorter dispatch --------------

TEST(ExternalSplitMerge, MatchesAosExternalMerge) {
  ThreadPool pool(4);
  MemorySpace staging("stage", MemKind::DDR, 0);  // unlimited

  const auto storage = make_sorted_runs<56>(5, 333, InputOrder::FewDistinct, 9);
  const auto runs = views_of<56>(storage);
  std::vector<Record64> aos(5 * 333);
  std::vector<Record64> soa(5 * 333);

  core::external_multiway_merge(pool, staging,
                                std::span<const RunView<Record64>>(runs),
                                std::span<Record64>(aos), 64);
  core::external_multiway_merge_split<56>(
      pool, staging, std::span<const RunView<Record64>>(runs),
      std::span<Record64>(soa), 64);

  EXPECT_EQ(std::memcmp(aos.data(), soa.data(),
                        aos.size() * sizeof(Record64)),
            0);
  // All staging returned on both paths.
  EXPECT_EQ(staging.stats().used_bytes, 0u);
}

TEST(ExternalSorter, MergeLayoutDispatchIsByteIdentical) {
  // Small three-level machine so the outer merge actually runs.
  TripleSpaceConfig space_cfg;
  space_cfg.mode = McdramMode::Flat;
  space_cfg.mcdram_bytes = 64 * 1024;
  space_cfg.ddr_bytes = 256 * 1024;
  space_cfg.nvm_bytes = 0;

  const std::size_t n = (1024 * 1024) / sizeof(Record64);  // 4x DDR
  const auto input = make_records<56>(n, InputOrder::FewDistinct, 21);

  std::vector<std::vector<Record64>> results;
  for (RecordLayout layout : kAllRecordLayouts) {
    TripleSpace space(space_cfg);
    ThreadPool pool(4);
    SpaceBuffer<Record64> data(space.nvm(), n);
    std::copy(input.begin(), input.end(), data.data());

    core::ExternalSortConfig cfg;
    cfg.inner.variant = core::MlmVariant::Flat;
    cfg.merge_layout = layout;
    core::ExternalMlmSorter<Record64> sorter(space, pool, cfg);
    const core::ExternalSortStats stats =
        sorter.sort(std::span<Record64>(data.data(), n));
    EXPECT_TRUE(stats.external_merge_ran) << to_string(layout);

    results.emplace_back(data.data(), data.data() + n);
    EXPECT_TRUE(std::is_sorted(results.back().begin(),
                               results.back().end()));
  }
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(std::memcmp(results[0].data(), results[1].data(),
                        n * sizeof(Record64)),
            0)
      << "merge_layout changed the sorted bytes";
}

}  // namespace
}  // namespace mlm::sort

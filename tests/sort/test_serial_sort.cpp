#include "mlm/sort/serial_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "mlm/sort/input_gen.h"

namespace mlm::sort {
namespace {

using Case = std::tuple<std::size_t, InputOrder>;

class SerialSortProperty : public ::testing::TestWithParam<Case> {
 protected:
  std::vector<std::int64_t> input() const {
    const auto [n, order] = GetParam();
    return make_input(n, order, 42 + n);
  }
};

TEST_P(SerialSortProperty, IntrosortMatchesStdSort) {
  auto v = input();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  introsort(v.begin(), v.end());
  EXPECT_EQ(v, expect);
}

TEST_P(SerialSortProperty, HeapsortMatchesStdSort) {
  auto v = input();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  heapsort(v.begin(), v.end());
  EXPECT_EQ(v, expect);
}

TEST_P(SerialSortProperty, InsertionSortMatchesStdSort) {
  const auto [n, order] = GetParam();
  if (n > 2000) GTEST_SKIP() << "quadratic sort, keep it small";
  auto v = input();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  insertion_sort(v.begin(), v.end());
  EXPECT_EQ(v, expect);
}

TEST_P(SerialSortProperty, DescendingComparator) {
  auto v = input();
  introsort(v.begin(), v.end(), std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerialSortProperty,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3, 24, 25, 100, 1000, 100000),
        ::testing::Values(InputOrder::Random, InputOrder::Reverse,
                          InputOrder::Sorted, InputOrder::NearlySorted,
                          InputOrder::FewDistinct)),
    [](const auto& info) {
      std::string order = to_string(std::get<1>(info.param));
      order.erase(std::remove(order.begin(), order.end(), '-'),
                  order.end());
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + order;
    });

TEST(SerialSort, AllEqualElements) {
  std::vector<int> v(1000, 7);
  introsort(v.begin(), v.end());
  EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                          [](int x) { return x == 7; }));
}

TEST(SerialSort, TwoElements) {
  std::vector<int> v{2, 1};
  introsort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2}));
}

TEST(SerialSort, QuicksortKillerStillNLogN) {
  // Organ-pipe / many-duplicates patterns that degrade naive quicksort;
  // introsort's depth limit guarantees completion (we just check
  // correctness — a quadratic blowup at this size would time out).
  const std::size_t n = 1 << 17;
  std::vector<std::int64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::int64_t>(std::min(i, n - i));
  }
  introsort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(SerialSort, SortsStringsWithMoves) {
  std::vector<std::string> v{"pear", "apple", "fig", "banana", "date"};
  introsort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v.front(), "apple");
}

TEST(SerialSort, SerialSortAliasWorks) {
  auto v = make_input(5000, InputOrder::Random, 1);
  serial_sort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace mlm::sort

#include "mlm/sort/stable_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "mlm/sort/input_gen.h"
#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm::sort {
namespace {

/// Key + original index: stability means equal keys stay index-ordered.
struct Rec {
  std::int32_t key;
  std::uint32_t idx;
  friend bool operator==(const Rec&, const Rec&) = default;
};
struct ByKey {
  bool operator()(const Rec& a, const Rec& b) const {
    return a.key < b.key;
  }
};

std::vector<Rec> make_records(std::size_t n, std::uint64_t distinct,
                              std::uint64_t seed) {
  mlm::Xoshiro256ss rng(seed);
  std::vector<Rec> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<std::int32_t>(rng.bounded(distinct)),
            static_cast<std::uint32_t>(i)};
  }
  return v;
}

using RunT = Run<std::int64_t>;

void expect_stable_sorted(const std::vector<Rec>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key) << i;
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].idx, v[i].idx) << "instability at " << i;
    }
  }
}

using Case = std::tuple<std::size_t, std::uint64_t, std::size_t>;

class StableSortProperty : public ::testing::TestWithParam<Case> {};

TEST_P(StableSortProperty, SerialStableAndSorted) {
  const auto [n, distinct, threads] = GetParam();
  (void)threads;
  auto v = make_records(n, distinct, n + distinct);
  std::vector<Rec> scratch(v.size());
  stable_merge_sort(std::span<Rec>(v), std::span<Rec>(scratch), ByKey{});
  expect_stable_sorted(v);
}

TEST_P(StableSortProperty, ParallelStableAndSorted) {
  const auto [n, distinct, threads] = GetParam();
  ThreadPool pool(threads);
  auto v = make_records(n, distinct, n * 3 + distinct);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), ByKey{});
  std::vector<Rec> scratch(v.size());
  parallel_stable_sort(pool, std::span<Rec>(v), std::span<Rec>(scratch),
                       ByKey{});
  expect_stable_sorted(v);
  EXPECT_EQ(v, ref);  // stability makes the result unique
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StableSortProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 33, 1000, 100000),
                       ::testing::Values(2, 16, 1000),
                       ::testing::Values(1, 4)));

TEST(StableSort, Int64MatchesStdSort) {
  auto v = make_input(50000, InputOrder::Random, 3);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::int64_t> scratch(v.size());
  ThreadPool pool(4);
  parallel_stable_sort(pool, std::span<std::int64_t>(v),
                       std::span<std::int64_t>(scratch));
  EXPECT_EQ(v, expect);
}

TEST(StableSort, ScratchTooSmallRejected) {
  std::vector<std::int64_t> v(10), scratch(5);
  EXPECT_THROW(stable_merge_sort(std::span<std::int64_t>(v),
                                 std::span<std::int64_t>(scratch)),
               InvalidArgumentError);
}

TEST(KthElementOfRuns, MatchesMergedOrder) {
  mlm::Xoshiro256ss rng(17);
  std::vector<std::vector<std::int64_t>> runs(5);
  std::vector<std::int64_t> all;
  for (auto& r : runs) {
    r.resize(rng.bounded(200) + 1);
    for (auto& x : r) x = static_cast<std::int64_t>(rng.bounded(500));
    std::sort(r.begin(), r.end());
    all.insert(all.end(), r.begin(), r.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<RunT> spans;
  for (const auto& r : runs) spans.emplace_back(r.data(), r.size());
  for (std::size_t k = 0; k < all.size();
       k += std::max<std::size_t>(all.size() / 37, 1)) {
    EXPECT_EQ(kth_element_of_runs(
                  std::span<const RunT>(spans), k),
              all[k])
        << "k=" << k;
  }
  // Endpoints.
  EXPECT_EQ(kth_element_of_runs(std::span<const RunT>(spans),
                                0),
            all.front());
  EXPECT_EQ(kth_element_of_runs(std::span<const RunT>(spans),
                                all.size() - 1),
            all.back());
}

TEST(KthElementOfRuns, OutOfRangeRejected) {
  std::vector<std::int64_t> r{1, 2, 3};
  std::vector<RunT> spans{{r.data(), r.size()}};
  EXPECT_THROW(kth_element_of_runs(
                   std::span<const RunT>(spans), 3),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mlm::sort

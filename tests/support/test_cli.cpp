#include "mlm/support/cli.h"

#include <gtest/gtest.h>

#include "mlm/support/error.h"

namespace mlm {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(CliParser, ParsesAllTypes) {
  bool flag = false;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  std::string s;
  CliParser p("test");
  p.add_flag("verbose", &flag, "");
  p.add_int("count", &i, "");
  p.add_uint("elements", &u, "");
  p.add_double("fraction", &d, "");
  p.add_string("mode", &s, "");

  auto argv = argv_of({"--verbose", "--count=-3", "--elements",
                       "2000000000", "--fraction=0.5", "--mode", "flat"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flag);
  EXPECT_EQ(i, -3);
  EXPECT_EQ(u, 2000000000ull);
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_EQ(s, "flat");
}

TEST(CliParser, BooleanForms) {
  bool a = false, b = true;
  CliParser p("test");
  p.add_flag("a", &a, "");
  p.add_flag("b", &b, "");
  auto argv = argv_of({"--a=true", "--no-b"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(CliParser, PositionalArguments) {
  CliParser p("test");
  auto argv = argv_of({"input.dat", "output.dat"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.dat");
}

TEST(CliParser, UnknownFlagFailsLoudly) {
  CliParser p("test");
  auto argv = argv_of({"--chunk-sise=5"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
}

TEST(CliParser, BadValuesRejected) {
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  CliParser p("test");
  p.add_int("i", &i, "");
  p.add_uint("u", &u, "");
  p.add_double("d", &d, "");
  for (const char* bad :
       {"--i=abc", "--i=1.5", "--u=-2", "--u=zz", "--d=4x"}) {
    auto argv = argv_of({bad});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 InvalidArgumentError)
        << bad;
  }
}

TEST(CliParser, MissingValueRejected) {
  std::int64_t i = 0;
  CliParser p("test");
  p.add_int("i", &i, "");
  auto argv = argv_of({"--i"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgumentError);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser p("test tool");
  auto argv = argv_of({"--help"});
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(p.help().find("test tool"), std::string::npos);
}

TEST(CliParser, DuplicateRegistrationRejected) {
  bool a = false;
  CliParser p("test");
  p.add_flag("x", &a, "");
  EXPECT_THROW(p.add_flag("x", &a, ""), InvalidArgumentError);
}

}  // namespace
}  // namespace mlm

#include "mlm/support/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mlm/support/error.h"

namespace mlm {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/mlm_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, HeaderAndRows) {
  {
    CsvWriter w(path_, {"algo", "seconds"});
    w.write_row({"MLM-sort", "8.09"});
    w.write_row({"GNU-flat", "11.92"});
  }
  EXPECT_EQ(read_file(path_),
            "algo,seconds\nMLM-sort,8.09\nGNU-flat,11.92\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.write_row({"has,comma", "has\"quote"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST_F(CsvWriterTest, RejectsWidthMismatch) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), InvalidArgumentError);
}

TEST_F(CsvWriterTest, WriteAfterCloseFails) {
  CsvWriter w(path_, {"a"});
  w.close();
  EXPECT_THROW(w.write_row({"x"}), Error);
}

TEST(CsvWriter, UnwritablePathFails) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), Error);
}

TEST_F(CsvWriterTest, QuotesNewlinesAndCarriageReturns) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.write_row({"line\nbreak", "cr\rhere"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n\"line\nbreak\",\"cr\rhere\"\n");
}

TEST_F(CsvWriterTest, QuotesLeadingAndTrailingWhitespace) {
  // RFC-4180 consumers may strip unquoted outer whitespace; quoting
  // preserves it (params packed as " k=v" must survive round-trips).
  {
    CsvWriter w(path_, {"a", "b", "c", "d"});
    w.write_row({" leading", "trailing ", "\ttabbed", "inner space"});
  }
  EXPECT_EQ(read_file(path_),
            "a,b,c,d\n\" leading\",\"trailing \",\"\ttabbed\","
            "inner space\n");
}

TEST_F(CsvWriterTest, CloseReportsWriteFailure) {
  // /dev/full accepts opens and buffered writes but fails on flush;
  // close() must surface that instead of silently truncating.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  CsvWriter w("/dev/full", {"col"});
  w.write_row({"x"});
  EXPECT_THROW(w.close(), Error);
}

}  // namespace
}  // namespace mlm

#include "mlm/support/error.h"

#include <gtest/gtest.h>

#include <string>

namespace mlm {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MLM_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    MLM_CHECK(false);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    MLM_CHECK_MSG(false, "extra context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"),
              std::string::npos);
  }
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_THROW(MLM_REQUIRE(false, "bad arg"), InvalidArgumentError);
  EXPECT_NO_THROW(MLM_REQUIRE(true, "fine"));
}

TEST(ErrorHierarchy, SubclassesAreErrors) {
  EXPECT_THROW(throw OutOfMemoryError("x"), Error);
  EXPECT_THROW(throw InvalidArgumentError("x"), Error);
}

}  // namespace
}  // namespace mlm

#include "mlm/support/error.h"

#include <gtest/gtest.h>

#include <string>

namespace mlm {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MLM_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    MLM_CHECK(false);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    MLM_CHECK_MSG(false, "extra context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"),
              std::string::npos);
  }
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_THROW(MLM_REQUIRE(false, "bad arg"), InvalidArgumentError);
  EXPECT_NO_THROW(MLM_REQUIRE(true, "fine"));
}

TEST(ErrorHierarchy, SubclassesAreErrors) {
  EXPECT_THROW(throw OutOfMemoryError("x"), Error);
  EXPECT_THROW(throw InvalidArgumentError("x"), Error);
}

TEST(ErrorFrame, ToStringRendersOnlySetFields) {
  const ErrorFrame bare{"stage_in", -1, "", "", ""};
  EXPECT_EQ(bare.to_string(), "in stage_in");
  const ErrorFrame full{"copy_out", 3, "mcdram", "pool-worker",
                        "slice 2/4"};
  EXPECT_EQ(full.to_string(),
            "in copy_out [chunk 3] [tier mcdram] [thread pool-worker] "
            "(slice 2/4)");
  const ErrorFrame no_chunk{"merge", -1, "nvm", "", ""};
  EXPECT_EQ(no_chunk.to_string(), "in merge [tier nvm]");
}

TEST(ErrorChain, FramesAccumulateInnermostFirst) {
  Error e("boom");
  EXPECT_TRUE(e.chain().empty());
  e.with_frame({"alloc", -1, "mcdram", "", ""});
  e.with_frame({"run_chunk_pipeline", -1, "mcdram", "", ""});
  ASSERT_EQ(e.chain().size(), 2u);
  EXPECT_EQ(e.chain()[0].op, "alloc");
  EXPECT_EQ(e.chain()[1].op, "run_chunk_pipeline");
}

TEST(ErrorChain, WhatRendersBaseMessagePlusOneLinePerFrame) {
  Error e("boom");
  EXPECT_STREQ(e.what(), "boom");
  e.with_frame({"stage_in", 0, "ddr", "orchestrator", ""});
  const std::string what = e.what();
  EXPECT_NE(what.find("boom"), std::string::npos);
  EXPECT_NE(what.find("\n  in stage_in [chunk 0] [tier ddr] "
                      "[thread orchestrator]"),
            std::string::npos);
}

TEST(ErrorChain, CatchByReferenceAndRethrowKeepsDerivedTypeAndFrames) {
  try {
    try {
      throw OutOfMemoryError("mcdram full");
    } catch (Error& e) {
      e.with_frame({"buffer_alloc", -1, "mcdram", "", ""});
      throw;  // rethrow the original object, not a slice
    }
  } catch (const OutOfMemoryError& e) {
    ASSERT_EQ(e.chain().size(), 1u);
    EXPECT_EQ(e.chain()[0].op, "buffer_alloc");
    EXPECT_NE(std::string(e.what()).find("mcdram full"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mlm

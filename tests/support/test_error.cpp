#include "mlm/support/error.h"

#include <gtest/gtest.h>

#include <string>

namespace mlm {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MLM_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    MLM_CHECK(false);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    MLM_CHECK_MSG(false, "extra context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"),
              std::string::npos);
  }
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_THROW(MLM_REQUIRE(false, "bad arg"), InvalidArgumentError);
  EXPECT_NO_THROW(MLM_REQUIRE(true, "fine"));
}

TEST(ErrorHierarchy, SubclassesAreErrors) {
  EXPECT_THROW(throw OutOfMemoryError("x"), Error);
  EXPECT_THROW(throw InvalidArgumentError("x"), Error);
}

TEST(ErrorFrame, ToStringRendersOnlySetFields) {
  const ErrorFrame bare{"stage_in", -1, "", "", ""};
  EXPECT_EQ(bare.to_string(), "in stage_in");
  const ErrorFrame full{"copy_out", 3, "mcdram", "pool-worker",
                        "slice 2/4"};
  EXPECT_EQ(full.to_string(),
            "in copy_out [chunk 3] [tier mcdram] [thread pool-worker] "
            "(slice 2/4)");
  const ErrorFrame no_chunk{"merge", -1, "nvm", "", ""};
  EXPECT_EQ(no_chunk.to_string(), "in merge [tier nvm]");
}

TEST(ErrorChain, FramesAccumulateInnermostFirst) {
  Error e("boom");
  EXPECT_TRUE(e.chain().empty());
  e.with_frame({"alloc", -1, "mcdram", "", ""});
  e.with_frame({"run_chunk_pipeline", -1, "mcdram", "", ""});
  ASSERT_EQ(e.chain().size(), 2u);
  EXPECT_EQ(e.chain()[0].op, "alloc");
  EXPECT_EQ(e.chain()[1].op, "run_chunk_pipeline");
}

TEST(ErrorChain, WhatRendersBaseMessagePlusOneLinePerFrame) {
  Error e("boom");
  EXPECT_STREQ(e.what(), "boom");
  e.with_frame({"stage_in", 0, "ddr", "orchestrator", ""});
  const std::string what = e.what();
  EXPECT_NE(what.find("boom"), std::string::npos);
  EXPECT_NE(what.find("\n  in stage_in [chunk 0] [tier ddr] "
                      "[thread orchestrator]"),
            std::string::npos);
}

// parse_rendered_error is the inverse of what(): a chain pushed through
// the flattened text (a journal record, a child's stderr) must come
// back frame-for-frame.
TEST(ErrorParse, RoundTripsChainThroughWhatRendering) {
  Error e("injected fault at site 'pipeline.stage.compute'");
  e.with_frame({"compute", 3, "mcdram", "pool-worker", "slice 2/4"});
  e.with_frame({"run_chunk_pipeline", -1, "mcdram", "", ""});
  e.with_frame({"job_step", 7, "", "driver", "attempt 2"});

  const ParsedError parsed = parse_rendered_error(e.what());
  EXPECT_EQ(parsed.message,
            "injected fault at site 'pipeline.stage.compute'");
  ASSERT_EQ(parsed.frames.size(), e.chain().size());
  for (std::size_t i = 0; i < parsed.frames.size(); ++i) {
    EXPECT_EQ(parsed.frames[i].op, e.chain()[i].op) << "frame " << i;
    EXPECT_EQ(parsed.frames[i].chunk, e.chain()[i].chunk) << "frame " << i;
    EXPECT_EQ(parsed.frames[i].tier, e.chain()[i].tier) << "frame " << i;
    EXPECT_EQ(parsed.frames[i].thread, e.chain()[i].thread)
        << "frame " << i;
    EXPECT_EQ(parsed.frames[i].detail, e.chain()[i].detail)
        << "frame " << i;
  }
}

TEST(ErrorParse, RoundTripsEmptyDetailAndEmptyOpFrames) {
  Error e("boom");
  e.with_frame({"", -1, "", "", ""});           // renders as "in ?"
  e.with_frame({"merge", -1, "nvm", "", ""});   // no detail, no thread
  e.with_frame({"admit", -1, "", "service", ""});

  const ParsedError parsed = parse_rendered_error(e.what());
  ASSERT_EQ(parsed.frames.size(), 3u);
  EXPECT_EQ(parsed.frames[0].op, "");
  EXPECT_EQ(parsed.frames[0].detail, "");
  EXPECT_EQ(parsed.frames[1].op, "merge");
  EXPECT_EQ(parsed.frames[1].tier, "nvm");
  EXPECT_EQ(parsed.frames[2].thread, "service");
}

TEST(ErrorParse, RoundTripsChainsLongerThanEightFrames) {
  Error e("deep failure");
  for (int i = 0; i < 12; ++i) {
    e.with_frame({"layer" + std::to_string(i), i, "tier" + std::to_string(i),
                  "thread" + std::to_string(i), "depth " + std::to_string(i)});
  }
  const ParsedError parsed = parse_rendered_error(e.what());
  ASSERT_EQ(parsed.frames.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(parsed.frames[i].op, "layer" + std::to_string(i));
    EXPECT_EQ(parsed.frames[i].chunk, i);
    EXPECT_EQ(parsed.frames[i].detail, "depth " + std::to_string(i));
  }
}

TEST(ErrorParse, DetailMayContainParensAndBrackets) {
  Error e("boom");
  e.with_frame({"retry", -1, "", "", "budget (3 of 4) [soft]"});
  const ParsedError parsed = parse_rendered_error(e.what());
  ASSERT_EQ(parsed.frames.size(), 1u);
  EXPECT_EQ(parsed.frames[0].detail, "budget (3 of 4) [soft]");
}

TEST(ErrorParse, FramelessMessageParsesToMessageOnly) {
  const ParsedError parsed = parse_rendered_error("plain failure text");
  EXPECT_EQ(parsed.message, "plain failure text");
  EXPECT_TRUE(parsed.frames.empty());
}

TEST(ErrorChain, CatchByReferenceAndRethrowKeepsDerivedTypeAndFrames) {
  try {
    try {
      throw OutOfMemoryError("mcdram full");
    } catch (Error& e) {
      e.with_frame({"buffer_alloc", -1, "mcdram", "", ""});
      throw;  // rethrow the original object, not a slice
    }
  } catch (const OutOfMemoryError& e) {
    ASSERT_EQ(e.chain().size(), 1u);
    EXPECT_EQ(e.chain()[0].op, "buffer_alloc");
    EXPECT_NE(std::string(e.what()).find("mcdram full"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mlm

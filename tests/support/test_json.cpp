#include "mlm/support/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(JsonValue, KindsAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).as_bool());
  EXPECT_EQ(JsonValue(3.5).as_number(), 3.5);
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  EXPECT_THROW(JsonValue(3.5).as_string(), Error);
  EXPECT_THROW(JsonValue("hi").as_number(), Error);
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.members()[0].first, "zebra");
  EXPECT_EQ(obj.members()[1].first, "alpha");
  EXPECT_EQ(obj.members()[2].first, "mid");
  // Overwrite keeps the original position.
  obj.set("zebra", 9);
  EXPECT_EQ(obj.members()[0].first, "zebra");
  EXPECT_EQ(obj.get("zebra").as_number(), 9.0);
  EXPECT_EQ(obj.size(), 3u);
  EXPECT_TRUE(obj.contains("mid"));
  EXPECT_FALSE(obj.contains("nope"));
  EXPECT_EQ(obj.find("nope"), nullptr);
  EXPECT_THROW(obj.get("nope"), Error);
}

TEST(JsonValue, StringEscaping) {
  EXPECT_EQ(JsonValue::quote("plain"), "\"plain\"");
  EXPECT_EQ(JsonValue::quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonValue::quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonValue::quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonValue::quote(std::string("nul\0byte", 8)),
            "\"nul\\u0000byte\"");
  // UTF-8 passes through verbatim.
  EXPECT_EQ(JsonValue::quote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonValue, NumberReprIntegers) {
  EXPECT_EQ(JsonValue::number_repr(0.0), "0");
  EXPECT_EQ(JsonValue::number_repr(-3.0), "-3");
  EXPECT_EQ(JsonValue::number_repr(400000000000.0), "400000000000");
  // 2^53, the largest exactly-representable contiguous integer.
  EXPECT_EQ(JsonValue::number_repr(9007199254740992.0),
            "9007199254740992");
}

TEST(JsonValue, NumberReprRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 7.497391234, 1e-300, 6.02214076e23,
                   -123.456789012345678}) {
    const std::string repr = JsonValue::number_repr(v);
    EXPECT_EQ(std::stod(repr), v) << repr;
  }
}

TEST(JsonValue, NumberReprRejectsNonFinite) {
  EXPECT_THROW(JsonValue::number_repr(std::nan("")), Error);
  EXPECT_THROW(
      JsonValue::number_repr(std::numeric_limits<double>::infinity()),
      Error);
}

TEST(JsonValue, DumpCompactAndPretty) {
  JsonValue obj = JsonValue::object();
  obj.set("n", 1);
  JsonValue arr = JsonValue::array();
  arr.push_back("x");
  arr.push_back(true);
  obj.set("a", std::move(arr));
  EXPECT_EQ(obj.dump(0), "{\"n\":1,\"a\":[\"x\",true]}");
  EXPECT_EQ(obj.dump(2), "{\n  \"n\": 1,\n  \"a\": [\n    \"x\",\n"
                         "    true\n  ]\n}");
}

TEST(JsonParse, RoundTripsDocuments) {
  const std::string text =
      R"({"name":"case","value":7.497391234,"flags":[true,false,null],)"
      R"("nested":{"deep":[1,2,3]},"empty_arr":[],"empty_obj":{}})";
  const JsonValue doc = json_parse(text);
  EXPECT_EQ(doc.dump(0), text);
  // Pretty-printed output parses back to the same document.
  EXPECT_EQ(json_parse(doc.dump(2)).dump(0), text);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(json_parse("\"A\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(json_parse("\"\\u2603\"").as_string(), "\xe2\x98\x83");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(json_parse("{"), JsonParseError);
  EXPECT_THROW(json_parse("[1,]"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\":1,}"), JsonParseError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(json_parse("nul"), JsonParseError);
  EXPECT_THROW(json_parse("1.2.3"), JsonParseError);
  EXPECT_THROW(json_parse("{} trailing"), JsonParseError);
  EXPECT_THROW(json_parse("{\"dup\":1,\"dup\":2}"), JsonParseError);
  EXPECT_THROW(json_parse("\"bad\\q\""), JsonParseError);
}

TEST(JsonFile, WriteAndParseFile) {
  const std::string path = ::testing::TempDir() + "/mlm_json_test.json";
  JsonValue obj = JsonValue::object();
  obj.set("sha", "abc123");
  obj.set("count", 42);
  json_write_file(path, obj);
  const JsonValue back = json_parse_file(path);
  EXPECT_EQ(back.get("sha").as_string(), "abc123");
  EXPECT_EQ(back.get("count").as_number(), 42.0);
  std::remove(path.c_str());
  EXPECT_THROW(json_parse_file(path), Error);
  EXPECT_THROW(json_write_file("/nonexistent-dir/x.json", obj), Error);
}

}  // namespace
}  // namespace mlm

#include "mlm/support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace mlm {
namespace {

TEST(Fnv1a64, MatchesKnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a64(a, 1), 0xaf63dc4c8601ec8cULL);
  const std::uint8_t foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
  EXPECT_EQ(fnv1a64(foobar, 6), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, DigestOfIsOrderSensitive) {
  const std::vector<std::int64_t> v1{1, 2, 3};
  const std::vector<std::int64_t> v2{3, 2, 1};
  EXPECT_NE(digest_of(std::span<const std::int64_t>(v1)),
            digest_of(std::span<const std::int64_t>(v2)));
  EXPECT_EQ(digest_of(std::span<const std::int64_t>(v1)),
            digest_of(std::span<const std::int64_t>(v1)));
}

TEST(Gen, IsDeterministicPerSeed) {
  Gen a(99);
  Gen b(99);
  Gen c(100);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.u64();
    EXPECT_EQ(va, b.u64());
    any_diff = any_diff || va != c.u64();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Gen, RangesAreRespected) {
  Gen gen(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = gen.int_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const std::size_t s = gen.size_in(3, 9);
    EXPECT_GE(s, 3u);
    EXPECT_LE(s, 9u);
    EXPECT_LT(gen.below(17), 17u);
  }
}

TEST(Gen, IntVectorHonorsBounds) {
  Gen gen(11);
  for (int i = 0; i < 50; ++i) {
    const auto v = gen.int_vector(0, 32, -10, 10);
    EXPECT_LE(v.size(), 32u);
    for (std::int64_t x : v) {
      EXPECT_GE(x, -10);
      EXPECT_LE(x, 10);
    }
  }
}

TEST(Gen, BooleanProbabilityIsRoughlyRespected) {
  Gen gen(13);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += gen.boolean(0.25) ? 1 : 0;
  EXPECT_GT(trues, 2000);
  EXPECT_LT(trues, 3000);
}

TEST(ShrinkVector, RemovesIrrelevantElements) {
  // Fails iff the vector contains a 7.  Minimal counterexample: {7}.
  std::vector<std::int64_t> failing(100);
  std::iota(failing.begin(), failing.end(), 0);
  const auto minimal = shrink_vector<std::int64_t>(
      failing,
      [](const std::vector<std::int64_t>& v) {
        return std::find(v.begin(), v.end(), 7) != v.end();
      },
      4000);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 7);
}

TEST(ShrinkVector, ShrinksValuesToBoundary) {
  // Fails iff some element >= 1000.
  std::vector<std::int64_t> failing{5000, 3, 2500};
  const auto minimal = shrink_vector<std::int64_t>(
      failing,
      [](const std::vector<std::int64_t>& v) {
        return std::any_of(v.begin(), v.end(),
                           [](std::int64_t x) { return x >= 1000; });
      },
      4000);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 1000);
}

TEST(ShrinkVector, RespectsAttemptBudget) {
  std::size_t calls = 0;
  std::vector<std::int64_t> failing(64, 1);
  shrink_vector<std::int64_t>(
      failing,
      [&calls](const std::vector<std::int64_t>&) {
        ++calls;
        return true;  // everything "fails" — worst case for the search
      },
      10);
  EXPECT_LE(calls, 10u);
}

TEST(ShrinkVector, ReturnsInputWhenNothingSmallerFails) {
  const std::vector<std::int64_t> failing{4, 2};
  const auto minimal = shrink_vector<std::int64_t>(
      failing,
      [](const std::vector<std::int64_t>& v) {
        return v == std::vector<std::int64_t>{4, 2};
      },
      1000);
  EXPECT_EQ(minimal, failing);
}

}  // namespace
}  // namespace mlm

#include "mlm/support/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mlm {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, BoundedStaysInRange) {
  Xoshiro256ss rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro, BoundedZeroIsZero) {
  Xoshiro256ss rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro, BoundedCoversSmallRangeUniformly) {
  Xoshiro256ss rng(17);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) {
    // Expected 10000 each; 4 sigma ~ 380.
    EXPECT_NEAR(c, n / 8, 500);
  }
}

TEST(Xoshiro, Uniform01InRangeAndVaried) {
  Xoshiro256ss rng(3);
  std::set<double> seen;
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    seen.insert(x);
    sum += x;
  }
  EXPECT_GT(seen.size(), 9990u);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256ss>);
  SUCCEED();
}

}  // namespace
}  // namespace mlm

#include "mlm/support/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "mlm/support/error.h"
#include "mlm/support/rng.h"

namespace mlm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squares 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256ss rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100.0 - 50.0;
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose all precision at offset 1e9.
  RunningStats s;
  for (double x : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) s.add(x);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(Summarize, MedianOddEven) {
  EXPECT_DOUBLE_EQ(summarize({3.0, 1.0, 2.0}).median, 2.0);
  EXPECT_DOUBLE_EQ(summarize({4.0, 1.0, 2.0, 3.0}).median, 2.5);
}

TEST(Summarize, EmptyIsAllZero) {
  const SampleSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Percentile, Endpoints) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 33.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgumentError);
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgumentError);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgumentError);
}

TEST(Summarize, FullSummaryOfKnownSamples) {
  // The exact shape the bench harness records for wall metrics.
  const SampleSummary s = summarize({0.5, 0.25, 1.0, 0.25});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 0.5);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 0.375);
  // Sample stddev (n-1): variance = (0 + 2*0.0625 + 0.25)/3 = 0.125.
  EXPECT_NEAR(s.stddev, std::sqrt(0.125), 1e-12);
}

TEST(Summarize, SingleSampleHasZeroSpread) {
  const SampleSummary s = summarize({3.25});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
  EXPECT_DOUBLE_EQ(s.median, 3.25);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, InputOrderDoesNotMatter) {
  const SampleSummary a = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  const SampleSummary b = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.median, 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 46.0);
  // Unsorted input gives the same quantiles.
  std::vector<double> shuffled{50, 10, 40, 20, 30};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 90), 46.0);
}

}  // namespace
}  // namespace mlm

#include "mlm/support/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(TextTable, BasicLayout) {
  TextTable t({"Algorithm", "Mean(s)"});
  t.add_row({"MLM-sort", "8.09"});
  t.add_row({"MLM-implicit", "7.37"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Algorithm"), std::string::npos);
  EXPECT_NE(s.find("MLM-implicit"), std::string::npos);
  // Left-aligned first column, right-aligned numeric column.
  EXPECT_NE(s.find("| MLM-sort     |"), std::string::npos);
  EXPECT_NE(s.find("    8.09 |"), std::string::npos);
}

TEST(TextTable, RuleSeparatesGroups) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // header rule + top + bottom + group rule = 4 dashed lines.
  int rules = 0;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);) {
    if (line.rfind("+-", 0) == 0) ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), InvalidArgumentError);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
  EXPECT_EQ(fmt_double(-1.005, 1), "-1.0");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(2000000000ull), "2,000,000,000");
  EXPECT_EQ(fmt_count(123456789ull), "123,456,789");
}

TEST(AsciiBar, Proportional) {
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####     ");
  EXPECT_EQ(ascii_bar(10.0, 10.0, 4), "####");
  EXPECT_EQ(ascii_bar(0.0, 10.0, 4), "    ");
  // Values beyond max clamp to full.
  EXPECT_EQ(ascii_bar(20.0, 10.0, 4), "####");
}

TEST(AsciiBar, RejectsNonPositiveWidth) {
  EXPECT_THROW(ascii_bar(1.0, 2.0, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace mlm

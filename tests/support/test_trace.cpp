#include "mlm/support/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mlm/support/error.h"

namespace mlm {
namespace {

TEST(TraceWriter, EmptyTraceIsValidSkeleton) {
  TraceWriter w;
  EXPECT_EQ(w.to_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(TraceWriter, EventFieldsSerialized) {
  TraceWriter w;
  w.add_event("copy-in", "copy", 2, 1.5, 0.25);
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"name\":\"copy-in\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"copy\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.5e+06"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceWriter, SequentialPhasesAbutAndReturnEnd) {
  TraceWriter w;
  const double end = w.add_sequential(
      {{"a", 1.0}, {"b", 2.0}, {"c", 0.5}}, "phases", 1, 10.0);
  EXPECT_DOUBLE_EQ(end, 13.5);
  EXPECT_EQ(w.size(), 3u);
  const std::string json = w.to_json();
  // b starts where a ends (11 s = 1.1e7 us).
  EXPECT_NE(json.find("\"ts\":1.1e+07"), std::string::npos);
}

TEST(TraceWriter, EscapesSpecialCharacters) {
  TraceWriter w;
  w.add_event("quote\" back\\slash\nnewline", "c", 0, 0.0, 1.0);
  const std::string json = w.to_json();
  EXPECT_NE(json.find("quote\\\" back\\\\slash\\nnewline"),
            std::string::npos);
}

TEST(TraceWriter, RejectsNegativeDuration) {
  TraceWriter w;
  EXPECT_THROW(w.add_event("x", "c", 0, 0.0, -1.0),
               InvalidArgumentError);
}

TEST(TraceWriter, WritesFile) {
  const std::string path = ::testing::TempDir() + "/mlm_trace_test.json";
  TraceWriter w;
  w.add_event("phase", "cat", 0, 0.0, 1.0);
  w.write_file(path);
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), w.to_json());
  std::remove(path.c_str());
}

TEST(TraceWriter, UnwritablePathThrows) {
  TraceWriter w;
  EXPECT_THROW(w.write_file("/nonexistent-dir/trace.json"), Error);
}

}  // namespace
}  // namespace mlm

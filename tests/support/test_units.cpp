#include "mlm/support/units.h"

#include <gtest/gtest.h>

namespace mlm {
namespace {

TEST(Units, BinaryCapacities) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(1), 1024u * 1024u);
  EXPECT_EQ(GiB(16), 16ull * 1024 * 1024 * 1024);
}

TEST(Units, DecimalBandwidth) {
  EXPECT_DOUBLE_EQ(gb_per_s(90.0), 90e9);
  EXPECT_DOUBLE_EQ(gb_per_s(400.0), 400e9);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(bytes_to_gb(14.9e9), 14.9);
  EXPECT_DOUBLE_EQ(bytes_to_gib(static_cast<double>(GiB(16))), 16.0);
  // The classic GB-vs-GiB gap: 16 GiB is ~17.18 GB.
  EXPECT_NEAR(bytes_to_gb(static_cast<double>(GiB(16))), 17.18, 0.01);
}

TEST(Units, Time) {
  EXPECT_DOUBLE_EQ(ms(250.0), 0.25);
  EXPECT_DOUBLE_EQ(us(1.0), 1e-6);
}

}  // namespace
}  // namespace mlm

// CI regression gate: diff two bench-harness JSON artifacts.
//
//   bench_compare CURRENT BASELINE [--threshold=0.10] [--ignore-wall]
//                 [--allow-missing] [--require-all]
//
// Deterministic metrics (knlsim outputs, traffic counters) must match
// exactly; wall-clock metrics may regress up to --threshold relative to
// the baseline mean.  Exit codes: 0 = pass, 1 = regression found,
// 2 = usage error, 3 = missing or unparsable artifact.  CI keys off the
// distinction: 1 means the code got slower, 3 means the gate itself is
// broken (artifact never produced, truncated JSON, wrong path).
#include <exception>
#include <iostream>
#include <string>

#include "mlm/bench/compare.h"
#include "mlm/bench/report.h"
#include "mlm/support/cli.h"

int main(int argc, char** argv) {
  using namespace mlm;
  using namespace mlm::bench;

  CompareOptions options;
  CliParser cli(
      "Compares a bench-harness JSON artifact against a baseline: "
      "deterministic metrics exactly, wall-clock metrics within a "
      "relative threshold.  Usage: bench_compare CURRENT BASELINE");
  cli.add_double("threshold", &options.wall_threshold,
                 "allowed relative wall-clock regression (0.10 = 10%)");
  cli.add_flag("ignore-wall", &options.ignore_wall,
               "compare only deterministic metrics (cross-machine CI)");
  cli.add_flag("allow-missing", &options.allow_missing,
               "baseline cases absent from the current run are not "
               "failures (for --filter/--smoke subsets)");
  cli.add_flag("require-all", &options.require_all,
               "current cases absent from the baseline are failures, "
               "not notes (gate mode: every suite must be baselined)");
  try {
    if (!cli.parse(argc, argv)) return 0;  // --help
  } catch (const Error& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }
  if (cli.positional().size() != 2) {
    std::cerr << "bench_compare: expected exactly two artifacts "
                 "(CURRENT BASELINE), got "
              << cli.positional().size() << "\n"
              << cli.help();
    return 2;
  }
  if (options.wall_threshold < 0.0) {
    std::cerr << "bench_compare: --threshold must be >= 0\n";
    return 2;
  }

  RunReport current, baseline;
  const auto load = [](const std::string& path, const char* role,
                       RunReport& out) {
    try {
      out = report_from_json(json_parse_file(path));
      return true;
    } catch (const std::exception& e) {
      std::cerr << "bench_compare: cannot load " << role << " artifact '"
                << path << "': " << e.what() << "\n"
                << "bench_compare: this is a gate failure, not a "
                   "performance regression — check that the bench run "
                   "produced the artifact at this path.\n";
      return false;
    }
  };
  if (!load(cli.positional()[0], "current", current) ||
      !load(cli.positional()[1], "baseline", baseline)) {
    return 3;
  }

  const CompareResult result = compare_reports(current, baseline, options);
  for (const Finding& f : result.findings) {
    const bool informational = f.kind == FindingKind::WallImprovement ||
                               f.kind == FindingKind::NewCase;
    (informational ? std::cout : std::cerr)
        << (informational ? "note: " : "FAIL: ") << f.message << "\n";
  }
  std::cout << "bench_compare: " << result.cases_checked << " cases, "
            << result.metrics_checked << " metrics checked against "
            << cli.positional()[1] << ": "
            << (result.ok ? "OK" : "REGRESSION") << " ("
            << result.failures().size() << " failures)\n";
  return result.ok ? 0 : 1;
}

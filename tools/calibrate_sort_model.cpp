// Calibration tool for the sort-timeline cost model.
//
// This is the program that produced the SortCostParams defaults in
// mlm/knlsim/sort_timeline.h (DESIGN.md §5.6): random search around a
// seed point plus coordinate descent, minimizing squared relative error
// over all thirty Table 1 cells (2e9 rows weighted double) under the
// physical and shape constraints listed below.  Re-run it after changing
// the model's structure; it prints the best parameter set and the full
// residual table.
//
// Usage: calibrate_sort_model [--samples=30000] [--seed=1] [--full]
//   --full starts from a wide random search instead of the shipped
//   defaults.
#include <cmath>
#include <iostream>
#include <random>

#include "mlm/knlsim/sort_timeline.h"
#include "mlm/support/cli.h"
#include "mlm/support/table.h"

namespace {

using namespace mlm;
using namespace mlm::knlsim;

const KnlConfig kMachine = knl7250();
constexpr std::uint64_t kSizes[] = {2000000000ull, 4000000000ull,
                                    6000000000ull};
const double kPaperRandom[3][5] = {
    {11.92, 9.73, 9.28, 8.09, 7.37},
    {24.21, 19.76, 18.74, 16.28, 14.56},
    {36.52, 29.53, 27.5, 22.71, 21.66}};
const double kPaperReverse[3][5] = {
    {7.97, 7.19, 4.79, 4.46, 4.10},
    {16.06, 14.27, 9.53, 9.02, 8.31},
    {23.94, 21.85, 14.48, 12.56, 12.76}};
const SortAlgo kAlgos[] = {SortAlgo::GnuFlat, SortAlgo::GnuCache,
                           SortAlgo::MlmDdr, SortAlgo::MlmSort,
                           SortAlgo::MlmImplicit};

double simulate(const SortCostParams& p, SortAlgo algo, std::uint64_t n,
                SimOrder order, std::uint64_t megachunk = 0) {
  SortRunConfig cfg;
  cfg.algo = algo;
  cfg.order = order;
  cfg.elements = n;
  cfg.megachunk_elements = megachunk;
  return simulate_sort(kMachine, p, cfg).seconds;
}

/// Objective: squared relative error over Table 1 plus shape/physical
/// penalties (see DESIGN.md §5.6).
double objective(const SortCostParams& p) {
  double e = 0.0;
  for (int ni = 0; ni < 3; ++ni) {
    const double w = ni == 0 ? 2.0 : 1.0;
    for (int ai = 0; ai < 5; ++ai) {
      const double r =
          simulate(p, kAlgos[ai], kSizes[ni], SimOrder::Random) /
              kPaperRandom[ni][ai] -
          1.0;
      const double v =
          simulate(p, kAlgos[ai], kSizes[ni], SimOrder::Reverse) /
              kPaperReverse[ni][ai] -
          1.0;
      e += w * (r * r + v * v);
    }
  }
  // Figure 7 flat: tiny megachunks must hurt; the paper's pick is
  // near-minimal.
  const double f0 =
      simulate(p, SortAlgo::MlmSort, kSizes[2], SimOrder::Random, 125000000ull);
  const double f1 =
      simulate(p, SortAlgo::MlmSort, kSizes[2], SimOrder::Random, 500000000ull);
  const double f2 =
      simulate(p, SortAlgo::MlmSort, kSizes[2], SimOrder::Random, 1000000000ull);
  const double f3 =
      simulate(p, SortAlgo::MlmSort, kSizes[2], SimOrder::Random, 1500000000ull);
  const double fmin = std::min({f1, f2, f3});
  if (!(f0 > fmin * 1.02)) e += 1.0;
  if (f3 > fmin * 1.03) e += 0.5;
  // Figure 7 implicit: megachunk = N is the best point of the sweep.
  const double g0 = simulate(p, SortAlgo::MlmImplicit, kSizes[2],
                             SimOrder::Random, 62500000ull);
  const double gh = simulate(p, SortAlgo::MlmImplicit, kSizes[2],
                             SimOrder::Random, 500000000ull);
  const double g1 = simulate(p, SortAlgo::MlmImplicit, kSizes[2],
                             SimOrder::Random, 2000000000ull);
  const double g2 = simulate(p, SortAlgo::MlmImplicit, kSizes[2],
                             SimOrder::Random, 6000000000ull);
  if (!(g2 < g1)) e += 1.0 + std::max(0.0, g2 - g1);
  if (!(g2 < gh)) e += 1.0 + std::max(0.0, g2 - gh);
  if (!(g2 < g0 * 0.97)) e += 1.0 + std::max(0.0, g2 - g0);
  // Table 1 ordering at 2e9 random.
  double t[5];
  for (int ai = 0; ai < 5; ++ai) {
    t[ai] = simulate(p, kAlgos[ai], kSizes[0], SimOrder::Random);
  }
  for (int ai = 0; ai + 1 < 5; ++ai) {
    if (t[ai] <= t[ai + 1]) e += 0.5;
  }
  // The 6e9-reverse crossover (implicit lags flat).
  const double h1 =
      simulate(p, SortAlgo::MlmSort, kSizes[2], SimOrder::Reverse);
  const double h2 =
      simulate(p, SortAlgo::MlmImplicit, kSizes[2], SimOrder::Reverse);
  if (!(h2 > h1)) e += 0.25;
  // Physical sanity.
  if (p.r_sort_mcdram < p.r_sort_ddr) {
    e += 2.0 * (p.r_sort_ddr / p.r_sort_mcdram - 1.0) + 0.5;
  }
  if (p.r_sort_cached < p.r_sort_ddr) {
    e += 2.0 * (p.r_sort_ddr / p.r_sort_cached - 1.0) + 0.5;
  }
  if (p.reverse_speedup_mlm < 1.2) e += 5.0 * (1.2 - p.reverse_speedup_mlm) + 0.5;
  if (p.reverse_speedup_gnu < 1.05) e += 5.0 * (1.05 - p.reverse_speedup_gnu) + 0.5;
  if (p.reverse_speedup_mlm < p.reverse_speedup_gnu) {
    e += 2.0 * (p.reverse_speedup_gnu - p.reverse_speedup_mlm) + 0.5;
  }
  if (p.gnu_efficiency > 0.95) e += 5.0 * (p.gnu_efficiency - 0.95) + 0.5;
  if (p.reverse_speedup_merge > 2.6) e += p.reverse_speedup_merge - 2.6;
  return e;
}

void print_residuals(const SortCostParams& p) {
  TextTable table({"Size", "Order", "GNU-flat", "GNU-cache", "MLM-ddr",
                   "MLM-sort", "MLM-implicit"});
  for (int oi = 0; oi < 2; ++oi) {
    const SimOrder order = oi ? SimOrder::Reverse : SimOrder::Random;
    for (int ni = 0; ni < 3; ++ni) {
      std::vector<std::string> row{
          std::to_string(kSizes[ni] / 1000000000ull) + "e9",
          to_string(order)};
      for (int ai = 0; ai < 5; ++ai) {
        const double sim = simulate(p, kAlgos[ai], kSizes[ni], order);
        const double paper =
            (oi ? kPaperReverse : kPaperRandom)[ni][ai];
        row.push_back(fmt_double(sim) + " (" +
                      fmt_double(sim / paper, 2) + ")");
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t samples = 30000;
  std::uint64_t seed = 1;
  bool full = false;
  CliParser cli(
      "Refits the SortCostParams constants against the paper's Table 1 "
      "(see DESIGN.md 5.6).");
  cli.add_uint("samples", &samples, "random search samples");
  cli.add_uint("seed", &seed, "random seed");
  cli.add_flag("full", &full,
               "search widely instead of around the shipped defaults");
  if (!cli.parse(argc, argv)) return 0;

  std::mt19937_64 rng(seed);
  auto uni = [&](double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(rng);
  };

  const SortCostParams shipped;
  SortCostParams best = shipped;
  double best_err = objective(best);
  std::cout << "shipped defaults: err = " << fmt_double(best_err, 4)
            << "\n";

  for (std::uint64_t it = 0; it < samples; ++it) {
    SortCostParams p = shipped;
    const double spread_lo = full ? 0.4 : 0.7;
    const double spread_hi = full ? 2.5 : 1.5;
    p.r_sort_ddr *= uni(spread_lo, spread_hi);
    p.r_sort_mcdram =
        std::max(p.r_sort_ddr, shipped.r_sort_mcdram * uni(0.7, 1.8));
    p.r_sort_cached =
        std::max(p.r_sort_ddr, shipped.r_sort_cached * uni(0.7, 1.8));
    p.r_merge *= uni(0.6, 2.5);
    p.merge_ddr_depth_penalty *= uni(0.4, 3.0);
    p.cached_merge_conflict = uni(0.02, 1.2);
    p.gnu_efficiency = uni(0.58, 0.93);
    p.reverse_speedup_mlm = uni(1.3, 2.4);
    p.reverse_speedup_gnu = uni(1.05, 1.8);
    p.reverse_speedup_merge = uni(1.0, 2.6);
    const double e = objective(p);
    if (e < best_err) {
      best_err = e;
      best = p;
    }
  }

  // Coordinate refinement.
  for (int round = 0; round < 60; ++round) {
    bool improved = false;
    double* fields[] = {&best.r_sort_ddr,
                        &best.r_sort_mcdram,
                        &best.r_sort_cached,
                        &best.r_merge,
                        &best.merge_ddr_depth_penalty,
                        &best.cached_merge_conflict,
                        &best.gnu_efficiency,
                        &best.reverse_speedup_mlm,
                        &best.reverse_speedup_gnu,
                        &best.reverse_speedup_merge};
    for (double* f : fields) {
      for (double scale : {0.97, 1.03, 0.99, 1.01, 0.995, 1.005}) {
        SortCostParams p = best;
        auto* pf = reinterpret_cast<double*>(
            reinterpret_cast<char*>(&p) +
            (reinterpret_cast<char*>(f) -
             reinterpret_cast<char*>(&best)));
        *pf = *f * scale;
        const double e = objective(p);
        if (e < best_err) {
          best_err = e;
          best = p;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  std::cout << "best err = " << fmt_double(best_err, 4) << "\n\n"
            << "SortCostParams {\n"
            << "  r_sort_ddr = " << fmt_double(best.r_sort_ddr / 1e6, 1)
            << "e6\n"
            << "  r_sort_mcdram = "
            << fmt_double(best.r_sort_mcdram / 1e6, 1) << "e6\n"
            << "  r_sort_cached = "
            << fmt_double(best.r_sort_cached / 1e6, 1) << "e6\n"
            << "  r_merge = " << fmt_double(best.r_merge / 1e6, 1)
            << "e6\n"
            << "  merge_ddr_depth_penalty = "
            << fmt_double(best.merge_ddr_depth_penalty, 3) << "\n"
            << "  cached_merge_conflict = "
            << fmt_double(best.cached_merge_conflict, 3) << "\n"
            << "  gnu_efficiency = " << fmt_double(best.gnu_efficiency, 3)
            << "\n"
            << "  reverse_speedup_mlm = "
            << fmt_double(best.reverse_speedup_mlm, 3) << "\n"
            << "  reverse_speedup_gnu = "
            << fmt_double(best.reverse_speedup_gnu, 3) << "\n"
            << "  reverse_speedup_merge = "
            << fmt_double(best.reverse_speedup_merge, 3) << "\n"
            << "}\n\nResiduals (sim seconds, sim/paper):\n";
  print_residuals(best);
  return 0;
}

// mlm_jobd: demo driver for the service layer ("MLM-as-a-service").
//
// Stands up a JobScheduler over a three-tier NVM -> DDR -> MCDRAM
// hierarchy and runs a batch of sort tenants against it, printing the
// per-job service records (admission decision, queue rounds, steps,
// timing) and the service-level aggregate.  Two modes:
//
//   - batch (default): a small fixed tenant mix that exercises every
//     admission path — two contending budgets, a token (no-near)
//     tenant, and a whale that can only run degraded;
//   - load-generator (--loadgen): --jobs random tenants with seeded
//     sizes/budgets/priorities, for soaking the scheduler and for the
//     bench_service suite's queue-latency numbers.
//
// --det runs the whole batch under a seeded DeterministicExecutor, so
// a schedule that misbehaves is reproducible from --seed alone.
//
// Usage:
//   mlm_jobd [--jobs=8] [--loadgen] [--det] [--seed=1]
//            [--mcdram-kib=256] [--ddr-mib=2] [--max-concurrent=2]
//            [--job-workers=2] [--elements=4096] [--quiet]
#include <algorithm>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/service/job_scheduler.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/cli.h"
#include "mlm/support/rng.h"
#include "mlm/support/units.h"

namespace {

using namespace mlm;

struct Options {
  std::uint64_t jobs = 8;
  bool loadgen = false;
  bool det = false;
  std::uint64_t seed = 1;
  std::uint64_t mcdram_kib = 256;
  std::uint64_t ddr_mib = 2;
  std::uint64_t max_concurrent = 2;
  std::uint64_t job_workers = 2;
  std::uint64_t elements = 4096;
  bool quiet = false;
};

struct Tenant {
  std::string name;
  std::size_t n;
  sort::InputOrder order;
  int priority;
  std::uint64_t near_budget;
};

std::vector<Tenant> batch_mix(const Options& opt) {
  const std::uint64_t cap = KiB(opt.mcdram_kib);
  return {
      {"contend-a", opt.elements, sort::InputOrder::Random, 0,
       cap * 5 / 8},
      {"contend-b", opt.elements, sort::InputOrder::Reverse, 1,
       cap * 5 / 8},
      {"token", opt.elements / 2, sort::InputOrder::FewDistinct, 0, 0},
      {"whale", opt.elements, sort::InputOrder::NearlySorted, 0, cap * 2},
  };
}

std::vector<Tenant> loadgen_mix(const Options& opt) {
  Xoshiro256ss rng(opt.seed);
  const std::uint64_t cap = KiB(opt.mcdram_kib);
  std::vector<Tenant> tenants;
  tenants.reserve(opt.jobs);
  for (std::uint64_t i = 0; i < opt.jobs; ++i) {
    Tenant t;
    t.name = "load" + std::to_string(i);
    t.n = opt.elements / 2 + rng.next() % std::max<std::uint64_t>(
                                              opt.elements, 1);
    t.order = static_cast<sort::InputOrder>(rng.next() % 5);
    t.priority = static_cast<int>(rng.next() % 3);
    // Budgets from 0 to ~1.25x capacity: some admit, some queue, some
    // degrade.
    t.near_budget = rng.next() % (cap + cap / 4);
    if (t.near_budget < cap / 16) t.near_budget = 0;
    tenants.push_back(t);
  }
  return tenants;
}

int run(const Options& opt) {
  HierarchyConfig hcfg;
  hcfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
                TierConfig{"ddr", MemKind::DDR, MiB(opt.ddr_mib)},
                TierConfig{"mcdram", MemKind::MCDRAM, KiB(opt.mcdram_kib)}};
  hcfg.mode = McdramMode::Flat;
  MemoryHierarchy hier(hcfg);

  DeterministicScheduler sched(opt.seed);
  std::unique_ptr<Executor> driver;
  if (opt.det) {
    driver = std::make_unique<DeterministicExecutor>(sched, 2, "driver");
  } else {
    driver = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(opt.max_concurrent) + 1, "driver");
  }

  service::JobSchedulerConfig scfg;
  scfg.max_concurrent = static_cast<std::size_t>(opt.max_concurrent);
  scfg.job_workers = static_cast<std::size_t>(opt.job_workers);
  scfg.degrade.allow_tier_fallback = true;
  service::JobScheduler svc(hier, *driver, scfg);

  const std::vector<Tenant> tenants =
      opt.loadgen ? loadgen_mix(opt) : batch_mix(opt);

  std::vector<SpaceBuffer<std::int64_t>> buffers;
  buffers.reserve(tenants.size());
  std::vector<std::uint64_t> ids;
  core::ExternalSortConfig sort_cfg;
  sort_cfg.outer_chunk_elements = std::max<std::size_t>(
      static_cast<std::size_t>(opt.elements) / 4, 64);
  sort_cfg.inner.variant = core::MlmVariant::Flat;
  for (std::size_t j = 0; j < tenants.size(); ++j) {
    const Tenant& t = tenants[j];
    buffers.emplace_back(hier.tier(0), t.n);
    const auto init = sort::make_input(t.n, t.order, opt.seed + j);
    std::copy(init.begin(), init.end(), buffers[j].data());
    service::JobConfig jc;
    jc.name = t.name;
    jc.priority = t.priority;
    jc.near_budget_bytes = t.near_budget;
    ids.push_back(svc.submit(
        jc, service::make_sort_job(
                std::span<std::int64_t>(buffers[j].data(), t.n),
                sort_cfg)));
  }

  const service::ServiceStats m = svc.run_all();

  int sorted_ok = 0;
  for (std::size_t j = 0; j < tenants.size(); ++j) {
    if (std::is_sorted(buffers[j].data(),
                       buffers[j].data() + tenants[j].n)) {
      ++sorted_ok;
    }
  }

  if (!opt.quiet) {
    std::cout << "job          state      admission  pri  req-KiB  "
                 "granted  q-rounds  steps\n";
    for (const auto id : ids) {
      const service::SortStats st = svc.job_stats(id);
      std::cout << st.name;
      for (std::size_t p = st.name.size(); p < 13; ++p) std::cout << ' ';
      std::cout << to_string(st.state) << "  "
                << to_string(st.admission) << "  " << st.priority << "  "
                << st.requested_near_bytes / 1024 << "  "
                << st.granted_near_bytes << "  " << st.queue_rounds
                << "  " << st.steps;
      if (st.error.has_value()) {
        std::cout << "  [" << st.error->what() << "]";
      }
      std::cout << "\n";
    }
    std::cout << "\nservice: submitted=" << m.jobs_submitted
              << " completed=" << m.jobs_completed
              << " failed=" << m.jobs_failed
              << " cancelled=" << m.jobs_cancelled
              << " degraded=" << m.jobs_degraded << "\n"
              << "         steps=" << m.total_steps
              << " queue_rounds=" << m.queue_rounds
              << " near_peak=" << m.peak_near_committed_bytes << "/"
              << m.near_capacity_bytes << " bytes\n"
              << "         sorted_ok=" << sorted_ok << "/"
              << tenants.size() << "\n";
    if (opt.det) {
      std::cout << "         deterministic seed=" << opt.seed
                << " ticks=" << sched.now() << "\n";
    }
  }

  const bool ok = m.jobs_completed == tenants.size() &&
                  sorted_ok == static_cast<int>(tenants.size()) &&
                  m.peak_near_committed_bytes <= m.near_capacity_bytes;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  CliParser cli(
      "mlm_jobd: multi-tenant sort-job scheduler demo (batch and "
      "load-generator modes)");
  cli.add_uint("jobs", &opt.jobs, "tenants in --loadgen mode");
  cli.add_flag("loadgen", &opt.loadgen,
               "seeded random tenant mix instead of the fixed batch");
  cli.add_flag("det", &opt.det,
               "drive everything under a seeded deterministic schedule");
  cli.add_uint("seed", &opt.seed, "input / schedule / loadgen seed");
  cli.add_uint("mcdram-kib", &opt.mcdram_kib, "near-tier arena (KiB)");
  cli.add_uint("ddr-mib", &opt.ddr_mib, "DDR staging tier (MiB)");
  cli.add_uint("max-concurrent", &opt.max_concurrent,
               "jobs running at once");
  cli.add_uint("job-workers", &opt.job_workers,
               "worker-executor size per job");
  cli.add_uint("elements", &opt.elements, "base tenant size (elements)");
  cli.add_flag("quiet", &opt.quiet, "suppress the report");
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (!cli.positional().empty()) {
      // Unknown --flags already throw in parse(); stray positional
      // arguments (e.g. a typo like "-loadgen" or "jobs=8") used to be
      // silently accepted and run the default batch instead of what
      // the user asked for.  Reject them the same way.
      std::cerr << "mlm_jobd: unrecognized argument '"
                << cli.positional().front() << "'\n\n"
                << cli.help();
      return 2;
    }
    return run(opt);
  } catch (const mlm::Error& e) {
    std::cerr << "mlm_jobd: " << e.what() << "\n";
    return 2;
  }
}

// mlm_jobd: demo driver for the service layer ("MLM-as-a-service").
//
// Stands up a JobScheduler over a three-tier NVM -> DDR -> MCDRAM
// hierarchy and runs a batch of sort tenants against it, printing the
// per-job service records (admission decision, queue rounds, steps,
// timing) and the service-level aggregate.  Two modes:
//
//   - batch (default): a small fixed tenant mix that exercises every
//     admission path — two contending budgets, a token (no-near)
//     tenant, and a whale that can only run degraded;
//   - load-generator (--loadgen): --jobs random tenants with seeded
//     sizes/budgets/priorities, for soaking the scheduler and for the
//     bench_service suite's queue-latency numbers.  With --max-queued
//     the bounded queue sheds load and the ingestion loop rides the
//     client retry ladder: capped exponential backoff with
//     deterministic seeded jitter (mlm/service/overload.h).
//
// Crash consistency (--journal=PATH): recoverable jobs are journaled to
// an append-only WAL — Submitted on entry, a Checkpoint every
// --checkpoint-interval steps, one terminal record — and a clean
// shutdown ends the log with a Shutdown marker.  --recover replays the
// journal on startup and resubmits every job without a terminal
// record.  Process-level recovery restarts those jobs from scratch
// (at-least-once): this process regenerates tenant inputs from the
// seed, so a mid-sort checkpoint taken over the dead process's memory
// must not be resumed over different bytes.  (True checkpoint resume is
// exercised by the in-process crash harness in tests/recover/, where
// the far tier survives the crash.)  Run --recover with the same
// --seed/--jobs/--elements as the crashed run so tenant names rebind to
// equivalent inputs.
//
// SIGINT/SIGTERM request a clean shutdown: ingestion stops, admitted
// and queued jobs drain, the Shutdown record is written, and the
// process exits 0.
//
// --det runs the whole batch under a seeded DeterministicExecutor, so
// a schedule that misbehaves is reproducible from --seed alone.
//
// Usage:
//   mlm_jobd [--jobs=8] [--loadgen] [--det] [--seed=1]
//            [--mcdram-kib=256] [--ddr-mib=2] [--max-concurrent=2]
//            [--job-workers=2] [--elements=4096] [--quiet]
//            [--journal=PATH] [--recover] [--max-queued=N]
//            [--checkpoint-interval=N] [--retry-attempts=N]
//            [--ingest-delay-ms=N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "mlm/memory/memory_space.h"
#include "mlm/parallel/deterministic_executor.h"
#include "mlm/parallel/thread_pool.h"
#include "mlm/service/job_scheduler.h"
#include "mlm/service/journal.h"
#include "mlm/service/overload.h"
#include "mlm/service/sort_job.h"
#include "mlm/sort/input_gen.h"
#include "mlm/support/cli.h"
#include "mlm/support/rng.h"
#include "mlm/support/units.h"

namespace {

using namespace mlm;

/// Durable factory name for jobd's sort jobs: the journal stores this
/// key, and a --recover run registers the same key to rebuild steppers.
constexpr const char* kJobdSortKey = "jobd.sort.v1";

volatile std::sig_atomic_t g_stop = 0;

extern "C" void on_stop_signal(int) { g_stop = 1; }

struct Options {
  std::uint64_t jobs = 8;
  bool loadgen = false;
  bool det = false;
  std::uint64_t seed = 1;
  std::uint64_t mcdram_kib = 256;
  std::uint64_t ddr_mib = 2;
  std::uint64_t max_concurrent = 2;
  std::uint64_t job_workers = 2;
  std::uint64_t elements = 4096;
  bool quiet = false;
  std::string journal_path;
  bool recover = false;
  std::uint64_t max_queued = 0;
  std::uint64_t checkpoint_interval = 4;
  std::uint64_t retry_attempts = 6;
  std::uint64_t ingest_delay_ms = 0;
};

struct Tenant {
  std::string name;
  std::size_t n;
  sort::InputOrder order;
  int priority;
  std::uint64_t near_budget;
};

std::vector<Tenant> batch_mix(const Options& opt) {
  const std::uint64_t cap = KiB(opt.mcdram_kib);
  return {
      {"contend-a", opt.elements, sort::InputOrder::Random, 0,
       cap * 5 / 8},
      {"contend-b", opt.elements, sort::InputOrder::Reverse, 1,
       cap * 5 / 8},
      {"token", opt.elements / 2, sort::InputOrder::FewDistinct, 0, 0},
      {"whale", opt.elements, sort::InputOrder::NearlySorted, 0, cap * 2},
  };
}

std::vector<Tenant> loadgen_mix(const Options& opt) {
  Xoshiro256ss rng(opt.seed);
  const std::uint64_t cap = KiB(opt.mcdram_kib);
  std::vector<Tenant> tenants;
  tenants.reserve(opt.jobs);
  for (std::uint64_t i = 0; i < opt.jobs; ++i) {
    Tenant t;
    t.name = "load" + std::to_string(i);
    t.n = opt.elements / 2 + rng.next() % std::max<std::uint64_t>(
                                              opt.elements, 1);
    t.order = static_cast<sort::InputOrder>(rng.next() % 5);
    t.priority = static_cast<int>(rng.next() % 3);
    // Budgets from 0 to ~1.25x capacity: some admit, some queue, some
    // degrade.
    t.near_budget = rng.next() % (cap + cap / 4);
    if (t.near_budget < cap / 16) t.near_budget = 0;
    tenants.push_back(t);
  }
  return tenants;
}

int run(const Options& opt) {
  HierarchyConfig hcfg;
  hcfg.tiers = {TierConfig{"nvm", MemKind::NVM, 0},
                TierConfig{"ddr", MemKind::DDR, MiB(opt.ddr_mib)},
                TierConfig{"mcdram", MemKind::MCDRAM, KiB(opt.mcdram_kib)}};
  hcfg.mode = McdramMode::Flat;
  MemoryHierarchy hier(hcfg);

  DeterministicScheduler sched(opt.seed);
  std::unique_ptr<Executor> driver;
  if (opt.det) {
    driver = std::make_unique<DeterministicExecutor>(sched, 2, "driver");
  } else {
    driver = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(opt.max_concurrent) + 1, "driver");
  }

  std::unique_ptr<service::JobJournal> journal;
  if (!opt.journal_path.empty()) {
    journal = std::make_unique<service::JobJournal>(opt.journal_path);
  }
  MLM_REQUIRE(!opt.recover || journal != nullptr,
              "--recover requires --journal");

  service::JobSchedulerConfig scfg;
  scfg.max_concurrent = static_cast<std::size_t>(opt.max_concurrent);
  scfg.job_workers = static_cast<std::size_t>(opt.job_workers);
  scfg.degrade.allow_tier_fallback = true;
  scfg.journal = journal.get();
  scfg.checkpoint_interval_steps =
      static_cast<std::size_t>(opt.checkpoint_interval);
  scfg.max_queued = static_cast<std::size_t>(opt.max_queued);
  service::JobScheduler svc(hier, *driver, scfg);

  const std::vector<Tenant> tenants =
      opt.loadgen ? loadgen_mix(opt) : batch_mix(opt);

  // Tenant data, regenerated from the seed: the journal survives a
  // crash but this demo's "NVM" does not, so a --recover run rebinds
  // the journaled names to equivalent fresh inputs.
  std::vector<SpaceBuffer<std::int64_t>> buffers;
  buffers.reserve(tenants.size());
  std::map<std::string, std::span<std::int64_t>> spans;
  for (std::size_t j = 0; j < tenants.size(); ++j) {
    const Tenant& t = tenants[j];
    buffers.emplace_back(hier.tier(0), t.n);
    const auto init = sort::make_input(t.n, t.order, opt.seed + j);
    std::copy(init.begin(), init.end(), buffers[j].data());
    spans[t.name] = std::span<std::int64_t>(buffers[j].data(), t.n);
  }

  core::ExternalSortConfig sort_cfg;
  sort_cfg.outer_chunk_elements = std::max<std::size_t>(
      static_cast<std::size_t>(opt.elements) / 4, 64);
  sort_cfg.inner.variant = core::MlmVariant::Flat;

  // Resume state is deliberately ignored: this process regenerated the
  // inputs, so a checkpoint naming the dead process's chunk layout must
  // not be resumed over different bytes — process-level recovery is
  // restart-from-scratch (at-least-once).
  service::RecoverableFactory jobd_factory =
      [&spans, sort_cfg](const service::JobConfig& jc,
                         service::JobContext& ctx,
                         const service::Checkpoint*) {
        auto it = spans.find(jc.name);
        if (it == spans.end()) {
          Error e("no tenant data for journaled job '" + jc.name +
                  "' (rerun --recover with the crashed run's --seed, "
                  "--jobs and --elements)");
          throw e.with_frame({"jobd_recover", -1, "", "service", ""});
        }
        service::JobFactory fresh =
            service::make_sort_job(it->second, sort_cfg);
        return fresh(ctx);
      };

  service::JobScheduler::RecoveryReport recovery;
  if (opt.recover) {
    service::FactoryResolver resolver;
    resolver.register_factory(kJobdSortKey, jobd_factory);
    recovery = svc.recover(resolver);
    if (!opt.quiet) {
      std::cout << "recover: resubmitted=" << recovery.jobs_resubmitted
                << " terminal=" << recovery.jobs_already_terminal
                << " with_checkpoint=" << recovery.with_checkpoint
                << (recovery.torn_tail
                        ? " torn_tail=" +
                              std::to_string(recovery.torn_bytes) + "B"
                        : "")
                << "\n";
    }
  }

  // Background pump for threaded loadgen runs: the ingestion loop needs
  // jobs to drain while it is still submitting, or a bounded queue
  // could never empty between retries.  Deterministic runs pump inline
  // with run_ticks instead.
  std::atomic<bool> pump_stop{false};
  std::thread pumper;
  if (!opt.det && opt.loadgen) {
    pumper = std::thread([&svc, &pump_stop] {
      while (!pump_stop.load(std::memory_order_relaxed)) {
        svc.run_all();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  service::RetryPolicy retry;
  retry.max_attempts = static_cast<std::size_t>(opt.retry_attempts);
  retry.jitter_seed = opt.seed;

  std::vector<std::uint64_t> ids;
  std::size_t gave_up = 0;
  // A --recover run's work is defined by the journal, not the tenant
  // mix: submitting the mix again would race a second sort job onto
  // every span a recovered job is already sorting.  (Jobs whose
  // Submitted record was torn off the tail are lost with the process —
  // the WAL acknowledgement contract makes those the client's to
  // resubmit, which this demo does not do.)
  const std::size_t to_ingest = opt.recover ? 0 : tenants.size();
  for (std::size_t j = 0; j < to_ingest && g_stop == 0; ++j) {
    const Tenant& t = tenants[j];
    service::JobConfig jc;
    jc.name = t.name;
    jc.priority = t.priority;
    jc.near_budget_bytes = t.near_budget;
    if (journal != nullptr) jc.recovery_key = kJobdSortKey;

    std::uint64_t id = 0;
    std::size_t attempt = 0;
    for (;;) {
      id = journal != nullptr
               ? svc.submit_recoverable(jc, jobd_factory)
               : svc.submit(jc, service::make_sort_job(spans[t.name],
                                                       sort_cfg));
      if (!svc.job_stats(id).shed) break;  // accepted (or failed for real)
      ++attempt;
      if (attempt > retry.max_attempts) {
        ++gave_up;
        break;
      }
      // Client retry ladder: capped exponential backoff, deterministic
      // seeded jitter.  Deterministic runs convert the delay to virtual
      // ticks so the whole overload episode replays from the seed.
      const std::uint64_t backoff_us = service::retry_backoff_us(retry,
                                                                 attempt);
      if (opt.det) {
        svc.run_ticks(static_cast<std::size_t>(
            std::max<std::uint64_t>(1, backoff_us / 50)));
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
    }
    ids.push_back(id);
    if (opt.det && opt.loadgen) svc.run_ticks(4);  // interleave some work
    if (opt.ingest_delay_ms != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opt.ingest_delay_ms));
    }
  }
  const bool interrupted = g_stop != 0;

  if (pumper.joinable()) {
    pump_stop.store(true, std::memory_order_relaxed);
    pumper.join();
  }

  // Final drain: every admitted and queued job reaches a terminal
  // state; on a signalled shutdown this is the "drain in-flight jobs"
  // phase before the clean Shutdown record.
  const service::ServiceStats m = svc.run_all();
  if (journal != nullptr) {
    journal->append(service::JournalRecordType::Shutdown, 0);
  }

  int sorted_ok = 0;
  for (std::size_t j = 0; j < tenants.size(); ++j) {
    if (std::is_sorted(buffers[j].data(),
                       buffers[j].data() + tenants[j].n)) {
      ++sorted_ok;
    }
  }

  if (!opt.quiet) {
    std::cout << "job          state      admission  pri  req-KiB  "
                 "granted  q-rounds  steps\n";
    for (const auto id : ids) {
      const service::SortStats st = svc.job_stats(id);
      std::cout << st.name;
      for (std::size_t p = st.name.size(); p < 13; ++p) std::cout << ' ';
      std::cout << to_string(st.state) << "  "
                << to_string(st.admission) << "  " << st.priority << "  "
                << st.requested_near_bytes / 1024 << "  "
                << st.granted_near_bytes << "  " << st.queue_rounds
                << "  " << st.steps;
      if (st.shed) std::cout << "  [shed]";
      if (st.error.has_value()) {
        std::cout << "  [" << st.error->what() << "]";
      }
      std::cout << "\n";
    }
    std::cout << "\nservice: submitted=" << m.jobs_submitted
              << " completed=" << m.jobs_completed
              << " failed=" << m.jobs_failed
              << " cancelled=" << m.jobs_cancelled
              << " degraded=" << m.jobs_degraded
              << " shed=" << m.jobs_shed
              << " recovered=" << m.jobs_recovered << "\n"
              << "         steps=" << m.total_steps
              << " queue_rounds=" << m.queue_rounds
              << " checkpoints=" << m.checkpoints_written
              << " near_peak=" << m.peak_near_committed_bytes << "/"
              << m.near_capacity_bytes << " bytes\n"
              << "         sorted_ok=" << sorted_ok << "/"
              << tenants.size() << " gave_up=" << gave_up << "\n";
    if (opt.det) {
      std::cout << "         deterministic seed=" << opt.seed
                << " ticks=" << sched.now() << "\n";
    }
    if (interrupted) {
      std::cout << "shutdown: signal received; drained "
                << m.jobs_completed << " job(s) and wrote the Shutdown "
                << "record\n";
    }
  }

  if (interrupted) return 0;  // clean signalled shutdown

  const std::size_t unshed_failures = m.jobs_failed - m.jobs_shed;
  bool ok = unshed_failures == 0 &&
            m.peak_near_committed_bytes <= m.near_capacity_bytes;
  if (!opt.loadgen && !opt.recover) {
    // The fixed batch has no overload or recovery churn: every tenant
    // must complete and sort, exactly as before.
    ok = ok && m.jobs_completed == tenants.size() &&
         sorted_ok == static_cast<int>(tenants.size());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  CliParser cli(
      "mlm_jobd: multi-tenant sort-job scheduler demo (batch and "
      "load-generator modes)");
  cli.add_uint("jobs", &opt.jobs, "tenants in --loadgen mode");
  cli.add_flag("loadgen", &opt.loadgen,
               "seeded random tenant mix instead of the fixed batch");
  cli.add_flag("det", &opt.det,
               "drive everything under a seeded deterministic schedule");
  cli.add_uint("seed", &opt.seed, "input / schedule / loadgen seed");
  cli.add_uint("mcdram-kib", &opt.mcdram_kib, "near-tier arena (KiB)");
  cli.add_uint("ddr-mib", &opt.ddr_mib, "DDR staging tier (MiB)");
  cli.add_uint("max-concurrent", &opt.max_concurrent,
               "jobs running at once");
  cli.add_uint("job-workers", &opt.job_workers,
               "worker-executor size per job");
  cli.add_uint("elements", &opt.elements, "base tenant size (elements)");
  cli.add_flag("quiet", &opt.quiet, "suppress the report");
  cli.add_string("journal", &opt.journal_path,
                 "crash-consistency WAL path (enables job journaling)");
  cli.add_flag("recover", &opt.recover,
               "replay --journal and resubmit unfinished jobs");
  cli.add_uint("max-queued", &opt.max_queued,
               "bounded queue depth; 0 = unbounded (no shedding)");
  cli.add_uint("checkpoint-interval", &opt.checkpoint_interval,
               "steps between journal checkpoints (0 = none)");
  cli.add_uint("retry-attempts", &opt.retry_attempts,
               "client retry ladder length for shed submissions");
  cli.add_uint("ingest-delay-ms", &opt.ingest_delay_ms,
               "pause between tenant submissions (shutdown-drain tests)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    if (!cli.positional().empty()) {
      // Unknown --flags already throw in parse(); stray positional
      // arguments (e.g. a typo like "-loadgen" or "jobs=8") used to be
      // silently accepted and run the default batch instead of what
      // the user asked for.  Reject them the same way.
      std::cerr << "mlm_jobd: unrecognized argument '"
                << cli.positional().front() << "'\n\n"
                << cli.help();
      return 2;
    }
    std::signal(SIGINT, on_stop_signal);
    std::signal(SIGTERM, on_stop_signal);
    return run(opt);
  } catch (const mlm::Error& e) {
    std::cerr << "mlm_jobd: " << e.what() << "\n";
    return 2;
  }
}
